//! Experiment harness regenerating every table and figure of the VCF
//! paper's evaluation (Section VI), plus the Section V model comparisons.
//!
//! Each experiment lives in [`experiments`] and is driven by the
//! `vcf-repro` binary:
//!
//! ```text
//! cargo run -p vcf-harness --release --bin vcf-repro -- table3
//! cargo run -p vcf-harness --release --bin vcf-repro -- all --paper
//! ```
//!
//! By default experiments run at a laptop-friendly reduced scale
//! (`2^16`-slot filters instead of the paper's `2^20`, fewer repetitions);
//! `--paper` restores the paper's sizes. Absolute timings differ from the
//! paper's 2021-era testbed, but the *shapes* — who wins, by what factor,
//! where curves cross — are the reproduction target; `EXPERIMENTS.md`
//! records both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod factory;
pub mod report;
pub mod runner;
pub mod timing;

pub use factory::{FilterKind, FilterSpec};
pub use report::{Cell, Report, Table};
pub use runner::{FillOutcome, FprOutcome, LookupOutcome};

use std::path::PathBuf;

/// Options shared by every experiment.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// log2 of the filter slot count (`θ` in the paper's notation). The
    /// paper's main experiments use 20; the quick default is 16.
    pub slots_log2: u32,
    /// Repetitions per data point (the paper averages 1000 runs; quick
    /// default 3).
    pub reps: usize,
    /// Base PRNG seed; repetition `i` uses `seed + i`.
    pub seed: u64,
    /// Directory for CSV output; `None` disables CSV.
    pub csv_dir: Option<PathBuf>,
    /// Run at the paper's full scale (overrides `slots_log2`/`reps` in
    /// experiments that define a paper-scale configuration).
    pub paper_scale: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            slots_log2: 16,
            reps: 3,
            seed: 0x0001_cdc5_2021_u64,
            csv_dir: Some(PathBuf::from("results")),
            paper_scale: false,
        }
    }
}

impl ExpOptions {
    /// Effective slot-count exponent for the main single-size experiments.
    pub fn theta(&self) -> u32 {
        if self.paper_scale {
            20
        } else {
            self.slots_log2
        }
    }

    /// Effective repetition count. (`--paper` governs sizes only; pass
    /// `--reps` explicitly for the paper's 1000-run averaging.)
    pub fn repetitions(&self) -> usize {
        self.reps
    }
}
