//! `vcf-repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! vcf-repro <experiment|all> [options]
//!
//! Experiments:
//!   table1 fig4 table3 fig5 fig6 fig7 fig8 fig9 table4 table5 model
//!
//! Options:
//!   --paper            run at the paper's scale (2^20 slots, more reps)
//!   --slots-log2 <N>   log2 of the filter slot count (default 16)
//!   --reps <N>         repetitions per data point (default 3)
//!   --seed <N>         base PRNG seed
//!   --csv <DIR>        write CSVs into DIR (default ./results)
//!   --no-csv           disable CSV output
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use vcf_harness::experiments::{run_by_name, ALL};
use vcf_harness::ExpOptions;

fn usage() -> String {
    format!(
        "usage: vcf-repro <experiment|all> [--paper] [--slots-log2 N] [--reps N] \
         [--seed N] [--csv DIR] [--no-csv]\nexperiments: {}",
        ALL.join(", ")
    )
}

fn parse_args(args: &[String]) -> Result<(Vec<String>, ExpOptions), String> {
    let mut opts = ExpOptions::default();
    let mut names = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--paper" => opts.paper_scale = true,
            "--no-csv" => opts.csv_dir = None,
            "--slots-log2" | "--reps" | "--seed" | "--csv" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("{arg} requires a value"))?;
                match arg.as_str() {
                    "--slots-log2" => {
                        opts.slots_log2 = value
                            .parse()
                            .map_err(|_| format!("bad --slots-log2 value '{value}'"))?;
                        if !(6..=26).contains(&opts.slots_log2) {
                            return Err("--slots-log2 must be in 6..=26".into());
                        }
                    }
                    "--reps" => {
                        opts.reps = value
                            .parse()
                            .map_err(|_| format!("bad --reps value '{value}'"))?;
                        if opts.reps == 0 {
                            return Err("--reps must be positive".into());
                        }
                    }
                    "--seed" => {
                        opts.seed = value
                            .parse()
                            .map_err(|_| format!("bad --seed value '{value}'"))?;
                    }
                    "--csv" => opts.csv_dir = Some(PathBuf::from(value)),
                    _ => unreachable!(),
                }
            }
            "--help" | "-h" => return Err(usage()),
            name if !name.starts_with('-') => names.push(name.to_owned()),
            other => return Err(format!("unknown option '{other}'\n{}", usage())),
        }
    }
    if names.is_empty() {
        return Err(usage());
    }
    if names.iter().any(|n| n == "all") {
        names = ALL.iter().map(|s| (*s).to_owned()).collect();
    }
    Ok((names, opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (names, opts) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "# vcf-repro: theta=2^{} slots, {} reps, seed {}{}",
        opts.theta(),
        opts.repetitions(),
        opts.seed,
        if opts.paper_scale {
            " (paper scale)"
        } else {
            ""
        }
    );

    for name in &names {
        println!("\n### experiment: {name}\n");
        let report = match run_by_name(name, &opts) {
            Ok(report) => report,
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(error) = report.emit(opts.csv_dir.as_deref()) {
            eprintln!("failed to write CSV: {error}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_single_experiment() {
        let (names, opts) = parse_args(&args(&["fig8"])).unwrap();
        assert_eq!(names, vec!["fig8"]);
        assert!(!opts.paper_scale);
    }

    #[test]
    fn all_expands_to_every_experiment() {
        let (names, _) = parse_args(&args(&["all"])).unwrap();
        assert_eq!(names.len(), ALL.len());
    }

    #[test]
    fn parses_options() {
        let (names, opts) = parse_args(&args(&[
            "table3",
            "--paper",
            "--slots-log2",
            "18",
            "--reps",
            "5",
            "--seed",
            "9",
            "--csv",
            "out",
        ]))
        .unwrap();
        assert_eq!(names, vec!["table3"]);
        assert!(opts.paper_scale);
        assert_eq!(opts.slots_log2, 18);
        assert_eq!(opts.reps, 5);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.csv_dir.unwrap().to_str().unwrap(), "out");
    }

    #[test]
    fn no_csv_disables_output() {
        let (_, opts) = parse_args(&args(&["fig4", "--no-csv"])).unwrap();
        assert!(opts.csv_dir.is_none());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["fig4", "--slots-log2"])).is_err());
        assert!(parse_args(&args(&["fig4", "--slots-log2", "40"])).is_err());
        assert!(parse_args(&args(&["fig4", "--reps", "0"])).is_err());
        assert!(parse_args(&args(&["fig4", "--bogus"])).is_err());
        assert!(parse_args(&args(&["--help"])).is_err());
    }

    #[test]
    fn multiple_experiments_preserved_in_order() {
        let (names, _) = parse_args(&args(&["fig4", "fig8", "table5"])).unwrap();
        assert_eq!(names, vec!["fig4", "fig8", "table5"]);
    }
}
