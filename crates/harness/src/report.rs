//! Plain-text table rendering and CSV output for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Text cell.
    Text(String),
    /// Integer cell.
    Int(i64),
    /// Float cell rendered with the given number of decimals.
    Float(f64, usize),
}

impl Cell {
    /// Renders the cell to a string.
    pub fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v, decimals) => format!("{v:.decimals$}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_owned())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as i64)
    }
}

/// A titled results table, renderable as aligned text and as CSV.
///
/// # Examples
///
/// ```
/// use vcf_harness::{Cell, Table};
///
/// let mut t = Table::new("demo", &["filter", "LF(%)"]);
/// t.row(vec![Cell::from("CF"), Cell::Float(98.16, 2)]);
/// let text = t.render();
/// assert!(text.contains("CF"));
/// assert!(text.contains("98.16"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table {}",
            self.title
        );
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-ish quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        fn escape(field: &str) -> String {
            if field.contains(',') || field.contains('"') || field.contains('\n') {
                format!("\"{}\"", field.replace('"', "\"\""))
            } else {
                field.to_owned()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|c| escape(&c.render())).collect();
            let _ = writeln!(out, "{}", line.join(","));
        }
        out
    }

    /// Writes the CSV rendering to `dir/<slug>.csv`, creating `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("{slug}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// A report: a set of tables produced by one experiment.
#[derive(Debug, Clone, Default)]
pub struct Report {
    tables: Vec<Table>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table.
    pub fn push(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// The tables, in insertion order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Prints every table to stdout and, when `csv_dir` is set, writes
    /// one CSV per table.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from CSV output.
    pub fn emit(&self, csv_dir: Option<&Path>) -> io::Result<()> {
        for table in &self.tables {
            println!("{}", table.render());
            if let Some(dir) = csv_dir {
                let path = table.write_csv(dir)?;
                println!("  [csv] {}\n", path.display());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig 9: FPR vs r", &["r", "IVCF", "DVCF"]);
        t.row(vec![
            Cell::Float(0.5, 3),
            Cell::Float(0.00071, 5),
            Cell::Float(0.00074, 5),
        ]);
        t.row(vec![
            Cell::Float(1.0, 3),
            Cell::Float(0.00097, 5),
            Cell::Float(0.00095, 5),
        ]);
        t
    }

    #[test]
    fn render_contains_all_cells() {
        let text = sample().render();
        assert!(text.contains("Fig 9"));
        assert!(text.contains("0.500"));
        assert!(text.contains("0.00095"));
    }

    #[test]
    fn columns_are_aligned() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "title, header, separator, 2 rows");
        // Right-aligned fixed-width columns: every data line has the same
        // length as the header line.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[1].len(), lines[4].len());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec![Cell::from("hello, world")]);
        assert!(t.to_csv().contains("\"hello, world\""));
    }

    #[test]
    fn csv_roundtrip_layout() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "r,IVCF,DVCF");
        assert_eq!(lines[1].split(',').count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec![Cell::from("only one")]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("vcf_report_test");
        let path = sample().write_csv(&dir).unwrap();
        assert!(path.exists());
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("r,IVCF,DVCF"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_collects_tables() {
        let mut r = Report::new();
        r.push(sample());
        r.push(sample());
        assert_eq!(r.tables().len(), 2);
    }
}
