//! Wall-clock measurement helpers.

use std::time::Instant;

/// Times `f`, returning `(result, elapsed_seconds)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64())
}

/// Simple summary statistics over repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than 2 samples).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub count: usize,
}

impl Summary {
    /// Summarizes `samples`.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            mean,
            stddev: var.sqrt(),
            min,
            max,
            count,
        }
    }
}

/// Converts seconds-per-`n`-operations into microseconds per operation.
pub fn micros_per_op(total_seconds: f64, ops: usize) -> f64 {
    if ops == 0 {
        return 0.0;
    }
    total_seconds * 1e6 / ops as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result_and_positive_elapsed() {
        let (value, secs) = time(|| (0..1000).sum::<u64>());
        assert_eq!(value, 499_500);
        assert!(secs >= 0.0);
    }

    #[test]
    fn summary_of_constant_samples() {
        let s = Summary::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn summary_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Sample stddev of 1..4 is sqrt(5/3).
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn single_sample_has_zero_stddev() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_samples_panic() {
        Summary::of(&[]);
    }

    #[test]
    fn micros_per_op_conversion() {
        assert!((micros_per_op(1.0, 1_000_000) - 1.0).abs() < 1e-12);
        assert_eq!(micros_per_op(1.0, 0), 0.0);
    }
}
