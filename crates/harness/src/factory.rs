//! Uniform construction of every filter the paper compares.

use vcf_baselines::{CuckooFilter, DaryCuckooFilter};
use vcf_core::{CuckooConfig, Dvcf, KVcf, VerticalCuckooFilter};
use vcf_traits::{BuildError, Filter};

/// Which filter to build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterKind {
    /// Standard Cuckoo filter.
    Cf,
    /// D-ary Cuckoo filter with `d` candidates (the paper fixes 4).
    Dcf {
        /// Number of candidate buckets.
        d: usize,
    },
    /// Standard VCF (balanced bitmasks).
    Vcf,
    /// `IVCF_i`: `ones` one-bits in the first bitmask.
    Ivcf {
        /// One-bits in `bm1`.
        ones: u32,
    },
    /// DVCF with four-candidate fraction `r`.
    Dvcf {
        /// Target fraction of four-candidate items.
        r: f64,
    },
    /// k-VCF with `k` candidates.
    KVcf {
        /// Number of candidate buckets.
        k: usize,
    },
}

/// A labelled filter specification, the row identity in every table.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterSpec {
    /// How to build the filter.
    pub kind: FilterKind,
    /// Row label, e.g. `"IVCF3"`.
    pub label: String,
    /// The nominal trade-off knob `r` this spec targets (0 for CF; DCF has
    /// no `r`, recorded as `NaN`).
    pub r: f64,
}

impl FilterSpec {
    /// Standard CF baseline (`r = 0`).
    pub fn cf() -> Self {
        Self {
            kind: FilterKind::Cf,
            label: "CF".into(),
            r: 0.0,
        }
    }

    /// DCF baseline with `d = 4` as in the paper.
    pub fn dcf() -> Self {
        Self {
            kind: FilterKind::Dcf { d: 4 },
            label: "DCF".into(),
            r: f64::NAN,
        }
    }

    /// Standard VCF (balanced masks); `r` per Equ. 8 at `fingerprint_bits`.
    pub fn vcf(fingerprint_bits: u32) -> Self {
        Self {
            kind: FilterKind::Vcf,
            label: "VCF".into(),
            r: vcf_analysis::p_four_standard(fingerprint_bits),
        }
    }

    /// `IVCF_i` with `r` per Equ. 8.
    pub fn ivcf(ones: u32, fingerprint_bits: u32) -> Self {
        Self {
            kind: FilterKind::Ivcf { ones },
            label: format!("IVCF{ones}"),
            r: vcf_analysis::p_four(fingerprint_bits, fingerprint_bits - ones),
        }
    }

    /// `DVCF_j` with `r = j/8` (the paper's `2Δt = j · 0.125 · 2^14`).
    pub fn dvcf_j(j: u32) -> Self {
        Self {
            kind: FilterKind::Dvcf {
                r: f64::from(j) / 8.0,
            },
            label: format!("DVCF{j}"),
            r: f64::from(j) / 8.0,
        }
    }

    /// k-VCF with `k` candidates.
    pub fn kvcf(k: usize) -> Self {
        Self {
            kind: FilterKind::KVcf { k },
            label: format!("{k}-VCF"),
            r: f64::NAN,
        }
    }

    /// Builds the filter over `config`.
    ///
    /// # Errors
    ///
    /// Propagates the constructor's [`BuildError`].
    pub fn build(&self, config: CuckooConfig) -> Result<Box<dyn Filter>, BuildError> {
        Ok(match self.kind {
            FilterKind::Cf => Box::new(CuckooFilter::new(config)?),
            FilterKind::Dcf { d } => Box::new(DaryCuckooFilter::new(config, d)?),
            FilterKind::Vcf => Box::new(VerticalCuckooFilter::new(config)?),
            FilterKind::Ivcf { ones } => {
                Box::new(VerticalCuckooFilter::with_mask_ones(config, ones)?)
            }
            FilterKind::Dvcf { r } => Box::new(Dvcf::with_r(config, r)?),
            FilterKind::KVcf { k } => Box::new(KVcf::new(config, k)?),
        })
    }

    /// The paper's Section VI line-up: CF, DCF, `IVCF_1..6` plus VCF
    /// (`IVCF_7` at `f = 14`), and `DVCF_1..8`.
    pub fn paper_lineup(fingerprint_bits: u32) -> Vec<FilterSpec> {
        let mut specs = vec![FilterSpec::cf(), FilterSpec::dcf()];
        for ones in 1..=6 {
            specs.push(FilterSpec::ivcf(ones, fingerprint_bits));
        }
        specs.push(FilterSpec::vcf(fingerprint_bits));
        for j in 1..=8 {
            specs.push(FilterSpec::dvcf_j(j));
        }
        specs
    }

    /// Just the IVCF ladder plus VCF (Fig. 5(a), 7(a)).
    pub fn ivcf_ladder(fingerprint_bits: u32) -> Vec<FilterSpec> {
        let mut specs: Vec<FilterSpec> = (1..=6)
            .map(|ones| FilterSpec::ivcf(ones, fingerprint_bits))
            .collect();
        specs.push(FilterSpec::vcf(fingerprint_bits));
        specs
    }

    /// Just the DVCF ladder (Fig. 5(b), 7(b)).
    pub fn dvcf_ladder() -> Vec<FilterSpec> {
        (1..=8).map(FilterSpec::dvcf_j).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_kind() {
        let config = CuckooConfig::new(1 << 8);
        for spec in FilterSpec::paper_lineup(14) {
            let mut filter = spec.build(config).unwrap();
            filter.insert(b"smoke").unwrap();
            assert!(filter.contains(b"smoke"), "{}", spec.label);
        }
        let mut kv = FilterSpec::kvcf(6).build(config).unwrap();
        kv.insert(b"smoke").unwrap();
        assert!(kv.contains(b"smoke"));
    }

    #[test]
    fn lineup_matches_paper() {
        let specs = FilterSpec::paper_lineup(14);
        let labels: Vec<&str> = specs.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels[0], "CF");
        assert_eq!(labels[1], "DCF");
        assert_eq!(labels[2], "IVCF1");
        assert_eq!(labels[8], "VCF");
        assert_eq!(labels[9], "DVCF1");
        assert_eq!(labels[16], "DVCF8");
        assert_eq!(specs.len(), 17);
    }

    #[test]
    fn r_values_are_monotone_in_the_ladders() {
        let ivcf = FilterSpec::ivcf_ladder(14);
        for pair in ivcf.windows(2) {
            assert!(pair[0].r < pair[1].r, "IVCF r must increase with ones");
        }
        let dvcf = FilterSpec::dvcf_ladder();
        for pair in dvcf.windows(2) {
            assert!(pair[0].r < pair[1].r, "DVCF r must increase with j");
        }
        assert!((dvcf.last().unwrap().r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cf_has_r_zero_and_dcf_nan() {
        assert_eq!(FilterSpec::cf().r, 0.0);
        assert!(FilterSpec::dcf().r.is_nan());
    }

    #[test]
    fn vcf_r_matches_paper_quote() {
        // Balanced split at f = 14 → 0.9844.
        assert!((FilterSpec::vcf(14).r - 0.9844).abs() < 1e-3);
    }
}
