//! Reusable measurement routines: fill, lookup, false-positive probes.

use crate::timing::{micros_per_op, time};
use vcf_traits::Filter;

/// Result of feeding a key set into a filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FillOutcome {
    /// Keys offered.
    pub attempted: usize,
    /// Keys acknowledged (insert returned `Ok`).
    pub stored: usize,
    /// Wall-clock seconds for the whole fill.
    pub seconds: f64,
    /// Mean microseconds per attempted insertion.
    pub micros_per_insert: f64,
    /// Load factor as the paper measures it: stored / capacity.
    pub load_factor: f64,
    /// Measured `E0`: fingerprint evictions per attempted insertion
    /// (failed insertions contribute their full `MAX` kicks, exactly as in
    /// Equ. 15).
    pub kicks_per_insert: f64,
    /// Insertions rejected at the kick limit.
    pub failures: usize,
}

/// Feeds `keys` into `filter`, timing the whole run.
pub fn fill(filter: &mut dyn Filter, keys: &[Vec<u8>]) -> FillOutcome {
    filter.reset_stats();
    let (stored, seconds) = time(|| {
        let mut stored = 0usize;
        for key in keys {
            if filter.insert(key).is_ok() {
                stored += 1;
            }
        }
        stored
    });
    let stats = filter.stats();
    FillOutcome {
        attempted: keys.len(),
        stored,
        seconds,
        micros_per_insert: micros_per_op(seconds, keys.len()),
        load_factor: stored as f64 / filter.capacity() as f64,
        kicks_per_insert: stats.kicks_per_insert(),
        failures: stats.failed_inserts as usize,
    }
}

/// Result of a timed lookup run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookupOutcome {
    /// Queries issued.
    pub queries: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Mean microseconds per query.
    pub micros_per_lookup: f64,
    /// Queries answered positively.
    pub positives: usize,
}

/// Times lookups of `keys` (the paper's "100 % existing items" case when
/// `keys` were all inserted).
pub fn lookup(filter: &dyn Filter, keys: &[Vec<u8>]) -> LookupOutcome {
    let (positives, seconds) = time(|| keys.iter().filter(|k| filter.contains(k)).count());
    LookupOutcome {
        queries: keys.len(),
        seconds,
        micros_per_lookup: micros_per_op(seconds, keys.len()),
        positives,
    }
}

/// Times a 50/50 interleave of `existing` and `alien` queries (the
/// paper's "mixed" case, Fig. 6(b)).
pub fn lookup_mixed(filter: &dyn Filter, existing: &[Vec<u8>], alien: &[Vec<u8>]) -> LookupOutcome {
    let n = existing.len().min(alien.len());
    let (positives, seconds) = time(|| {
        let mut positives = 0usize;
        for i in 0..n {
            if filter.contains(&existing[i]) {
                positives += 1;
            }
            if filter.contains(&alien[i]) {
                positives += 1;
            }
        }
        positives
    });
    LookupOutcome {
        queries: 2 * n,
        seconds,
        micros_per_lookup: micros_per_op(seconds, 2 * n),
        positives,
    }
}

/// Result of a false-positive probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FprOutcome {
    /// Alien keys queried (none were inserted).
    pub queried: usize,
    /// Queries answered `true`.
    pub false_positives: usize,
    /// The measured rate.
    pub rate: f64,
}

/// Queries `aliens` (guaranteed non-inserted) and reports the fraction
/// answered positively — the paper's `ξ'` methodology (Section VI-B3).
pub fn measure_fpr(filter: &dyn Filter, aliens: &[Vec<u8>]) -> FprOutcome {
    let false_positives = aliens.iter().filter(|k| filter.contains(k)).count();
    FprOutcome {
        queried: aliens.len(),
        false_positives,
        rate: if aliens.is_empty() {
            0.0
        } else {
            false_positives as f64 / aliens.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcf_core::{CuckooConfig, VerticalCuckooFilter};
    use vcf_workloads::KeyStream;

    fn filter() -> VerticalCuckooFilter {
        VerticalCuckooFilter::new(CuckooConfig::new(1 << 8).with_seed(1)).unwrap()
    }

    #[test]
    fn fill_reports_consistent_counts() {
        let mut f = filter();
        let keys = KeyStream::new(1).take_vec(500);
        let outcome = fill(&mut f, &keys);
        assert_eq!(outcome.attempted, 500);
        assert_eq!(outcome.stored, 500);
        assert_eq!(outcome.failures, 0);
        assert!((outcome.load_factor - 500.0 / 1024.0).abs() < 1e-9);
        assert!(outcome.seconds >= 0.0);
    }

    #[test]
    fn fill_counts_failures_at_overflow() {
        let mut f = filter();
        let keys = KeyStream::new(2).take_vec(1200);
        let outcome = fill(&mut f, &keys);
        assert!(outcome.stored < outcome.attempted);
        assert_eq!(outcome.failures, outcome.attempted - outcome.stored);
        assert!(outcome.kicks_per_insert > 0.0);
    }

    #[test]
    fn lookup_finds_all_positives() {
        let mut f = filter();
        let keys = KeyStream::new(3).take_vec(400);
        fill(&mut f, &keys);
        let outcome = lookup(&f, &keys);
        assert_eq!(outcome.positives, 400, "no false negatives allowed");
        assert_eq!(outcome.queries, 400);
    }

    #[test]
    fn mixed_lookup_interleaves() {
        let mut f = filter();
        let keys = KeyStream::new(4).take_vec(300);
        fill(&mut f, &keys);
        let aliens = KeyStream::new(999).take_vec(300);
        let outcome = lookup_mixed(&f, &keys, &aliens);
        assert_eq!(outcome.queries, 600);
        // All 300 positives must hit; aliens contribute ~0 extra.
        assert!(outcome.positives >= 300);
        assert!(outcome.positives < 320);
    }

    #[test]
    fn fpr_is_low_for_aliens() {
        let mut f = filter();
        let keys = KeyStream::new(5).take_vec(900);
        fill(&mut f, &keys);
        let aliens = KeyStream::new(12345).take_vec(20_000);
        let outcome = measure_fpr(&f, &aliens);
        assert_eq!(outcome.queried, 20_000);
        assert!(outcome.rate < 0.01, "fpr = {}", outcome.rate);
    }

    #[test]
    fn fpr_empty_aliens() {
        let f = filter();
        let outcome = measure_fpr(&f, &[]);
        assert_eq!(outcome.rate, 0.0);
    }
}
