//! Fig. 7 — time consumption of item insertion for IVCFs and DVCFs with
//! respect to the filter size, plus average insertion time vs `r`.
//!
//! Expected shape: VCF cuts the per-item insertion time roughly in half
//! versus CF; DCF costs about twice VCF (base-`d` indexing); IVCF is
//! slightly cheaper than DVCF at high `r` (no interval judgment).

use crate::experiments::fig5::sweep;
use crate::experiments::FillPoint;
use crate::factory::FilterSpec;
use crate::report::{Cell, Report, Table};
use crate::ExpOptions;

fn time_table(title: &str, specs: &[FilterSpec], points: &[Vec<FillPoint>]) -> Table {
    let mut headers: Vec<String> = vec!["theta".into()];
    headers.extend(specs.iter().map(|s| format!("{} IT(us)", s.label)));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &header_refs);
    for i in 0..points[0].len() {
        let mut row = vec![Cell::Int(i64::from(points[0][i].slots_log2))];
        for spec_points in points {
            row.push(Cell::Float(spec_points[i].micros_per_insert.mean, 3));
        }
        table.row(row);
    }
    table
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Report {
    let mut report = Report::new();

    let mut ivcf_specs = vec![FilterSpec::cf(), FilterSpec::dcf()];
    ivcf_specs.extend(FilterSpec::ivcf_ladder(14));
    let ivcf_points = sweep(&ivcf_specs, opts);
    report.push(time_table(
        "Fig 7a: IVCF insertion time vs filter size",
        &ivcf_specs,
        &ivcf_points,
    ));

    let mut dvcf_specs = vec![FilterSpec::cf(), FilterSpec::dcf()];
    dvcf_specs.extend(FilterSpec::dvcf_ladder());
    let dvcf_points = sweep(&dvcf_specs, opts);
    report.push(time_table(
        "Fig 7b: DVCF insertion time vs filter size",
        &dvcf_specs,
        &dvcf_points,
    ));

    let mut avg = Table::new(
        "Fig 7c: average insertion time vs r",
        &["family", "label", "r", "avg IT(us)", "avg fill (s)"],
    );
    for (specs, points, family) in [
        (&ivcf_specs, &ivcf_points, "IVCF"),
        (&dvcf_specs, &dvcf_points, "DVCF"),
    ] {
        for (spec, spec_points) in specs.iter().zip(points.iter()) {
            let mean = spec_points
                .iter()
                .map(|p| p.micros_per_insert.mean)
                .sum::<f64>()
                / spec_points.len() as f64;
            let fill_secs = spec_points
                .iter()
                .map(|p| p.total_seconds.mean)
                .sum::<f64>()
                / spec_points.len() as f64;
            let family = match spec.label.as_str() {
                "CF" => "CF",
                "DCF" => "DCF",
                _ => family,
            };
            avg.row(vec![
                Cell::from(family),
                Cell::from(spec.label.clone()),
                if spec.r.is_nan() {
                    Cell::from("-")
                } else {
                    Cell::Float(spec.r, 4)
                },
                Cell::Float(mean, 3),
                Cell::Float(fill_secs, 4),
            ]);
        }
    }
    report.push(avg);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fill_point;

    #[test]
    fn vcf_inserts_faster_than_cf_when_full() {
        // The headline claim: near-capacity fills cost CF far more kicks,
        // hence more time per insert.
        let opts = ExpOptions {
            slots_log2: 14,
            reps: 2,
            csv_dir: None,
            ..Default::default()
        };
        let cf = fill_point(&FilterSpec::cf(), 14, &opts, |c| c);
        let vcf = fill_point(&FilterSpec::vcf(14), 14, &opts, |c| c);
        assert!(
            vcf.kicks_per_insert.mean < cf.kicks_per_insert.mean,
            "VCF kicks {} must be below CF kicks {}",
            vcf.kicks_per_insert.mean,
            cf.kicks_per_insert.mean
        );
    }
}
