//! Table III — LF (load factor), IT (average insert time), QT (average
//! mixed query time) and FPR for CF, DCF, IVCF1–6 + VCF, and DVCF1–8.
//!
//! Expected shape: LF grows CF < DVCF ≤ IVCF ≤ DCF; IT(VCF) ≈ half of
//! IT(CF) and far below IT(DCF); QT slightly above CF for the VCF family
//! and worst for DCF; FPR grows with `r`, roughly doubling from CF to
//! VCF.

use crate::factory::FilterSpec;
use crate::report::{Cell, Report, Table};
use crate::runner::{fill, lookup, lookup_mixed, measure_fpr};
use crate::timing::Summary;
use crate::ExpOptions;
use vcf_core::CuckooConfig;
use vcf_workloads::HiggsDataset;

/// Runs the experiment. Uses the synthetic HIGGS dataset (see DESIGN.md)
/// exactly as the paper does: `n` stored keys, a disjoint alien set `D`
/// for FPR, 50/50 mixed lookups for QT.
pub fn run(opts: &ExpOptions) -> Report {
    let theta = opts.theta();
    let slots = 1usize << theta;
    let reps = opts.repetitions().max(1);

    let mut table = Table::new(
        &format!("Table III: LF / IT / QT / FPR (2^{theta} slots, f=14, MAX=500)"),
        &["filter", "r", "LF(%)", "IT(us)", "QT(us)", "FPR(x1e-3)"],
    );

    // Datasets are per-rep, shared across the whole line-up (generating
    // 2^(θ+1) HIGGS records once per spec would dominate paper-scale runs).
    let datasets: Vec<HiggsDataset> = (0..reps)
        .map(|rep| HiggsDataset::generate(2 * slots, opts.seed.wrapping_add(rep as u64)))
        .collect();

    for spec in FilterSpec::paper_lineup(14) {
        let mut lf = Vec::new();
        let mut it = Vec::new();
        let mut qt = Vec::new();
        let mut fpr = Vec::new();
        for (rep, dataset) in datasets.iter().enumerate() {
            let seed = opts.seed.wrapping_add(rep as u64);
            // Dataset: n stored + n alien unique keys.
            let (stored_keys, alien_keys) = dataset.split(slots);

            let config = CuckooConfig::with_total_slots(slots).with_seed(seed ^ 0x7ab1e3);
            let mut filter = spec.build(config).expect("lineup spec must build");
            let outcome = fill(filter.as_mut(), stored_keys);
            lf.push(outcome.load_factor);
            it.push(outcome.micros_per_insert);
            // Untimed warm-up pass so the first spec measured does not pay
            // cold-cache/frequency-ramp costs in its QT column.
            let warm = stored_keys.len().min(8192);
            let _ = lookup(filter.as_ref(), &stored_keys[..warm]);
            let mixed = lookup_mixed(filter.as_ref(), stored_keys, alien_keys);
            qt.push(mixed.micros_per_lookup);
            fpr.push(measure_fpr(filter.as_ref(), alien_keys).rate);
        }
        table.row(vec![
            Cell::from(spec.label.clone()),
            if spec.r.is_nan() {
                Cell::from("-")
            } else {
                Cell::Float(spec.r, 3)
            },
            Cell::Float(Summary::of(&lf).mean * 100.0, 2),
            Cell::Float(Summary::of(&it).mean, 3),
            Cell::Float(Summary::of(&qt).mean, 3),
            Cell::Float(Summary::of(&fpr).mean * 1e3, 3),
        ]);
    }

    let mut report = Report::new();
    report.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_rows_and_shape() {
        let opts = ExpOptions {
            slots_log2: 12,
            reps: 1,
            csv_dir: None,
            ..Default::default()
        };
        let report = run(&opts);
        let table = &report.tables()[0];
        assert_eq!(table.len(), 17, "CF + DCF + 7 IVCF + 8 DVCF");
    }
}
