//! Fig. 6 — average lookup time with different `r`: (a) 100 % existing
//! items, (b) 50/50 mix of existing and alien items.
//!
//! Expected shape: IVCF lookup cost is a small constant above CF
//! regardless of `r` (it always probes four bucket entries); DVCF lookup
//! grows with `r`; DCF is the slowest (base-`d` conversions); negative
//! lookups cost more than positive ones (no early exit).

use crate::factory::FilterSpec;
use crate::report::{Cell, Report, Table};
use crate::runner::{fill, lookup, lookup_mixed};
use crate::timing::Summary;
use crate::ExpOptions;
use vcf_core::CuckooConfig;
use vcf_workloads::KeyStream;

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Report {
    let theta = opts.theta();
    let slots = 1usize << theta;
    let reps = opts.repetitions().max(1);

    let mut table = Table::new(
        &format!("Fig 6: lookup time vs r (2^{theta} slots & items)"),
        &["filter", "r", "positive QT(us)", "mixed QT(us)"],
    );

    for spec in FilterSpec::paper_lineup(14) {
        let mut positive = Vec::new();
        let mut mixed = Vec::new();
        for rep in 0..reps {
            let seed = opts.seed.wrapping_add(rep as u64);
            let keys = KeyStream::new(seed).take_vec(slots);
            let aliens = KeyStream::new(seed ^ 0x000a_11e4).take_vec(slots);
            let config = CuckooConfig::with_total_slots(slots).with_seed(seed ^ 0xf166);
            let mut filter = spec.build(config).expect("lineup spec must build");
            fill(filter.as_mut(), &keys);
            // Untimed warm-up pass (cold caches would bias the first row).
            let warm = keys.len().min(8192);
            let _ = lookup(filter.as_ref(), &keys[..warm]);
            positive.push(lookup(filter.as_ref(), &keys).micros_per_lookup);
            mixed.push(lookup_mixed(filter.as_ref(), &keys, &aliens).micros_per_lookup);
        }
        table.row(vec![
            Cell::from(spec.label.clone()),
            if spec.r.is_nan() {
                Cell::from("-")
            } else {
                Cell::Float(spec.r, 3)
            },
            Cell::Float(Summary::of(&positive).mean, 3),
            Cell::Float(Summary::of(&mixed).mean, 3),
        ]);
    }

    let mut report = Report::new();
    report.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_full_lineup() {
        let opts = ExpOptions {
            slots_log2: 10,
            reps: 1,
            csv_dir: None,
            ..Default::default()
        };
        let report = run(&opts);
        assert_eq!(report.tables()[0].len(), 17);
    }
}
