//! Fig. 5 — load factor for IVCFs and DVCFs with respect to filter size,
//! and average load factor vs `r`.
//!
//! Expected shape: load factor increases monotonically with `r`
//! (Fig. 5(c)); IVCF ≥ DVCF at equal `r`; DVCF's load factor degrades at
//! small filter sizes while IVCF's does not (Fig. 5(a) vs 5(b)).

use crate::experiments::{fill_point, FillPoint};
use crate::factory::FilterSpec;
use crate::report::{Cell, Report, Table};
use crate::ExpOptions;

/// The filter-size sweep (`θ`: log2 of slot count). Paper: 10–23; quick
/// mode trims the top end for runtime.
pub fn sizes(opts: &ExpOptions) -> Vec<u32> {
    if opts.paper_scale {
        (10..=20).collect()
    } else {
        vec![10, 12, 14, opts.slots_log2.clamp(14, 20)]
    }
}

pub(crate) fn sweep(specs: &[FilterSpec], opts: &ExpOptions) -> Vec<Vec<FillPoint>> {
    let sizes = sizes(opts);
    specs
        .iter()
        .map(|spec| {
            sizes
                .iter()
                .map(|&s| fill_point(spec, s, opts, |c| c))
                .collect()
        })
        .collect()
}

fn size_table(title: &str, specs: &[FilterSpec], points: &[Vec<FillPoint>]) -> Table {
    let mut headers: Vec<String> = vec!["theta".into()];
    headers.extend(specs.iter().map(|s| format!("{} LF(%)", s.label)));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &header_refs);
    let n_sizes = points[0].len();
    for i in 0..n_sizes {
        let mut row = vec![Cell::Int(i64::from(points[0][i].slots_log2))];
        for spec_points in points {
            row.push(Cell::Float(spec_points[i].load_factor.mean * 100.0, 2));
        }
        table.row(row);
    }
    table
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Report {
    let mut report = Report::new();

    // (a) IVCF ladder + CF.
    let mut ivcf_specs = vec![FilterSpec::cf()];
    ivcf_specs.extend(FilterSpec::ivcf_ladder(14));
    let ivcf_points = sweep(&ivcf_specs, opts);
    report.push(size_table(
        "Fig 5a: IVCF load factor vs filter size",
        &ivcf_specs,
        &ivcf_points,
    ));

    // (b) DVCF ladder + CF.
    let mut dvcf_specs = vec![FilterSpec::cf()];
    dvcf_specs.extend(FilterSpec::dvcf_ladder());
    let dvcf_points = sweep(&dvcf_specs, opts);
    report.push(size_table(
        "Fig 5b: DVCF load factor vs filter size",
        &dvcf_specs,
        &dvcf_points,
    ));

    // (c) average load factor over all sizes, as a function of r.
    let mut avg = Table::new(
        "Fig 5c: average load factor vs r",
        &["family", "label", "r", "avg LF(%)"],
    );
    for (specs, points, family) in [
        (&ivcf_specs, &ivcf_points, "IVCF"),
        (&dvcf_specs, &dvcf_points, "DVCF"),
    ] {
        for (spec, spec_points) in specs.iter().zip(points.iter()) {
            let mean = spec_points.iter().map(|p| p.load_factor.mean).sum::<f64>()
                / spec_points.len() as f64;
            let family = if spec.label == "CF" { "CF" } else { family };
            avg.row(vec![
                Cell::from(family),
                Cell::from(spec.label.clone()),
                Cell::Float(spec.r, 4),
                Cell::Float(mean * 100.0, 2),
            ]);
        }
    }
    report.push(avg);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_factor_grows_with_r() {
        let opts = ExpOptions {
            slots_log2: 12,
            reps: 1,
            csv_dir: None,
            ..Default::default()
        };
        let specs = [
            FilterSpec::cf(),
            FilterSpec::ivcf(2, 14),
            FilterSpec::vcf(14),
        ];
        let points: Vec<f64> = specs
            .iter()
            .map(|s| fill_point(s, 12, &opts, |c| c).load_factor.mean)
            .collect();
        assert!(
            points[0] <= points[2] + 0.003,
            "CF {} vs VCF {}",
            points[0],
            points[2]
        );
        assert!(
            points[1] <= points[2] + 0.01,
            "IVCF2 {} vs VCF {}",
            points[1],
            points[2]
        );
    }

    #[test]
    fn quick_sizes_are_small() {
        let opts = ExpOptions {
            slots_log2: 16,
            csv_dir: None,
            ..Default::default()
        };
        let s = sizes(&opts);
        assert!(s.iter().all(|&t| t <= 20));
        assert!(s.len() >= 3);
    }
}
