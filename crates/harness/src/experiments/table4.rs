//! Table IV — total insertion time of CF, IVCF (max `r`) and DVCF (max
//! `r`) under FNV, MurmurHash3 and DJBHash.
//!
//! Expected shape: the VCF variants beat CF under every hash function;
//! the advantage is largest with the cheap FNV/DJB2 hashes and smaller
//! with Murmur (whose higher per-call cost dilutes the saved relocation
//! hashes).

use crate::factory::FilterSpec;
use crate::report::{Cell, Report, Table};
use crate::runner::fill;
use crate::timing::Summary;
use crate::ExpOptions;
use vcf_core::CuckooConfig;
use vcf_hash::HashKind;
use vcf_workloads::KeyStream;

/// Runs the experiment. "Setting r of IVCF and DVCF to the maximum":
/// IVCF uses the balanced masks (= VCF), DVCF uses `r = 1`.
pub fn run(opts: &ExpOptions) -> Report {
    let theta = opts.theta();
    let slots = 1usize << theta;
    let reps = opts.repetitions().max(1);

    let specs = [FilterSpec::cf(), FilterSpec::vcf(14), FilterSpec::dvcf_j(8)];
    let mut table = Table::new(
        &format!("Table IV: total insertion time by hash function (2^{theta} items, seconds)"),
        &["hash", "CF (s)", "IVCF (s)", "DVCF (s)"],
    );

    for hash in HashKind::ALL {
        let mut row = vec![Cell::from(hash.name())];
        for spec in &specs {
            let mut seconds = Vec::new();
            for rep in 0..reps {
                let seed = opts.seed.wrapping_add(rep as u64);
                let keys = KeyStream::new(seed).take_vec(slots);
                let config = CuckooConfig::with_total_slots(slots)
                    .with_seed(seed)
                    .with_hash(hash);
                let mut filter = spec.build(config).expect("table4 spec");
                seconds.push(fill(filter.as_mut(), &keys).seconds);
            }
            row.push(Cell::Float(Summary::of(&seconds).mean, 4));
        }
        table.row(row);
    }

    let mut report = Report::new();
    report.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_three_hashes() {
        let opts = ExpOptions {
            slots_log2: 10,
            reps: 1,
            csv_dir: None,
            ..Default::default()
        };
        let report = run(&opts);
        let csv = report.tables()[0].to_csv();
        for name in ["FNV", "Murmur3", "DJB2"] {
            assert!(csv.contains(name), "missing {name} row:\n{csv}");
        }
    }
}
