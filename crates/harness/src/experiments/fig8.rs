//! Fig. 8 — average number of evicted fingerprints `E0` with different
//! `r`, against the Section V model (Equ. 14/15).
//!
//! Expected shape: `E0` drops sharply as `r` grows — ≈12.8 for CF down to
//! ≈1.3 for VCF in the paper — and DVCF sits slightly above IVCF at equal
//! `r`.

use crate::experiments::fill_point;
use crate::factory::FilterSpec;
use crate::report::{Cell, Report, Table};
use crate::ExpOptions;

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Report {
    let theta = opts.theta();
    let mut table = Table::new(
        &format!("Fig 8: average evictions E0 vs r (2^{theta} slots)"),
        &["filter", "r", "measured E0", "model E0 (Equ.14/15)"],
    );

    for spec in FilterSpec::paper_lineup(14) {
        let point = fill_point(&spec, theta, opts, |c| c);
        let model = if spec.r.is_nan() {
            f64::NAN
        } else {
            let alpha = point.load_factor.mean.min(0.999);
            let e = vcf_analysis::avg_insert_cost(alpha, spec.r, 4);
            vcf_analysis::e0(point.load_factor.mean, e)
        };
        table.row(vec![
            Cell::from(spec.label.clone()),
            if spec.r.is_nan() {
                Cell::from("-")
            } else {
                Cell::Float(spec.r, 3)
            },
            Cell::Float(point.kicks_per_insert.mean, 3),
            if model.is_nan() {
                Cell::from("-")
            } else {
                Cell::Float(model, 3)
            },
        ]);
    }

    let mut report = Report::new();
    report.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e0_drops_with_r() {
        let opts = ExpOptions {
            slots_log2: 13,
            reps: 2,
            csv_dir: None,
            ..Default::default()
        };
        let cf = fill_point(&FilterSpec::cf(), 13, &opts, |c| c);
        let mid = fill_point(&FilterSpec::ivcf(3, 14), 13, &opts, |c| c);
        let vcf = fill_point(&FilterSpec::vcf(14), 13, &opts, |c| c);
        assert!(
            vcf.kicks_per_insert.mean < mid.kicks_per_insert.mean,
            "vcf={} mid={}",
            vcf.kicks_per_insert.mean,
            mid.kicks_per_insert.mean
        );
        assert!(
            mid.kicks_per_insert.mean < cf.kicks_per_insert.mean,
            "mid={} cf={}",
            mid.kicks_per_insert.mean,
            cf.kicks_per_insert.mean
        );
    }
}
