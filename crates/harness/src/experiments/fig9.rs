//! Fig. 9 — false positive rate with respect to `r` at a fixed filter
//! size, against the Equ. 10 bound.
//!
//! Expected shape: FPR grows ≈linearly in `r` (more candidate buckets →
//! more fingerprint comparisons per lookup); IVCF and DVCF are similar at
//! equal `r`; everything stays below the Equ. 10 upper bound.

use crate::factory::FilterSpec;
use crate::report::{Cell, Report, Table};
use crate::runner::{fill, measure_fpr};
use crate::timing::Summary;
use crate::ExpOptions;
use vcf_core::CuckooConfig;
use vcf_workloads::HiggsDataset;

/// Runs the experiment. Builds the alien set `D` from dataset items that
/// were never inserted, exactly as Section VI-B3 describes.
pub fn run(opts: &ExpOptions) -> Report {
    let theta = opts.theta();
    let slots = 1usize << theta;
    let reps = opts.repetitions().max(1);

    let mut table = Table::new(
        &format!("Fig 9: false positive rate vs r (2^{theta} slots, f=14)"),
        &["filter", "r", "FPR(x1e-3)", "Equ.10 bound(x1e-3)"],
    );

    let datasets: Vec<HiggsDataset> = (0..reps)
        .map(|rep| HiggsDataset::generate(2 * slots, opts.seed.wrapping_add(rep as u64)))
        .collect();

    for spec in FilterSpec::paper_lineup(14) {
        let mut rates = Vec::new();
        let mut alphas = Vec::new();
        for (rep, dataset) in datasets.iter().enumerate() {
            let seed = opts.seed.wrapping_add(rep as u64);
            let (stored_keys, alien_keys) = dataset.split(slots);
            let config = CuckooConfig::with_total_slots(slots).with_seed(seed ^ 0xf9);
            let mut filter = spec.build(config).expect("lineup spec must build");
            let outcome = fill(filter.as_mut(), stored_keys);
            alphas.push(outcome.load_factor);
            rates.push(measure_fpr(filter.as_ref(), alien_keys).rate);
        }
        let alpha = Summary::of(&alphas).mean;
        let bound = if spec.r.is_nan() {
            // DCF: d=4 candidates always → same form with r=1.
            vcf_analysis::fpr_upper_bound(1.0, 4, alpha, 14)
        } else {
            vcf_analysis::fpr_upper_bound(spec.r, 4, alpha, 14)
        };
        table.row(vec![
            Cell::from(spec.label.clone()),
            if spec.r.is_nan() {
                Cell::from("-")
            } else {
                Cell::Float(spec.r, 3)
            },
            Cell::Float(Summary::of(&rates).mean * 1e3, 3),
            Cell::Float(bound * 1e3, 3),
        ]);
    }

    let mut report = Report::new();
    report.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpr_grows_with_r_and_respects_bound() {
        let opts = ExpOptions {
            slots_log2: 14,
            reps: 2,
            csv_dir: None,
            ..Default::default()
        };
        let slots = 1usize << 14;
        let measure = |spec: &FilterSpec| {
            let mut rates = Vec::new();
            for rep in 0..2u64 {
                let dataset = HiggsDataset::generate(2 * slots, opts.seed + rep);
                let (stored, alien) = dataset.split(slots);
                let config = CuckooConfig::with_total_slots(slots).with_seed(rep);
                let mut filter = spec.build(config).unwrap();
                fill(filter.as_mut(), stored);
                rates.push(measure_fpr(filter.as_ref(), alien).rate);
            }
            Summary::of(&rates).mean
        };
        let cf = measure(&FilterSpec::cf());
        let vcf = measure(&FilterSpec::vcf(14));
        assert!(
            vcf > cf,
            "four candidates must raise FPR: cf={cf} vcf={vcf}"
        );
        // Equ. 10: VCF bound at α≈1 is ~16/2^14 ≈ 0.98e-3; allow noise.
        assert!(vcf < 2.0 * vcf_analysis::fpr_upper_bound(1.0, 4, 1.0, 14));
    }
}
