//! One module per paper artifact (table or figure), each exposing
//! `run(&ExpOptions) -> Report`.
//!
//! | Module   | Paper artifact | What it regenerates |
//! |----------|----------------|---------------------|
//! | `table1` | Table I        | space / throughput / deletion vs BF |
//! | `fig4`   | Fig. 4         | load factor vs fingerprint length |
//! | `table3` | Table III      | LF / IT / QT / FPR for the full line-up |
//! | `fig5`   | Fig. 5(a–c)    | load factor vs filter size and vs r |
//! | `fig6`   | Fig. 6(a,b)    | lookup time vs r (positive / mixed) |
//! | `fig7`   | Fig. 7(a–c)    | insertion time vs filter size |
//! | `fig8`   | Fig. 8         | average evictions E0 vs r |
//! | `fig9`   | Fig. 9         | false positive rate vs r |
//! | `table4` | Table IV       | insertion time under FNV / Murmur / DJB |
//! | `table5` | Table V        | k-VCF load factor and time vs k |
//! | `model`  | Section V      | analytic model vs measurement |
//! | `churn`  | Section I      | sustained online churn (motivating scenario) |
//! | `ablation` | DESIGN.md §6 | mask placement, rollback cost, dynamic chain |

pub mod ablation;
pub mod churn;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod model;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod table5;

use crate::factory::FilterSpec;
use crate::runner::{fill, FillOutcome};
use crate::timing::Summary;
use crate::ExpOptions;
use vcf_core::CuckooConfig;
use vcf_workloads::KeyStream;

/// All experiment names accepted by the CLI, in paper order.
pub const ALL: [&str; 13] = [
    "table1", "fig4", "table3", "fig5", "fig6", "fig7", "fig8", "fig9", "table4", "table5",
    "model", "churn", "ablation",
];

/// Runs the experiment called `name`.
///
/// # Errors
///
/// Returns an error string for unknown names.
pub fn run_by_name(name: &str, opts: &ExpOptions) -> Result<crate::Report, String> {
    match name {
        "table1" => Ok(table1::run(opts)),
        "fig4" => Ok(fig4::run(opts)),
        "table3" => Ok(table3::run(opts)),
        "fig5" => Ok(fig5::run(opts)),
        "fig6" => Ok(fig6::run(opts)),
        "fig7" => Ok(fig7::run(opts)),
        "fig8" => Ok(fig8::run(opts)),
        "fig9" => Ok(fig9::run(opts)),
        "table4" => Ok(table4::run(opts)),
        "table5" => Ok(table5::run(opts)),
        "model" => Ok(model::run(opts)),
        "churn" => Ok(churn::run(opts)),
        "ablation" => Ok(ablation::run(opts)),
        other => Err(format!(
            "unknown experiment '{other}'; known: {}",
            ALL.join(", ")
        )),
    }
}

/// Aggregated fill measurements for one `(spec, size)` point across
/// repetitions.
#[derive(Debug, Clone)]
pub(crate) struct FillPoint {
    pub slots_log2: u32,
    pub load_factor: Summary,
    pub micros_per_insert: Summary,
    pub kicks_per_insert: Summary,
    pub total_seconds: Summary,
}

/// Fills one filter built from `spec` with `slots` fresh keys, repeated
/// `reps` times with distinct seeds; used by every load/insertion-time
/// experiment. The paper's methodology: "select n items … feed them to an
/// empty filter with n slots", repeated and averaged.
pub(crate) fn fill_point(
    spec: &FilterSpec,
    slots_log2: u32,
    opts: &ExpOptions,
    config_tweak: impl Fn(CuckooConfig) -> CuckooConfig,
) -> FillPoint {
    let slots = 1usize << slots_log2;
    let reps = opts.repetitions().max(1);
    let mut lf = Vec::with_capacity(reps);
    let mut it = Vec::with_capacity(reps);
    let mut kicks = Vec::with_capacity(reps);
    let mut secs = Vec::with_capacity(reps);
    for rep in 0..reps {
        let seed = opts.seed.wrapping_add(rep as u64);
        let config = config_tweak(CuckooConfig::with_total_slots(slots).with_seed(seed ^ 0xf11));
        let mut filter = spec
            .build(config)
            .unwrap_or_else(|e| panic!("cannot build {} at 2^{slots_log2} slots: {e}", spec.label));
        let keys = KeyStream::new(seed).take_vec(slots);
        let outcome: FillOutcome = fill(filter.as_mut(), &keys);
        lf.push(outcome.load_factor);
        it.push(outcome.micros_per_insert);
        kicks.push(outcome.kicks_per_insert);
        secs.push(outcome.seconds);
    }
    FillPoint {
        slots_log2,
        load_factor: Summary::of(&lf),
        micros_per_insert: Summary::of(&it),
        kicks_per_insert: Summary::of(&kicks),
        total_seconds: Summary::of(&secs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOptions {
        ExpOptions {
            slots_log2: 10,
            reps: 1,
            csv_dir: None,
            ..Default::default()
        }
    }

    #[test]
    fn run_by_name_rejects_unknown() {
        assert!(run_by_name("nope", &tiny_opts()).is_err());
    }

    #[test]
    fn fill_point_aggregates() {
        let p = fill_point(&FilterSpec::vcf(14), 10, &tiny_opts(), |c| c);
        assert_eq!(p.slots_log2, 10);
        assert!(p.load_factor.mean > 0.9);
        assert_eq!(p.load_factor.count, 1);
    }

    #[test]
    fn every_experiment_runs_at_tiny_scale() {
        // Smoke: all 11 experiments must complete and yield tables.
        let opts = tiny_opts();
        for name in ALL {
            let report = run_by_name(name, &opts).unwrap();
            assert!(!report.tables().is_empty(), "{name} produced no tables");
            for t in report.tables() {
                assert!(!t.is_empty(), "{name}: table '{}' has no rows", t.title());
            }
        }
    }
}
