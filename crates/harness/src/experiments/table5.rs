//! Table V — k-VCF with `k` from 2 to 10: load factor and total insertion
//! time, with the relocation threshold set to **zero** and `f = 16`.
//!
//! Expected shape: load factor grows with `k` (≈97 % by `k = 9` without a
//! single relocation), at the cost of increasing insertion time (more
//! candidate buckets probed per insert).

use crate::factory::FilterSpec;
use crate::report::{Cell, Report, Table};
use crate::runner::fill;
use crate::timing::Summary;
use crate::ExpOptions;
use vcf_core::CuckooConfig;
use vcf_workloads::KeyStream;

/// The `k` values of the paper's Table V.
pub const KS: [usize; 8] = [2, 4, 5, 6, 7, 8, 9, 10];

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Report {
    let theta = opts.theta();
    let slots = 1usize << theta;
    let reps = opts.repetitions().max(1);

    let mut table = Table::new(
        &format!("Table V: k-VCF comparison (2^{theta} slots, f=16, MAX=0)"),
        &["k", "LF(%)", "total time (s)", "mark bits/slot"],
    );

    for k in KS {
        let spec = FilterSpec::kvcf(k);
        let mut lf = Vec::new();
        let mut secs = Vec::new();
        for rep in 0..reps {
            let seed = opts.seed.wrapping_add(rep as u64);
            let keys = KeyStream::new(seed).take_vec(slots);
            let config = CuckooConfig::with_total_slots(slots)
                .with_seed(seed)
                .with_fingerprint_bits(16)
                .with_max_kicks(0);
            let mut filter = spec.build(config).expect("k-VCF spec");
            let outcome = fill(filter.as_mut(), &keys);
            assert_eq!(
                filter.stats().kicks,
                0,
                "MAX=0 regime must never relocate (k={k})"
            );
            lf.push(outcome.load_factor);
            secs.push(outcome.seconds);
        }
        let mark_bits = (usize::BITS - (k - 1).leading_zeros()).max(1);
        table.row(vec![
            Cell::Int(k as i64),
            Cell::Float(Summary::of(&lf).mean * 100.0, 2),
            Cell::Float(Summary::of(&secs).mean, 4),
            Cell::Int(i64::from(mark_bits)),
        ]);
    }

    let mut report = Report::new();
    report.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_factor_monotone_in_k() {
        let opts = ExpOptions {
            slots_log2: 12,
            reps: 1,
            csv_dir: None,
            ..Default::default()
        };
        let report = run(&opts);
        let csv = report.tables()[0].to_csv();
        let lfs: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(lfs.len(), KS.len());
        // Allow small noise but require the overall trend.
        assert!(
            lfs[0] < lfs[3],
            "k=2 ({}) must trail k=6 ({})",
            lfs[0],
            lfs[3]
        );
        assert!(
            lfs[3] < lfs[7] + 1.0,
            "k=6 vs k=10: {} vs {}",
            lfs[3],
            lfs[7]
        );
        assert!(
            *lfs.last().unwrap() > 90.0,
            "k=10 must approach full: {}",
            lfs[7]
        );
    }
}
