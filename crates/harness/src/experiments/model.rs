//! Section V — analytic model vs measurement.
//!
//! Three checks:
//! 1. Equ. 8: predicted probability of four distinct candidate buckets vs
//!    the empirical frequency over random fingerprint hashes.
//! 2. Equ. 13/14: predicted eviction cost vs the measured kicks-per-insert
//!    at a range of fill targets, for CF (`r = 0`) and VCF (`r ≈ 0.98`).
//! 3. Equ. 10: FPR upper bound vs the measured false positive rate.

use crate::factory::FilterSpec;
use crate::report::{Cell, Report, Table};
use crate::runner::{fill, measure_fpr};
use crate::ExpOptions;
use vcf_core::{CuckooConfig, MaskPair, VerticalParams};
use vcf_hash::mix64;
use vcf_workloads::KeyStream;

fn equ8_table() -> Table {
    let mut table = Table::new(
        "Model check: Equ. 8 four-candidate probability (f=14)",
        &["ones in bm1", "predicted P", "empirical P"],
    );
    let buckets = 1usize << 16;
    let trials = 100_000u64;
    for ones in 1..=7u32 {
        let masks = MaskPair::with_ones(ones, 14).expect("valid mask");
        let params = VerticalParams::new(masks, buckets);
        let four = (0..trials)
            .filter(|&i| params.candidates(0, mix64(i)).distinct() == 4)
            .count();
        table.row(vec![
            Cell::Int(i64::from(ones)),
            Cell::Float(masks.expected_r(), 4),
            Cell::Float(four as f64 / trials as f64, 4),
        ]);
    }
    table
}

fn equ14_table(opts: &ExpOptions) -> Table {
    let theta = opts.theta().min(16);
    let slots = 1usize << theta;
    let mut table = Table::new(
        &format!("Model check: Equ. 13/14 eviction cost (2^{theta} slots)"),
        &[
            "target alpha",
            "CF measured",
            "CF model",
            "VCF measured",
            "VCF model",
        ],
    );
    for target in [0.5, 0.8, 0.9, 0.95] {
        let n = (slots as f64 * target) as usize;
        let mut row = vec![Cell::Float(target, 2)];
        for spec in [FilterSpec::cf(), FilterSpec::vcf(14)] {
            let keys = KeyStream::new(opts.seed).take_vec(n);
            let config = CuckooConfig::with_total_slots(slots).with_seed(opts.seed);
            let mut filter = spec.build(config).expect("model spec");
            let outcome = fill(filter.as_mut(), &keys);
            let model = vcf_analysis::avg_insert_cost(outcome.load_factor, spec.r, 4) - 1.0;
            row.push(Cell::Float(outcome.kicks_per_insert, 3));
            row.push(Cell::Float(model.max(0.0), 3));
        }
        table.row(row);
    }
    table
}

fn equ10_table(opts: &ExpOptions) -> Table {
    let theta = opts.theta().min(16);
    let slots = 1usize << theta;
    let mut table = Table::new(
        &format!("Model check: Equ. 10 FPR bound (2^{theta} slots, f=14)"),
        &["filter", "alpha", "measured FPR(x1e-3)", "bound(x1e-3)"],
    );
    for spec in [
        FilterSpec::cf(),
        FilterSpec::ivcf(3, 14),
        FilterSpec::vcf(14),
    ] {
        let keys = KeyStream::new(opts.seed).take_vec(slots * 95 / 100);
        let aliens = KeyStream::new(opts.seed ^ 0xdead).take_vec(200_000);
        let config = CuckooConfig::with_total_slots(slots).with_seed(opts.seed);
        let mut filter = spec.build(config).expect("model spec");
        let outcome = fill(filter.as_mut(), &keys);
        let measured = measure_fpr(filter.as_ref(), &aliens).rate;
        let bound = vcf_analysis::fpr_upper_bound(spec.r, 4, outcome.load_factor, 14);
        table.row(vec![
            Cell::from(spec.label.clone()),
            Cell::Float(outcome.load_factor, 3),
            Cell::Float(measured * 1e3, 3),
            Cell::Float(bound * 1e3, 3),
        ]);
    }
    table
}

/// Runs all three model checks.
pub fn run(opts: &ExpOptions) -> Report {
    let mut report = Report::new();
    report.push(equ8_table());
    report.push(equ14_table(opts));
    report.push(equ10_table(opts));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equ8_prediction_matches_measurement() {
        let table = equ8_table();
        for line in table.to_csv().lines().skip(1) {
            let cols: Vec<f64> = line
                .split(',')
                .skip(1)
                .map(|v| v.parse().unwrap())
                .collect();
            assert!(
                (cols[0] - cols[1]).abs() < 0.01,
                "Equ.8 check failed: predicted {} vs empirical {}",
                cols[0],
                cols[1]
            );
        }
    }

    #[test]
    fn equ10_bound_holds() {
        let opts = ExpOptions {
            slots_log2: 13,
            reps: 1,
            csv_dir: None,
            ..Default::default()
        };
        let table = equ10_table(&opts);
        for line in table.to_csv().lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            let measured: f64 = cols[2].parse().unwrap();
            let bound: f64 = cols[3].parse().unwrap();
            assert!(
                measured <= bound * 1.6 + 0.05,
                "{}: measured {measured} far above bound {bound}",
                cols[0]
            );
        }
    }
}
