//! The paper's motivating scenario as a first-class experiment: sustained
//! online churn (delete-one/insert-one with interleaved lookups) at high
//! occupancy, across the whole filter line-up.
//!
//! Not a numbered figure in the paper — Section I argues it qualitatively
//! — but it is *the* workload VCF exists for, so the harness measures it:
//! operations per second and relocations per churn round, at 90 % steady
//! occupancy.

use crate::factory::FilterSpec;
use crate::report::{Cell, Report, Table};
use crate::timing::{time, Summary};
use crate::ExpOptions;
use vcf_core::CuckooConfig;
use vcf_workloads::{ChurnConfig, ChurnTrace, Op};

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Report {
    let theta = opts.theta().min(16);
    let slots = 1usize << theta;
    let reps = opts.repetitions().max(1);
    let rounds = if opts.paper_scale { 200_000 } else { 50_000 };

    let mut table = Table::new(
        &format!("Churn: sustained online ops at 90% occupancy (2^{theta} slots, {rounds} rounds)"),
        &["filter", "Mops/s", "kicks/round", "false negatives"],
    );

    let specs = [
        FilterSpec::cf(),
        FilterSpec::dcf(),
        FilterSpec::ivcf(3, 14),
        FilterSpec::vcf(14),
        FilterSpec::dvcf_j(4),
        FilterSpec::dvcf_j(8),
    ];

    for spec in specs {
        let mut throughput = Vec::new();
        let mut kicks = Vec::new();
        let mut lost = 0u64;
        for rep in 0..reps {
            let seed = opts.seed.wrapping_add(rep as u64);
            let trace = ChurnTrace::generate(ChurnConfig {
                working_set: slots * 90 / 100,
                rounds,
                lookups_per_round: 2,
                positive_fraction: 0.5,
                seed,
            });
            let config = CuckooConfig::with_total_slots(slots).with_seed(seed);
            let mut filter = spec.build(config).expect("lineup spec builds");

            // Warm-up fill (untimed).
            let warmup = trace.config().working_set;
            for op in trace.ops().iter().take(warmup) {
                if let Op::Insert(key) = op {
                    let _ = filter.insert(key);
                }
            }
            filter.reset_stats();

            let churn_ops = &trace.ops()[warmup..];
            let (misses, seconds) = time(|| {
                let mut misses = 0u64;
                for op in churn_ops {
                    match op {
                        Op::Insert(key) => {
                            let _ = filter.insert(key);
                        }
                        Op::Delete(key) => {
                            filter.delete(key);
                        }
                        Op::Lookup {
                            key,
                            expected_present,
                        } => {
                            if *expected_present && !filter.contains(key) {
                                misses += 1;
                            }
                        }
                    }
                }
                misses
            });
            lost += misses;
            throughput.push(churn_ops.len() as f64 / seconds / 1e6);
            kicks.push(filter.stats().kicks as f64 / rounds as f64);
        }
        table.row(vec![
            Cell::from(spec.label.clone()),
            Cell::Float(Summary::of(&throughput).mean, 2),
            Cell::Float(Summary::of(&kicks).mean, 3),
            Cell::Int(lost as i64),
        ]);
    }

    let mut report = Report::new();
    report.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_experiment_reports_zero_false_negatives() {
        let opts = ExpOptions {
            slots_log2: 11,
            reps: 1,
            csv_dir: None,
            ..Default::default()
        };
        let report = run(&opts);
        for line in report.tables()[0].to_csv().lines().skip(1) {
            let lost: i64 = line.split(',').next_back().unwrap().parse().unwrap();
            assert_eq!(lost, 0, "false negatives in churn: {line}");
        }
    }
}
