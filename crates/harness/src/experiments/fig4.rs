//! Fig. 4 — load factor achieved with different fingerprint lengths, in
//! tables with `2^θ` slots (paper: `2^20`).
//!
//! Expected shape: load factor rises with `f` for both filters; VCF stays
//! above CF everywhere; VCF reaches ≈98 % already at `f = 7` and ≈100 %
//! by `f = 18`.

use crate::experiments::fill_point;
use crate::factory::FilterSpec;
use crate::report::{Cell, Report, Table};
use crate::ExpOptions;

/// Fingerprint lengths swept (the paper's x-axis runs to 18).
pub const FINGERPRINT_BITS: [u32; 7] = [6, 8, 10, 12, 14, 16, 18];

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Report {
    let theta = opts.theta();
    let mut table = Table::new(
        &format!("Fig 4: load factor vs fingerprint length (2^{theta} slots)"),
        &["f (bits)", "CF LF(%)", "VCF LF(%)"],
    );

    for f in FINGERPRINT_BITS {
        let cf = fill_point(&FilterSpec::cf(), theta, opts, |c| {
            c.with_fingerprint_bits(f)
        });
        let vcf = fill_point(&FilterSpec::vcf(f), theta, opts, |c| {
            c.with_fingerprint_bits(f)
        });
        table.row(vec![
            Cell::Int(i64::from(f)),
            Cell::Float(cf.load_factor.mean * 100.0, 2),
            Cell::Float(vcf.load_factor.mean * 100.0, 2),
        ]);
    }

    let mut report = Report::new();
    report.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcf_dominates_cf_at_every_f() {
        let opts = ExpOptions {
            slots_log2: 12,
            reps: 1,
            csv_dir: None,
            ..Default::default()
        };
        let theta = opts.theta();
        for f in [8u32, 14] {
            let cf = fill_point(&FilterSpec::cf(), theta, &opts, |c| {
                c.with_fingerprint_bits(f)
            });
            let vcf = fill_point(&FilterSpec::vcf(f), theta, &opts, |c| {
                c.with_fingerprint_bits(f)
            });
            assert!(
                vcf.load_factor.mean >= cf.load_factor.mean - 0.005,
                "f={f}: VCF {} must not trail CF {}",
                vcf.load_factor.mean,
                cf.load_factor.mean
            );
        }
    }

    #[test]
    fn report_has_one_row_per_f() {
        let opts = ExpOptions {
            slots_log2: 10,
            reps: 1,
            csv_dir: None,
            ..Default::default()
        };
        let report = run(&opts);
        assert_eq!(report.tables()[0].len(), FINGERPRINT_BITS.len());
    }
}
