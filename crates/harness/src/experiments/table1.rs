//! Table I — the cross-family comparison: space, insertion throughput
//! (relative to a plain Bloom filter) and deletion support for BF, CBF,
//! dlCBF, CF, 4-ary CF (DCF) and VCF.
//!
//! Expected shape: CF/VCF below 1× BF space at equal false-positive
//! target with high load; CBF ≈ 4× BF; cuckoo-family insertion throughput
//! well above BF's k-probe inserts; VCF the fastest inserter; BF the only
//! structure without deletion.

use crate::factory::FilterSpec;
use crate::report::{Cell, Report, Table};
use crate::runner::fill;
use crate::timing::Summary;
use crate::ExpOptions;
use vcf_baselines::{
    BloomConfig, BloomFilter, CountingBloomFilter, DlCbfConfig, DlCountingBloomFilter,
    QuotientFilter, VacuumFilter,
};
use vcf_core::CuckooConfig;
use vcf_traits::Filter;
use vcf_workloads::KeyStream;

struct RowOutcome {
    bits_per_item: f64,
    inserts_per_sec: f64,
    deletion: bool,
}

fn measure(filter: &mut dyn Filter, keys: &[Vec<u8>], total_bits: usize) -> RowOutcome {
    let outcome = fill(filter, keys);
    RowOutcome {
        bits_per_item: total_bits as f64 / outcome.stored.max(1) as f64,
        inserts_per_sec: outcome.attempted as f64 / outcome.seconds.max(1e-12),
        deletion: filter.supports_deletion(),
    }
}

/// Runs the experiment.
pub fn run(opts: &ExpOptions) -> Report {
    let theta = opts.theta();
    let slots = 1usize << theta;
    // Insert to 95% of slot capacity so every cuckoo variant succeeds.
    let n = slots * 95 / 100;
    let reps = opts.repetitions().max(1);
    // Common false-positive target: standard CF at f=14, b=4
    // (ξ ≈ 2b/2^f ≈ 4.9e-4); BF/CBF geometry is derived from it.
    let target_fpr = vcf_analysis::cf_fpr(4, 14);

    let mut rows: Vec<(String, Vec<RowOutcome>)> = Vec::new();
    for rep in 0..reps {
        let seed = opts.seed.wrapping_add(rep as u64);
        let keys = KeyStream::new(seed).take_vec(n);
        let cuckoo_config = CuckooConfig::with_total_slots(slots).with_seed(seed);

        let mut outcomes: Vec<(String, RowOutcome)> = Vec::new();

        let bloom_config = BloomConfig::for_items(n, target_fpr);
        let mut bf = BloomFilter::new(bloom_config).expect("bloom geometry");
        outcomes.push(("BF".into(), measure(&mut bf, &keys, bloom_config.bits)));

        let mut cbf = CountingBloomFilter::new(bloom_config).expect("cbf geometry");
        outcomes.push((
            "CBF".into(),
            measure(&mut cbf, &keys, bloom_config.bits * 4),
        ));

        let dl_config = DlCbfConfig::for_items(n);
        let mut dlcbf = DlCountingBloomFilter::new(dl_config).expect("dlcbf geometry");
        let dl_bits = dlcbf.cells() * (dl_config.fingerprint_bits as usize + 8);
        outcomes.push(("dlCBF".into(), measure(&mut dlcbf, &keys, dl_bits)));

        let cuckoo_bits = cuckoo_config.capacity() * cuckoo_config.fingerprint_bits as usize;
        for spec in [FilterSpec::cf(), FilterSpec::dcf(), FilterSpec::vcf(14)] {
            let mut filter = spec.build(cuckoo_config).expect("cuckoo spec");
            outcomes.push((
                spec.label.clone(),
                measure(filter.as_mut(), &keys, cuckoo_bits),
            ));
        }

        // Extension rows: the related-work structures the paper cites.
        let mut qf = QuotientFilter::for_items(n, target_fpr).expect("qf geometry");
        let qf_bits = qf.slots() * (qf.remainder_bits() as usize + 3);
        outcomes.push(("QF".into(), measure(&mut qf, &keys, qf_bits)));

        let mut vf = VacuumFilter::for_items(n, 14, seed).expect("vf geometry");
        let vf_bits = vf.capacity() * 14;
        outcomes.push(("VF".into(), measure(&mut vf, &keys, vf_bits)));

        if rows.is_empty() {
            rows = outcomes.into_iter().map(|(l, o)| (l, vec![o])).collect();
        } else {
            for (slot, (_, o)) in rows.iter_mut().zip(outcomes) {
                slot.1.push(o);
            }
        }
    }

    let bf_bits = Summary::of(
        &rows[0]
            .1
            .iter()
            .map(|o| o.bits_per_item)
            .collect::<Vec<_>>(),
    )
    .mean;
    let bf_tput = Summary::of(
        &rows[0]
            .1
            .iter()
            .map(|o| o.inserts_per_sec)
            .collect::<Vec<_>>(),
    )
    .mean;

    let mut table = Table::new(
        &format!("Table I: data-structure comparison (n={n}, target FPR {target_fpr:.2e})"),
        &[
            "structure",
            "bits/item",
            "space (xBF)",
            "insert Mops",
            "throughput (xBF)",
            "deletion",
        ],
    );
    for (label, outcomes) in &rows {
        let bits = Summary::of(&outcomes.iter().map(|o| o.bits_per_item).collect::<Vec<_>>()).mean;
        let tput = Summary::of(
            &outcomes
                .iter()
                .map(|o| o.inserts_per_sec)
                .collect::<Vec<_>>(),
        )
        .mean;
        table.row(vec![
            Cell::from(label.clone()),
            Cell::Float(bits, 2),
            Cell::Float(bits / bf_bits, 2),
            Cell::Float(tput / 1e6, 2),
            Cell::Float(tput / bf_tput, 2),
            Cell::from(if outcomes[0].deletion { "yes" } else { "no" }),
        ]);
    }

    let mut report = Report::new();
    report.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_and_deletion_column() {
        let opts = ExpOptions {
            slots_log2: 12,
            reps: 1,
            csv_dir: None,
            ..Default::default()
        };
        let report = run(&opts);
        let table = &report.tables()[0];
        assert_eq!(table.len(), 8, "BF, CBF, dlCBF, CF, DCF, VCF, QF, VF");
        let csv = table.to_csv();
        // Exactly one structure (BF) lacks deletion.
        assert_eq!(
            csv.matches(",no").count(),
            1,
            "only BF lacks deletion:\n{csv}"
        );
    }
}
