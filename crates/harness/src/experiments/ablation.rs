//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Mask placement** — Equ. 8 says the four-candidate probability
//!    depends only on the *popcount* of `bm1`, not where its bits sit.
//!    Compare low-packed vs evenly interleaved masks at equal popcount.
//! 2. **Rollback cost** — our insertion is atomic (failed kick walks are
//!    undone). Quantify what the undo log costs by comparing fills that
//!    never fail (95 %) against fills driven past capacity (110 %).
//! 3. **Chain growth** — the DynamicVcf extension: load factor and
//!    per-lookup bucket accesses as the chain grows.

use crate::factory::FilterSpec;
use crate::report::{Cell, Report, Table};
use crate::runner::{fill, measure_fpr};
use crate::ExpOptions;
use vcf_core::{CuckooConfig, DynamicVcf, MaskPair, VerticalCuckooFilter};
use vcf_traits::Filter;
use vcf_workloads::KeyStream;

fn mask_placement_table(opts: &ExpOptions) -> Table {
    let theta = opts.theta().min(16);
    let slots = 1usize << theta;
    let mut table = Table::new(
        &format!("Ablation: mask placement at equal popcount (2^{theta} slots, f=14)"),
        &[
            "ones",
            "low LF(%)",
            "spread LF(%)",
            "low FPR(x1e-3)",
            "spread FPR(x1e-3)",
        ],
    );
    for ones in [2u32, 4, 7] {
        let mut row = vec![Cell::Int(i64::from(ones))];
        let mut lfs = Vec::new();
        let mut fprs = Vec::new();
        for masks in [
            MaskPair::with_ones(ones, 14).expect("valid"),
            MaskPair::interleaved(ones, 14).expect("valid"),
        ] {
            let config = CuckooConfig::with_total_slots(slots).with_seed(opts.seed);
            let mut filter =
                VerticalCuckooFilter::with_masks(config, masks, format!("ablate{ones}"))
                    .expect("valid geometry");
            let keys = KeyStream::new(opts.seed).take_vec(slots);
            let outcome = fill(&mut filter, &keys);
            let aliens = KeyStream::new(opts.seed ^ 0xab1a7e).take_vec(200_000);
            lfs.push(outcome.load_factor);
            fprs.push(measure_fpr(&filter, &aliens).rate);
        }
        row.push(Cell::Float(lfs[0] * 100.0, 2));
        row.push(Cell::Float(lfs[1] * 100.0, 2));
        row.push(Cell::Float(fprs[0] * 1e3, 3));
        row.push(Cell::Float(fprs[1] * 1e3, 3));
        table.row(row);
    }
    table
}

fn rollback_cost_table(opts: &ExpOptions) -> Table {
    let theta = opts.theta().min(16);
    let slots = 1usize << theta;
    let mut table = Table::new(
        &format!("Ablation: rollback (atomic-insert) cost (2^{theta} slots)"),
        &["filter", "fill", "IT(us)", "failures", "kicks/insert"],
    );
    for spec in [FilterSpec::cf(), FilterSpec::vcf(14)] {
        for (label, fraction) in [("95% (no failures)", 0.95), ("110% (failure-heavy)", 1.10)] {
            let n = (slots as f64 * fraction) as usize;
            let config = CuckooConfig::with_total_slots(slots).with_seed(opts.seed);
            let mut filter = spec.build(config).expect("spec builds");
            let keys = KeyStream::new(opts.seed).take_vec(n);
            let outcome = fill(filter.as_mut(), &keys);
            table.row(vec![
                Cell::from(spec.label.clone()),
                Cell::from(label),
                Cell::Float(outcome.micros_per_insert, 3),
                Cell::Int(outcome.failures as i64),
                Cell::Float(outcome.kicks_per_insert, 2),
            ]);
        }
    }
    table
}

fn dynamic_chain_table(opts: &ExpOptions) -> Table {
    let mut table = Table::new(
        "Ablation: DynamicVcf chain growth",
        &[
            "items (x link cap)",
            "links",
            "total LF(%)",
            "buckets/lookup",
        ],
    );
    let link_slots = 1usize << 10;
    for factor in [1usize, 2, 4, 8] {
        let template = CuckooConfig::with_total_slots(link_slots).with_seed(opts.seed);
        let mut filter = DynamicVcf::new(template).expect("template valid");
        let keys = KeyStream::new(opts.seed).take_vec(link_slots * factor);
        for key in &keys {
            filter.insert(key).expect("dynamic filter grows");
        }
        filter.reset_stats();
        let probe_keys = KeyStream::new(opts.seed ^ 0x10).take_vec(10_000);
        for key in &probe_keys {
            filter.contains(key);
        }
        let stats = filter.stats();
        table.row(vec![
            Cell::Int(factor as i64),
            Cell::Int(filter.links() as i64),
            Cell::Float(filter.load_factor() * 100.0, 2),
            Cell::Float(
                stats.lookups.bucket_accesses as f64 / stats.lookups.calls as f64,
                2,
            ),
        ]);
    }
    table
}

/// Runs all three ablations.
pub fn run(opts: &ExpOptions) -> Report {
    let mut report = Report::new();
    report.push(mask_placement_table(opts));
    report.push(rollback_cost_table(opts));
    report.push(dynamic_chain_table(opts));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_placement_is_irrelevant() {
        let opts = ExpOptions {
            slots_log2: 13,
            reps: 1,
            csv_dir: None,
            ..Default::default()
        };
        let table = mask_placement_table(&opts);
        for line in table.to_csv().lines().skip(1) {
            let cols: Vec<f64> = line.split(',').map(|v| v.parse().unwrap()).collect();
            assert!(
                (cols[1] - cols[2]).abs() < 0.5,
                "LF diverged between placements: {line}"
            );
        }
    }

    #[test]
    fn dynamic_chain_grows_linearly() {
        let opts = ExpOptions {
            slots_log2: 10,
            reps: 1,
            csv_dir: None,
            ..Default::default()
        };
        let table = dynamic_chain_table(&opts);
        let links: Vec<i64> = table
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(links[0] <= 2);
        assert!(
            links[3] >= 8,
            "8x link capacity needs >= 8 links: {links:?}"
        );
    }
}
