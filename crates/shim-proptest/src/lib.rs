//! Offline drop-in shim for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this crate implements
//! the slice of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! * range strategies (`0usize..200`, `1u32..=63`, `0.0f64..1.0`),
//!   [`any`], tuple strategies, [`collection::vec`],
//!   [`sample::Index`], [`prop_oneof!`] and [`Strategy::prop_map`].
//!
//! Semantics match proptest's for generation and assertion; the one
//! deliberate omission is *shrinking* — a failing case reports the
//! generated inputs verbatim instead of a minimized counterexample.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a stream for `(test name, case index)` so every test and
    /// case gets an independent, reproducible sequence.
    pub fn from_case(test_name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in test_name.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Error signalled out of a generated test case body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard the case and draw another.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternative strategies; built by
/// [`prop_oneof!`].
#[derive(Debug, Clone)]
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds from a non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Values constructible "from anywhere": the [`any`] strategy source.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy for any [`Arbitrary`] type; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Length bounds for [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of `element` with length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a not-yet-known-length collection; resolves via
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Resolves against a collection of `len` elements (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts inside a proptest case; failures report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (both were {:?})",
                format!($($fmt)+),
                l
            )));
        }
    }};
}

/// Discards the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config = $cfg;
            let mut passed = 0u32;
            let mut rejected = 0u64;
            let mut draw = 0u64;
            while passed < config.cases {
                let mut __rng = $crate::TestRng::from_case(stringify!($name), draw);
                draw += 1;
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut __rng);)+
                let __inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}"),+),
                    $(&$arg),+
                );
                let mut __case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                match __case() {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 64 * u64::from(config.cases).max(256),
                            "proptest '{}': too many prop_assume! rejections",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed after {} passing case(s): {}\ninputs:{}",
                            stringify!($name),
                            passed,
                            msg,
                            __inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 5usize..=9, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn tuples_compose(pair in (0u8..4, any::<bool>())) {
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn index_resolves_in_range(i in any::<prop::sample::Index>()) {
            prop_assert!(i.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_override_applies(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        #[derive(Debug, Clone, Copy, PartialEq)]
        enum Kind {
            A,
            B,
            C,
        }
        let strategy = prop_oneof![
            (0u8..1).prop_map(|_| Kind::A),
            (0u8..1).prop_map(|_| Kind::B),
            (0u8..1).prop_map(|_| Kind::C),
        ];
        let mut rng = crate::TestRng::from_case("oneof", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            match crate::Strategy::generate(&strategy, &mut rng) {
                Kind::A => seen[0] = true,
                Kind::B => seen[1] = true,
                Kind::C => seen[2] = true,
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
