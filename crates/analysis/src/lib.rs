//! Analytic model of the paper's Section V: closed-form predictions for
//! load factor behaviour, false positive rate, space cost and insertion
//! cost, used by the harness to print model-vs-measured comparisons.
//!
//! All functions are direct transcriptions of the paper's equations, with
//! the equation number in each doc comment. `r` is the probability that an
//! item receives four candidate buckets (the paper's unified trade-off
//! knob: `r = P` of Equ. 8 for IVCF, `r = p` of Equ. 9 for DVCF, `r = 0`
//! for CF).
//!
//! # Examples
//!
//! ```
//! use vcf_analysis as model;
//!
//! // CF at b=4, α=0.95 evicts ~11 fingerprints per insert near full
//! // (the paper's Section V-C worked example: E0 ≈ 11.3).
//! let e = model::avg_insert_cost(0.95, 0.0, 4);
//! let e0 = model::e0(0.98, e);
//! assert!((e0 - 11.3).abs() < 1.0, "E0 = {e0}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Equ. 5 — probability that standard vertical hashing (balanced masks
/// over an `f`-bit domain) yields four distinct candidate buckets:
/// `P = 1 + 2^−f − 2^(1 − f/2)`.
pub fn p_four_standard(fingerprint_bits: u32) -> f64 {
    let f = f64::from(fingerprint_bits);
    1.0 + 2f64.powf(-f) - 2f64.powf(1.0 - f / 2.0)
}

/// Equ. 8 — probability of four distinct candidates when `bm1` has
/// `zeros` zero-bits over an `f`-bit domain:
/// `P = 1 − (2^l + 2^(f−l) − 1) / 2^f`.
pub fn p_four(fingerprint_bits: u32, zeros: u32) -> f64 {
    let f = f64::from(fingerprint_bits);
    let l = f64::from(zeros);
    1.0 - (2f64.powf(l) + 2f64.powf(f - l) - 1.0) / 2f64.powf(f)
}

/// Equ. 9 — DVCF's four-candidate fraction for threshold `Δt`:
/// `p = 2Δt / 2^f`.
pub fn dvcf_p(delta_t: u32, fingerprint_bits: u32) -> f64 {
    2.0 * f64::from(delta_t) / 2f64.powi(fingerprint_bits as i32)
}

/// Equ. 10 (exact form) — upper bound on the false positive rate:
/// `ξ = 1 − (1 − 2^−f)^((2r+2)·b·α)`.
pub fn fpr_upper_bound(r: f64, slots_per_bucket: usize, alpha: f64, fingerprint_bits: u32) -> f64 {
    let comparisons = (2.0 * r + 2.0) * slots_per_bucket as f64 * alpha;
    1.0 - (1.0 - 2f64.powi(-(fingerprint_bits as i32))).powf(comparisons)
}

/// Equ. 10 (approximate form) — `ξ ≈ 2(r+1)·b·α / 2^f`.
pub fn fpr_approx(r: f64, slots_per_bucket: usize, alpha: f64, fingerprint_bits: u32) -> f64 {
    2.0 * (r + 1.0) * slots_per_bucket as f64 * alpha / 2f64.powi(fingerprint_bits as i32)
}

/// Equ. 11 — minimal fingerprint width for a target false positive rate:
/// `f ≥ ⌈log2(2(r+1)·b·α / ξ)⌉`.
///
/// # Panics
///
/// Panics if `target_fpr` is not in `(0, 1)`.
pub fn min_fingerprint_bits(r: f64, slots_per_bucket: usize, alpha: f64, target_fpr: f64) -> u32 {
    assert!(
        target_fpr > 0.0 && target_fpr < 1.0,
        "target FPR must be in (0, 1)"
    );
    let value = 2.0 * (r + 1.0) * slots_per_bucket as f64 * alpha / target_fpr;
    value.log2().ceil().max(1.0) as u32
}

/// Equ. 12 — average bits per stored item:
/// `C = ⌈log2(2(r+1)·b·α / ξ)⌉ / α`.
pub fn bits_per_item(r: f64, slots_per_bucket: usize, alpha: f64, target_fpr: f64) -> f64 {
    f64::from(min_fingerprint_bits(r, slots_per_bucket, alpha, target_fpr)) / alpha
}

/// Equ. 13 — expected evictions for one insertion at instantaneous load
/// `α`: `E(π_α) = 1 / (1 − α^((2r+1)·b))`.
///
/// Diverges as `α → 1`; callers should keep `α < 1`.
pub fn expected_evictions_at(alpha: f64, r: f64, slots_per_bucket: usize) -> f64 {
    let exponent = (2.0 * r + 1.0) * slots_per_bucket as f64;
    1.0 / (1.0 - alpha.powf(exponent))
}

/// Equ. 14 — average insertion cost for serial fills from empty to `α`:
/// `E = (1/α)·∫₀^α dx / (1 − x^((2r+1)b))`, evaluated by Simpson's rule.
///
/// The paper writes the integral without the leading `1/α`; dividing by
/// `α` converts "total evictions over the fill" into "evictions per
/// inserted item", which is the quantity its worked example (`E0 ≈ 11.3`
/// at `α = 0.95`) and Fig. 8 actually report.
pub fn avg_insert_cost(alpha: f64, r: f64, slots_per_bucket: usize) -> f64 {
    if alpha <= 0.0 {
        return 1.0;
    }
    let alpha = alpha.min(0.9999);
    let exponent = (2.0 * r + 1.0) * slots_per_bucket as f64;
    let f = |x: f64| 1.0 / (1.0 - x.powf(exponent));
    // Simpson's rule with enough panels for the near-singular tail.
    let panels = 20_000usize;
    let h = alpha / panels as f64;
    let mut sum = f(0.0) + f(alpha);
    for i in 1..panels {
        let x = i as f64 * h;
        sum += if i % 2 == 1 { 4.0 * f(x) } else { 2.0 * f(x) };
    }
    let integral = sum * h / 3.0;
    integral / alpha
}

/// Equ. 15 — the experiment-facing average eviction count, charging
/// failed insertions at the `MAX = 500` kick limit:
/// `E0 = (λ0/λ)·E + 500·(1 − λ0/λ)`, where `λ0/λ` is the fraction of
/// items successfully stored.
pub fn e0(stored_fraction: f64, avg_cost: f64) -> f64 {
    stored_fraction * avg_cost + 500.0 * (1.0 - stored_fraction)
}

/// Classic Bloom filter false positive rate: `ξ = (1 − e^(−kn/m))^k`
/// (Section II-A).
pub fn bloom_fpr(hashes: u32, items: usize, bits: usize) -> f64 {
    if bits == 0 {
        return 1.0;
    }
    let k = f64::from(hashes);
    let exponent = -k * items as f64 / bits as f64;
    (1.0 - exponent.exp()).powf(k)
}

/// Standard CF false positive rate bound:
/// `ξ = 1 − (1 − 2^−f)^(2b) ≈ 2b / 2^f` (Section II-B).
pub fn cf_fpr(slots_per_bucket: usize, fingerprint_bits: u32) -> f64 {
    1.0 - (1.0 - 2f64.powi(-(fingerprint_bits as i32))).powf(2.0 * slots_per_bucket as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equ5_is_equ8_at_balanced_split() {
        for f in [8u32, 10, 14, 16] {
            assert!(
                (p_four_standard(f) - p_four(f, f / 2)).abs() < 1e-12,
                "f={f}"
            );
        }
    }

    #[test]
    fn equ8_matches_paper_f8_ladder() {
        // "P ≈ {0, 0.49, 0.73, 0.84, 0.87} when f = 8" for l = 7..4.
        assert!((p_four(8, 7) - 0.49).abs() < 0.01);
        assert!((p_four(8, 6) - 0.73).abs() < 0.02);
        assert!((p_four(8, 5) - 0.84).abs() < 0.01);
        assert!((p_four(8, 4) - 0.87).abs() < 0.01);
    }

    #[test]
    fn equ8_f16_balanced_matches_paper() {
        // "f = 16 and l = 8, then P ≈ 0.9922".
        assert!((p_four(16, 8) - 0.9922).abs() < 1e-3);
    }

    #[test]
    fn equ9_fraction() {
        // DVCF_8: 2Δt = 2^14 → p = 1.
        assert!((dvcf_p(1 << 13, 14) - 1.0).abs() < 1e-12);
        // DVCF_4: 2Δt = 0.5·2^14 → p = 0.5.
        assert!((dvcf_p(1 << 12, 14) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn equ10_approx_tracks_exact() {
        for r in [0.0, 0.5, 1.0] {
            for f in [10u32, 14, 18] {
                let exact = fpr_upper_bound(r, 4, 0.95, f);
                let approx = fpr_approx(r, 4, 0.95, f);
                assert!(
                    (exact - approx).abs() / approx < 0.01,
                    "r={r} f={f}: exact={exact} approx={approx}"
                );
            }
        }
    }

    #[test]
    fn equ10_fpr_grows_with_r() {
        let low = fpr_approx(0.0, 4, 0.95, 14);
        let high = fpr_approx(1.0, 4, 0.95, 14);
        assert!(
            (high / low - 2.0).abs() < 1e-9,
            "r=1 doubles the FPR bound vs r=0"
        );
    }

    #[test]
    fn equ11_equ12_worked_example() {
        // Section V-B: b=4, CF (r=0), α=0.95 → C = 3.08 + 1.05·log2(1/ξ)
        // at ξ = 2^-10-ish values the ceil form matches within a bit.
        let bits = min_fingerprint_bits(0.0, 4, 0.95, 0.001);
        // 2·1·4·0.95/0.001 = 7600 → log2 ≈ 12.89 → 13 bits.
        assert_eq!(bits, 13);
        let c = bits_per_item(0.0, 4, 0.95, 0.001);
        assert!((c - 13.0 / 0.95).abs() < 1e-9);
    }

    #[test]
    fn equ13_diverges_toward_full() {
        let near_empty = expected_evictions_at(0.1, 0.0, 4);
        let near_full = expected_evictions_at(0.99, 0.0, 4);
        assert!(near_empty < 1.01);
        assert!(near_full > 20.0);
    }

    #[test]
    fn equ13_more_candidates_fewer_evictions() {
        let cf = expected_evictions_at(0.95, 0.0, 4);
        let vcf = expected_evictions_at(0.95, 1.0, 4);
        assert!(
            vcf < cf,
            "r=1 must reduce expected evictions: {vcf} vs {cf}"
        );
    }

    #[test]
    fn equ14_equ15_match_paper_worked_examples() {
        // "let r=0, b=4, α=0.95 and λ0/λ=0.98, then E0 = 11.3"
        let e_cf = avg_insert_cost(0.95, 0.0, 4);
        let e0_cf = e0(0.98, e_cf);
        assert!(
            (e0_cf - 11.3).abs() < 1.2,
            "CF E0 = {e0_cf}, paper says ≈11.3"
        );
        // "with r≈1, b=4, α=0.995 and λ0/λ≈1, we have E0 = 1.22 for VCF"
        let e_vcf = avg_insert_cost(0.995, 1.0, 4);
        let e0_vcf = e0(1.0, e_vcf);
        assert!(
            (e0_vcf - 1.22).abs() < 0.25,
            "VCF E0 = {e0_vcf}, paper says ≈1.22"
        );
    }

    #[test]
    fn equ14_monotone_in_alpha() {
        let mut last = 0.0;
        for alpha in [0.1, 0.5, 0.8, 0.9, 0.95, 0.99] {
            let e = avg_insert_cost(alpha, 0.5, 4);
            assert!(e > last, "insert cost must grow with fill: α={alpha} E={e}");
            last = e;
        }
    }

    #[test]
    fn bloom_fpr_optimal_geometry() {
        // k=10, m/n=14.4 → ξ ≈ 0.1%.
        let fpr = bloom_fpr(10, 1_000_000, 14_400_000);
        assert!((fpr - 0.001).abs() < 3e-4, "fpr={fpr}");
    }

    #[test]
    fn cf_fpr_matches_approx() {
        // ξ ≈ 2b/2^f = 8/2^14.
        let fpr = cf_fpr(4, 14);
        assert!((fpr - 8.0 / 16384.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "target FPR")]
    fn min_bits_rejects_bad_fpr() {
        min_fingerprint_bits(0.0, 4, 0.95, 0.0);
    }

    #[test]
    fn avg_insert_cost_handles_edge_alphas() {
        assert_eq!(avg_insert_cost(0.0, 0.0, 4), 1.0);
        assert!(avg_insert_cost(1.0, 0.0, 4).is_finite());
    }
}
