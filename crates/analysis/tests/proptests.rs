//! Property-based checks of the Section V model's structural properties.

use proptest::prelude::*;
use vcf_analysis as model;

proptest! {
    /// Equ. 8 is a probability for every valid (f, l).
    #[test]
    fn p_four_is_probability(f in 2u32..32, zeros_frac in 0.0f64..1.0) {
        let l = ((f as f64 - 1.0) * zeros_frac) as u32 + 1;
        prop_assume!(l < f);
        let p = model::p_four(f, l);
        prop_assert!((0.0..=1.0).contains(&p), "P = {p} out of range for f={f}, l={l}");
    }

    /// Equ. 8 is symmetric in l ↔ f − l (swapping bm1 and bm2 cannot
    /// matter).
    #[test]
    fn p_four_symmetric(f in 3u32..32, l in 1u32..31) {
        prop_assume!(l < f);
        prop_assert!((model::p_four(f, l) - model::p_four(f, f - l)).abs() < 1e-12);
    }

    /// The FPR bound grows monotonically in r, b and α, and shrinks in f.
    #[test]
    fn fpr_bound_monotone(
        r in 0.0f64..1.0,
        alpha in 0.05f64..1.0,
        f in 6u32..24,
    ) {
        let base = model::fpr_upper_bound(r, 4, alpha, f);
        prop_assert!(model::fpr_upper_bound((r + 0.1).min(1.0), 4, alpha, f) >= base);
        prop_assert!(model::fpr_upper_bound(r, 5, alpha, f) >= base);
        prop_assert!(model::fpr_upper_bound(r, 4, (alpha + 0.05).min(1.0), f) >= base);
        prop_assert!(model::fpr_upper_bound(r, 4, alpha, f + 1) <= base);
    }

    /// The exact Equ. 10 form upper-bounds nothing below zero and stays a
    /// probability.
    #[test]
    fn fpr_bound_is_probability(r in 0.0f64..1.0, alpha in 0.0f64..1.0, f in 2u32..32) {
        let xi = model::fpr_upper_bound(r, 4, alpha, f);
        prop_assert!((0.0..=1.0).contains(&xi));
    }

    /// Equ. 11's minimal fingerprint really achieves the target: plugging
    /// it back into the approximate FPR lands at or below the target.
    #[test]
    fn min_bits_achieves_target(r in 0.0f64..1.0, alpha in 0.5f64..1.0, exponent in 2u32..12) {
        let target = 2f64.powi(-(exponent as i32));
        let f = model::min_fingerprint_bits(r, 4, alpha, target);
        let achieved = model::fpr_approx(r, 4, alpha, f);
        prop_assert!(
            achieved <= target * 1.0001,
            "f={f} gives {achieved}, target {target}"
        );
    }

    /// Expected evictions (Equ. 13) are ≥ 1 (the displaced item itself)
    /// and increase with load.
    #[test]
    fn evictions_monotone_in_alpha(r in 0.0f64..1.0, alpha in 0.05f64..0.94) {
        let here = model::expected_evictions_at(alpha, r, 4);
        let further = model::expected_evictions_at(alpha + 0.05, r, 4);
        prop_assert!(here >= 1.0);
        prop_assert!(further >= here);
    }

    /// More candidates (higher r) never increase the expected evictions.
    #[test]
    fn evictions_monotone_in_r(alpha in 0.1f64..0.99, r in 0.0f64..0.9) {
        let fewer = model::expected_evictions_at(alpha, r, 4);
        let more = model::expected_evictions_at(alpha, r + 0.1, 4);
        prop_assert!(more <= fewer + 1e-12);
    }

    /// The integral form (Equ. 14) is bounded by the endpoint form
    /// (Equ. 13): the running average cannot exceed the worst instant.
    #[test]
    fn avg_cost_below_endpoint_cost(alpha in 0.05f64..0.99, r in 0.0f64..1.0) {
        let avg = model::avg_insert_cost(alpha, r, 4);
        let endpoint = model::expected_evictions_at(alpha, r, 4);
        prop_assert!(avg <= endpoint + 1e-9, "avg {avg} > endpoint {endpoint}");
        prop_assert!(avg >= 1.0 - 1e-9);
    }

    /// Equ. 15 interpolates between E (all stored) and 500 (all failed).
    #[test]
    fn e0_is_interpolation(fraction in 0.0f64..1.0, cost in 1.0f64..20.0) {
        let e0 = model::e0(fraction, cost);
        prop_assert!(e0 >= cost.min(500.0) - 1e-9);
        prop_assert!(e0 <= 500.0_f64.max(cost) + 1e-9);
    }

    /// Bloom FPR is a probability and monotone in items.
    #[test]
    fn bloom_fpr_sane(hashes in 1u32..16, items in 1usize..100_000, bits in 64usize..1_000_000) {
        let xi = model::bloom_fpr(hashes, items, bits);
        prop_assert!((0.0..=1.0).contains(&xi));
        prop_assert!(model::bloom_fpr(hashes, items * 2, bits) >= xi);
    }
}
