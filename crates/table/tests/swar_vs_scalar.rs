//! Property tests pinning the SWAR bucket kernels to the scalar slot loop
//! they replaced.
//!
//! The bucket engine answers every probe with broadcast-compare word
//! tricks; a single wrong carry would surface as false negatives (lost
//! items) or phantom matches (false positives beyond the design rate) far
//! above the storage layer. Each property below drives a kernel and its
//! scalar oracle — a plain `for slot in 0..b` loop over `lane()` — with
//! random geometry and random contents including the zero sentinel and
//! duplicate lanes, and demands exact agreement.

use proptest::prelude::*;
use vcf_table::{BucketEngine, FingerprintTable};

/// Builds an engine plus one bucket's worth of words holding `lanes`
/// (truncated to the lane width, list truncated/padded to `slots`).
fn build_bucket(slots: usize, width: u32, lanes: &[u64]) -> (BucketEngine, Vec<u64>) {
    let engine = BucketEngine::new(slots, width).unwrap();
    let mut words = vec![0u64; engine.storage_words(1)];
    for slot in 0..slots {
        let value = lanes.get(slot).copied().unwrap_or(0) & engine.lane_mask();
        engine.set_slot(&mut words, 0, slot, value);
    }
    (engine, words)
}

/// The scalar oracle: first slot whose lane equals `pattern`.
fn scalar_find(engine: &BucketEngine, words: &[u64], pattern: u64) -> Option<usize> {
    let bucket = engine.read_bucket(words, 0);
    (0..engine.slots()).find(|&slot| engine.lane(&bucket, slot) == pattern)
}

proptest! {
    /// `find_in_bucket` and `contains_in_bucket` agree with the scalar
    /// loop for random widths, bucket sizes, contents and probes.
    #[test]
    fn find_and_contains_match_scalar(
        width in 1u32..=32,
        slots in 1usize..=8,
        lanes in prop::collection::vec(any::<u64>(), 8),
        probe in any::<u64>(),
    ) {
        let (engine, words) = build_bucket(slots, width, &lanes);
        let bucket = engine.read_bucket(&words, 0);
        let probe = probe & engine.lane_mask();
        let expected = scalar_find(&engine, &words, probe);
        prop_assert_eq!(engine.find_in_bucket(&bucket, probe), expected);
        prop_assert_eq!(engine.contains_in_bucket(&bucket, probe), expected.is_some());
    }

    /// Probing each resident lane (duplicates included) always finds the
    /// first copy, and a probe for a value forced absent never matches.
    #[test]
    fn every_resident_is_found(
        width in 1u32..=32,
        slots in 1usize..=8,
        lanes in prop::collection::vec(any::<u64>(), 8),
    ) {
        let (engine, words) = build_bucket(slots, width, &lanes);
        let bucket = engine.read_bucket(&words, 0);
        for slot in 0..slots {
            let resident = engine.lane(&bucket, slot);
            let first = (0..slots).find(|&s| engine.lane(&bucket, s) == resident);
            prop_assert_eq!(engine.find_in_bucket(&bucket, resident), first);
        }
    }

    /// Zero-sentinel duplicates: `first_empty_slot` and `bucket_len` agree
    /// with the scalar loop when lanes are forced to be mostly zero/dup.
    #[test]
    fn empty_and_len_match_scalar(
        width in 1u32..=32,
        slots in 1usize..=8,
        // Small value domain: lots of zeros and collisions.
        lanes in prop::collection::vec(0u64..3, 8),
    ) {
        let (engine, words) = build_bucket(slots, width, &lanes);
        let bucket = engine.read_bucket(&words, 0);
        prop_assert_eq!(engine.first_empty_slot(&bucket), scalar_find(&engine, &words, 0));
        let scalar_len = (0..slots)
            .filter(|&slot| engine.lane(&bucket, slot) != 0)
            .count();
        prop_assert_eq!(engine.bucket_len(&bucket), scalar_len);
    }

    /// The masked-field kernel (k-VCF's empty test) agrees with a scalar
    /// masked compare for arbitrary field masks.
    #[test]
    fn find_field_matches_scalar(
        width in 2u32..=32,
        slots in 1usize..=8,
        lanes in prop::collection::vec(any::<u64>(), 8),
        pattern in any::<u64>(),
        field in any::<u64>(),
    ) {
        let (engine, words) = build_bucket(slots, width, &lanes);
        let field = {
            let f = field & engine.lane_mask();
            if f == 0 { 1 } else { f }
        };
        let pattern = pattern & field;
        let bucket = engine.read_bucket(&words, 0);
        let expected = (0..slots)
            .find(|&slot| engine.lane(&bucket, slot) & field == pattern);
        prop_assert_eq!(engine.find_field(&bucket, pattern, field), expected);
    }

    /// `set_slot` + kernels behave exactly like a `Vec<u64>` model: after
    /// a random write sequence, every probe agrees lane-for-lane.
    #[test]
    fn table_state_matches_vec_model(
        width in 2u32..=32,
        slots in 1usize..=8,
        ops in prop::collection::vec((0usize..8, 0u64..16), 1..60),
    ) {
        let engine = BucketEngine::new(slots, width).unwrap();
        let mut words = vec![0u64; engine.storage_words(4)];
        let mut model = vec![0u64; 4 * slots];
        for (raw_slot, value) in ops {
            let bucket = raw_slot % 4;
            let slot = raw_slot % slots;
            let value = value & engine.lane_mask();
            engine.set_slot(&mut words, bucket, slot, value);
            model[bucket * slots + slot] = value;
        }
        for bucket in 0..4 {
            let loaded = engine.read_bucket(&words, bucket);
            for slot in 0..slots {
                prop_assert_eq!(engine.lane(&loaded, slot), model[bucket * slots + slot]);
            }
            let model_len = model[bucket * slots..(bucket + 1) * slots]
                .iter()
                .filter(|&&v| v != 0)
                .count();
            prop_assert_eq!(engine.bucket_len(&loaded), model_len);
        }
    }

    /// FingerprintTable (SWAR-probed) behaves like a Vec-of-buckets model
    /// under random insert/remove interleavings — byte-level state is
    /// checked through `get`, answers through `contains`/`find`.
    #[test]
    fn fingerprint_table_matches_model(
        fp_bits in 2u32..=32,
        ops in prop::collection::vec((0u8..2, 0usize..8, 1u64..64), 1..120),
    ) {
        let slots = 4usize;
        let mut table = FingerprintTable::new(8, slots, fp_bits).unwrap();
        let mut model: Vec<Vec<u32>> = vec![vec![0; slots]; 8];
        for (op, bucket, fp) in ops {
            let fp = ((fp & ((1u64 << fp_bits) - 1)) as u32).max(1);
            match op {
                0 => {
                    let slot = table.try_insert(bucket, fp);
                    let model_slot = model[bucket].iter().position(|&v| v == 0);
                    prop_assert_eq!(slot, model_slot, "insert diverged");
                    if let Some(s) = model_slot {
                        model[bucket][s] = fp;
                    }
                }
                _ => {
                    let removed = table.remove_one(bucket, fp);
                    let model_slot = model[bucket].iter().position(|&v| v == fp);
                    prop_assert_eq!(removed, model_slot.is_some(), "remove diverged");
                    if let Some(s) = model_slot {
                        model[bucket][s] = 0;
                    }
                }
            }
        }
        for (bucket, model_bucket) in model.iter().enumerate() {
            for (slot, &model_fp) in model_bucket.iter().enumerate() {
                prop_assert_eq!(table.get(bucket, slot), model_fp);
            }
            for fp in 1u32..64 {
                let fp = fp & (((1u64 << fp_bits) - 1) as u32);
                if fp == 0 {
                    continue;
                }
                prop_assert_eq!(
                    table.contains(bucket, fp),
                    model_bucket.contains(&fp),
                    "contains diverged for fp {} in bucket {}",
                    fp,
                    bucket
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Atomic engine differential: the lock-free table must be slot-for-slot
// identical to the sequential one under any single-threaded op sequence.
// ---------------------------------------------------------------------

proptest! {
    /// `AtomicFingerprintTable` (CAS claim / CAS replace) and
    /// `FingerprintTable` (plain read-modify-write), driven by the same
    /// single-threaded insert/remove sequence, end in bit-identical slot
    /// states with identical occupancy — both pick the first empty slot
    /// on insert and the first match on remove, so any divergence means
    /// a lane-shift or CAS-retry bug in the atomic path. Geometries whose
    /// lanes straddle a word boundary are rejected by the atomic
    /// constructor and skipped.
    #[test]
    fn atomic_table_matches_sequential_table(
        slots in 1usize..=8,
        fp_bits in 2u32..=32,
        ops in prop::collection::vec((0u8..2, 0usize..8, 1u64..0xffff_ffff), 1..150),
    ) {
        use vcf_table::AtomicFingerprintTable;

        let buckets = 8usize;
        let Ok(atomic) = AtomicFingerprintTable::new(buckets, slots, fp_bits) else {
            // Straddling lane layout: not constructible atomically.
            return Ok(());
        };
        let mut sequential = FingerprintTable::new(buckets, slots, fp_bits).unwrap();

        for &(op, bucket, fp) in &ops {
            let fp = ((fp & ((1u64 << fp_bits) - 1)) as u32).max(1);
            match op {
                0 => {
                    let claimed = atomic.try_claim(bucket, fp);
                    let inserted = sequential.try_insert(bucket, fp);
                    prop_assert_eq!(claimed, inserted, "insert slot choice diverged");
                }
                _ => {
                    let atomic_removed = atomic
                        .find(bucket, fp)
                        .is_some_and(|slot| atomic.replace_expect(bucket, slot, fp, 0));
                    let sequential_removed = sequential.remove_one(bucket, fp);
                    prop_assert_eq!(atomic_removed, sequential_removed, "remove diverged");
                }
            }
        }

        prop_assert_eq!(atomic.occupied(), sequential.occupied(), "occupancy diverged");
        for bucket in 0..buckets {
            for slot in 0..slots {
                prop_assert_eq!(
                    atomic.get(bucket, slot),
                    sequential.get(bucket, slot),
                    "slot ({}, {}) diverged", bucket, slot
                );
            }
            prop_assert_eq!(
                atomic.bucket_is_full(bucket),
                sequential.bucket_is_full(bucket)
            );
        }
    }

    /// The atomic engine's SWAR probe (`contains`/`find` over
    /// relaxed-loaded words) agrees with the sequential engine's on
    /// identical contents, for every representable probe value.
    #[test]
    fn atomic_probes_match_sequential_probes(
        slots in 1usize..=8,
        fp_bits in 2u32..=16,
        lanes in prop::collection::vec(1u64..0xffff, 8),
    ) {
        use vcf_table::AtomicFingerprintTable;

        let Ok(atomic) = AtomicFingerprintTable::new(2, slots, fp_bits) else {
            return Ok(());
        };
        let mut sequential = FingerprintTable::new(2, slots, fp_bits).unwrap();
        for &lane in lanes.iter().take(slots) {
            let fp = ((lane & ((1u64 << fp_bits) - 1)) as u32).max(1);
            // Fill bucket 1 of both tables identically.
            assert_eq!(atomic.try_claim(1, fp), sequential.try_insert(1, fp));
        }
        for probe in 1u32..128 {
            let probe = (probe & (((1u64 << fp_bits) - 1) as u32)).max(1);
            prop_assert_eq!(atomic.contains(1, probe), sequential.contains(1, probe));
            prop_assert_eq!(atomic.find(1, probe), sequential.find(1, probe));
            prop_assert_eq!(atomic.contains(0, probe), false, "empty bucket matched");
        }
    }
}
