//! Property tests pinning the SWAR bucket kernels to the scalar slot loop
//! they replaced.
//!
//! The bucket engine answers every probe with broadcast-compare word
//! tricks; a single wrong carry would surface as false negatives (lost
//! items) or phantom matches (false positives beyond the design rate) far
//! above the storage layer. Each property below drives a kernel and its
//! scalar oracle — a plain `for slot in 0..b` loop over `lane()` — with
//! random geometry and random contents including the zero sentinel and
//! duplicate lanes, and demands exact agreement.
//!
//! The final section upgrades this into a *three-way* differential: the
//! scalar oracle, the forced-SWAR engine, and every SIMD kernel the host
//! can dispatch to ([`KernelKind`]) must agree probe-for-probe — on
//! straddle-free lane layouts where the vector kernels engage, and on
//! straddling ones where dispatch must pin itself back to SWAR.

use proptest::prelude::*;
use vcf_table::{BucketEngine, FingerprintTable, KernelKind};

/// Builds an engine plus one bucket's worth of words holding `lanes`
/// (truncated to the lane width, list truncated/padded to `slots`).
fn build_bucket(slots: usize, width: u32, lanes: &[u64]) -> (BucketEngine, Vec<u64>) {
    let engine = BucketEngine::new(slots, width).unwrap();
    let mut words = vec![0u64; engine.storage_words(1)];
    for slot in 0..slots {
        let value = lanes.get(slot).copied().unwrap_or(0) & engine.lane_mask();
        engine.set_slot(&mut words, 0, slot, value);
    }
    (engine, words)
}

/// The scalar oracle: first slot whose lane equals `pattern`.
fn scalar_find(engine: &BucketEngine, words: &[u64], pattern: u64) -> Option<usize> {
    let bucket = engine.read_bucket(words, 0);
    (0..engine.slots()).find(|&slot| engine.lane(&bucket, slot) == pattern)
}

proptest! {
    /// `find_in_bucket` and `contains_in_bucket` agree with the scalar
    /// loop for random widths, bucket sizes, contents and probes.
    #[test]
    fn find_and_contains_match_scalar(
        width in 1u32..=32,
        slots in 1usize..=8,
        lanes in prop::collection::vec(any::<u64>(), 8),
        probe in any::<u64>(),
    ) {
        let (engine, words) = build_bucket(slots, width, &lanes);
        let bucket = engine.read_bucket(&words, 0);
        let probe = probe & engine.lane_mask();
        let expected = scalar_find(&engine, &words, probe);
        prop_assert_eq!(engine.find_in_bucket(&bucket, probe), expected);
        prop_assert_eq!(engine.contains_in_bucket(&bucket, probe), expected.is_some());
    }

    /// Probing each resident lane (duplicates included) always finds the
    /// first copy, and a probe for a value forced absent never matches.
    #[test]
    fn every_resident_is_found(
        width in 1u32..=32,
        slots in 1usize..=8,
        lanes in prop::collection::vec(any::<u64>(), 8),
    ) {
        let (engine, words) = build_bucket(slots, width, &lanes);
        let bucket = engine.read_bucket(&words, 0);
        for slot in 0..slots {
            let resident = engine.lane(&bucket, slot);
            let first = (0..slots).find(|&s| engine.lane(&bucket, s) == resident);
            prop_assert_eq!(engine.find_in_bucket(&bucket, resident), first);
        }
    }

    /// Zero-sentinel duplicates: `first_empty_slot` and `bucket_len` agree
    /// with the scalar loop when lanes are forced to be mostly zero/dup.
    #[test]
    fn empty_and_len_match_scalar(
        width in 1u32..=32,
        slots in 1usize..=8,
        // Small value domain: lots of zeros and collisions.
        lanes in prop::collection::vec(0u64..3, 8),
    ) {
        let (engine, words) = build_bucket(slots, width, &lanes);
        let bucket = engine.read_bucket(&words, 0);
        prop_assert_eq!(engine.first_empty_slot(&bucket), scalar_find(&engine, &words, 0));
        let scalar_len = (0..slots)
            .filter(|&slot| engine.lane(&bucket, slot) != 0)
            .count();
        prop_assert_eq!(engine.bucket_len(&bucket), scalar_len);
    }

    /// The masked-field kernel (k-VCF's empty test) agrees with a scalar
    /// masked compare for arbitrary field masks.
    #[test]
    fn find_field_matches_scalar(
        width in 2u32..=32,
        slots in 1usize..=8,
        lanes in prop::collection::vec(any::<u64>(), 8),
        pattern in any::<u64>(),
        field in any::<u64>(),
    ) {
        let (engine, words) = build_bucket(slots, width, &lanes);
        let field = {
            let f = field & engine.lane_mask();
            if f == 0 { 1 } else { f }
        };
        let pattern = pattern & field;
        let bucket = engine.read_bucket(&words, 0);
        let expected = (0..slots)
            .find(|&slot| engine.lane(&bucket, slot) & field == pattern);
        prop_assert_eq!(engine.find_field(&bucket, pattern, field), expected);
    }

    /// `set_slot` + kernels behave exactly like a `Vec<u64>` model: after
    /// a random write sequence, every probe agrees lane-for-lane.
    #[test]
    fn table_state_matches_vec_model(
        width in 2u32..=32,
        slots in 1usize..=8,
        ops in prop::collection::vec((0usize..8, 0u64..16), 1..60),
    ) {
        let engine = BucketEngine::new(slots, width).unwrap();
        let mut words = vec![0u64; engine.storage_words(4)];
        let mut model = vec![0u64; 4 * slots];
        for (raw_slot, value) in ops {
            let bucket = raw_slot % 4;
            let slot = raw_slot % slots;
            let value = value & engine.lane_mask();
            engine.set_slot(&mut words, bucket, slot, value);
            model[bucket * slots + slot] = value;
        }
        for bucket in 0..4 {
            let loaded = engine.read_bucket(&words, bucket);
            for slot in 0..slots {
                prop_assert_eq!(engine.lane(&loaded, slot), model[bucket * slots + slot]);
            }
            let model_len = model[bucket * slots..(bucket + 1) * slots]
                .iter()
                .filter(|&&v| v != 0)
                .count();
            prop_assert_eq!(engine.bucket_len(&loaded), model_len);
        }
    }

    /// FingerprintTable (SWAR-probed) behaves like a Vec-of-buckets model
    /// under random insert/remove interleavings — byte-level state is
    /// checked through `get`, answers through `contains`/`find`.
    #[test]
    fn fingerprint_table_matches_model(
        fp_bits in 2u32..=32,
        ops in prop::collection::vec((0u8..2, 0usize..8, 1u64..64), 1..120),
    ) {
        let slots = 4usize;
        let mut table = FingerprintTable::new(8, slots, fp_bits).unwrap();
        let mut model: Vec<Vec<u32>> = vec![vec![0; slots]; 8];
        for (op, bucket, fp) in ops {
            let fp = ((fp & ((1u64 << fp_bits) - 1)) as u32).max(1);
            match op {
                0 => {
                    let slot = table.try_insert(bucket, fp);
                    let model_slot = model[bucket].iter().position(|&v| v == 0);
                    prop_assert_eq!(slot, model_slot, "insert diverged");
                    if let Some(s) = model_slot {
                        model[bucket][s] = fp;
                    }
                }
                _ => {
                    let removed = table.remove_one(bucket, fp);
                    let model_slot = model[bucket].iter().position(|&v| v == fp);
                    prop_assert_eq!(removed, model_slot.is_some(), "remove diverged");
                    if let Some(s) = model_slot {
                        model[bucket][s] = 0;
                    }
                }
            }
        }
        for (bucket, model_bucket) in model.iter().enumerate() {
            for (slot, &model_fp) in model_bucket.iter().enumerate() {
                prop_assert_eq!(table.get(bucket, slot), model_fp);
            }
            for fp in 1u32..64 {
                let fp = fp & (((1u64 << fp_bits) - 1) as u32);
                if fp == 0 {
                    continue;
                }
                prop_assert_eq!(
                    table.contains(bucket, fp),
                    model_bucket.contains(&fp),
                    "contains diverged for fp {} in bucket {}",
                    fp,
                    bucket
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Atomic engine differential: the lock-free table must be slot-for-slot
// identical to the sequential one under any single-threaded op sequence.
// ---------------------------------------------------------------------

proptest! {
    /// `AtomicFingerprintTable` (CAS claim / CAS replace) and
    /// `FingerprintTable` (plain read-modify-write), driven by the same
    /// single-threaded insert/remove sequence, end in bit-identical slot
    /// states with identical occupancy — both pick the first empty slot
    /// on insert and the first match on remove, so any divergence means
    /// a lane-shift or CAS-retry bug in the atomic path. Geometries whose
    /// lanes straddle a word boundary are rejected by the atomic
    /// constructor and skipped.
    #[test]
    fn atomic_table_matches_sequential_table(
        slots in 1usize..=8,
        fp_bits in 2u32..=32,
        ops in prop::collection::vec((0u8..2, 0usize..8, 1u64..0xffff_ffff), 1..150),
    ) {
        use vcf_table::AtomicFingerprintTable;

        let buckets = 8usize;
        let Ok(atomic) = AtomicFingerprintTable::new(buckets, slots, fp_bits) else {
            // Straddling lane layout: not constructible atomically.
            return Ok(());
        };
        let mut sequential = FingerprintTable::new(buckets, slots, fp_bits).unwrap();

        for &(op, bucket, fp) in &ops {
            let fp = ((fp & ((1u64 << fp_bits) - 1)) as u32).max(1);
            match op {
                0 => {
                    let claimed = atomic.try_claim(bucket, fp);
                    let inserted = sequential.try_insert(bucket, fp);
                    prop_assert_eq!(claimed, inserted, "insert slot choice diverged");
                }
                _ => {
                    let atomic_removed = atomic
                        .find(bucket, fp)
                        .is_some_and(|slot| atomic.replace_expect(bucket, slot, fp, 0));
                    let sequential_removed = sequential.remove_one(bucket, fp);
                    prop_assert_eq!(atomic_removed, sequential_removed, "remove diverged");
                }
            }
        }

        prop_assert_eq!(atomic.occupied(), sequential.occupied(), "occupancy diverged");
        for bucket in 0..buckets {
            for slot in 0..slots {
                prop_assert_eq!(
                    atomic.get(bucket, slot),
                    sequential.get(bucket, slot),
                    "slot ({}, {}) diverged", bucket, slot
                );
            }
            prop_assert_eq!(
                atomic.bucket_is_full(bucket),
                sequential.bucket_is_full(bucket)
            );
        }
    }

    /// The atomic engine's SWAR probe (`contains`/`find` over
    /// relaxed-loaded words) agrees with the sequential engine's on
    /// identical contents, for every representable probe value.
    #[test]
    fn atomic_probes_match_sequential_probes(
        slots in 1usize..=8,
        fp_bits in 2u32..=16,
        lanes in prop::collection::vec(1u64..0xffff, 8),
    ) {
        use vcf_table::AtomicFingerprintTable;

        let Ok(atomic) = AtomicFingerprintTable::new(2, slots, fp_bits) else {
            return Ok(());
        };
        let mut sequential = FingerprintTable::new(2, slots, fp_bits).unwrap();
        for &lane in lanes.iter().take(slots) {
            let fp = ((lane & ((1u64 << fp_bits) - 1)) as u32).max(1);
            // Fill bucket 1 of both tables identically.
            assert_eq!(atomic.try_claim(1, fp), sequential.try_insert(1, fp));
        }
        for probe in 1u32..128 {
            let probe = (probe & (((1u64 << fp_bits) - 1) as u32)).max(1);
            prop_assert_eq!(atomic.contains(1, probe), sequential.contains(1, probe));
            prop_assert_eq!(atomic.find(1, probe), sequential.find(1, probe));
            prop_assert_eq!(atomic.contains(0, probe), false, "empty bucket matched");
        }
    }
}

// ---------------------------------------------------------------------
// Three-way kernel differential: scalar oracle vs forced SWAR vs every
// dispatched SIMD kind the host supports. A SIMD kernel is only correct
// if it is bit-identical to SWAR on every probe, so each property runs
// the same storage through every variant.
// ---------------------------------------------------------------------

/// Every kernel variant the host can actually run on this geometry:
/// forced SWAR, any supported SIMD kind, and the construction-time
/// default (which must be one of the former).
fn kernel_variants(engine: BucketEngine) -> Vec<BucketEngine> {
    let mut variants = vec![engine.with_kernel(KernelKind::Swar)];
    for kind in [KernelKind::Avx2, KernelKind::Neon] {
        let forced = engine.with_kernel(kind);
        if forced.kernel_kind() == kind {
            variants.push(forced);
        }
    }
    variants.push(engine);
    variants
}

/// Lane values with a strong bias toward the zero sentinel and small
/// duplicates, so empty-slot scans and first-match ties get exercised.
fn lane_value() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..1, 0u64..4, any::<u64>()]
}

proptest! {
    /// All five whole-bucket probes agree with the scalar loop under
    /// every kernel variant, across arbitrary geometry (both
    /// straddle-free layouts, where the SIMD kernels engage, and
    /// straddling ones, where dispatch pins back to SWAR).
    #[test]
    fn probes_agree_across_kernels(
        width in 1u32..=32,
        slots in 1usize..=8,
        lanes in prop::collection::vec(lane_value(), 32),
        probe in any::<u64>(),
        field in any::<u64>(),
    ) {
        let engine = BucketEngine::new(slots, width).unwrap();
        let buckets = 4usize;
        let mut words = vec![0u64; engine.storage_words(buckets)];
        for bucket in 0..buckets {
            for slot in 0..slots {
                let value = lanes[bucket * 8 + slot] & engine.lane_mask();
                engine.set_slot(&mut words, bucket, slot, value);
            }
        }
        let probe = probe & engine.lane_mask();
        let field = {
            let f = field & engine.lane_mask();
            if f == 0 { 1 } else { f }
        };
        let field_pattern = probe & field;
        for variant in kernel_variants(engine) {
            let kind = variant.kernel_kind();
            for bucket in 0..buckets {
                let loaded = variant.read_bucket(&words, bucket);
                let lane = |slot: usize| variant.lane(&loaded, slot);
                let scalar_find = (0..slots).find(|&s| lane(s) == probe);
                let scalar_empty = (0..slots).find(|&s| lane(s) == 0);
                let scalar_len = (0..slots).filter(|&s| lane(s) != 0).count();
                let scalar_field = (0..slots).find(|&s| lane(s) & field == field_pattern);
                prop_assert_eq!(
                    variant.probe_find(&words, bucket, probe),
                    scalar_find, "find under {}", kind
                );
                prop_assert_eq!(
                    variant.probe_contains(&words, bucket, probe),
                    scalar_find.is_some(), "contains under {}", kind
                );
                prop_assert_eq!(
                    variant.probe_first_empty(&words, bucket),
                    scalar_empty, "first_empty under {}", kind
                );
                prop_assert_eq!(
                    variant.probe_len(&words, bucket),
                    scalar_len, "len under {}", kind
                );
                prop_assert_eq!(
                    variant.probe_find_field(&words, bucket, field_pattern, field),
                    scalar_field, "find_field under {}", kind
                );
            }
        }
    }

    /// The multi-bucket candidate probe (gather-compare under AVX2 on
    /// single-word buckets) agrees with a scalar per-candidate loop for
    /// every kernel variant, with per-candidate patterns as k-VCF uses.
    #[test]
    fn contains_any_agrees_across_kernels(
        width in 1u32..=32,
        slots in 1usize..=8,
        lanes in prop::collection::vec(lane_value(), 64),
        candidates in prop::collection::vec((0usize..8, lane_value()), 1..=8),
    ) {
        let engine = BucketEngine::new(slots, width).unwrap();
        let buckets = 8usize;
        let mut words = vec![0u64; engine.storage_words(buckets)];
        for bucket in 0..buckets {
            for slot in 0..slots {
                let value = lanes[bucket * 8 + slot] & engine.lane_mask();
                engine.set_slot(&mut words, bucket, slot, value);
            }
        }
        let cand_buckets: Vec<usize> = candidates.iter().map(|&(b, _)| b).collect();
        let patterns: Vec<u64> =
            candidates.iter().map(|&(_, p)| p & engine.lane_mask()).collect();
        for variant in kernel_variants(engine) {
            let scalar = cand_buckets.iter().zip(&patterns).any(|(&b, &p)| {
                let loaded = variant.read_bucket(&words, b);
                (0..slots).any(|s| variant.lane(&loaded, s) == p)
            });
            prop_assert_eq!(
                variant.probe_contains_any(&words, &cand_buckets, &patterns),
                scalar,
                "contains_any under {}", variant.kernel_kind()
            );
        }
    }

    /// A `FingerprintTable` forced to SWAR and one on the dispatched
    /// default answer identically after the same insert sequence.
    #[test]
    fn table_probes_agree_across_kernels(
        fp_bits in 2u32..=32,
        slots in 1usize..=8,
        inserts in prop::collection::vec((0usize..8, 1u64..0xffff), 1..40),
        probes in prop::collection::vec((0usize..8, 1u64..0xffff), 16),
    ) {
        let mut dispatched = FingerprintTable::new(8, slots, fp_bits).unwrap();
        let mut swar = FingerprintTable::new(8, slots, fp_bits).unwrap();
        prop_assert_eq!(swar.set_kernel(KernelKind::Swar), KernelKind::Swar);
        for &(bucket, fp) in &inserts {
            let fp = ((fp & ((1u64 << fp_bits) - 1)) as u32).max(1);
            prop_assert_eq!(dispatched.try_insert(bucket, fp), swar.try_insert(bucket, fp));
        }
        for &(bucket, fp) in &probes {
            let fp = ((fp & ((1u64 << fp_bits) - 1)) as u32).max(1);
            prop_assert_eq!(dispatched.contains(bucket, fp), swar.contains(bucket, fp));
            prop_assert_eq!(dispatched.find(bucket, fp), swar.find(bucket, fp));
            prop_assert_eq!(dispatched.bucket_len(bucket), swar.bucket_len(bucket));
            let cands = [bucket, (bucket + 3) % 8, (bucket + 5) % 8, (bucket + 6) % 8];
            prop_assert_eq!(
                dispatched.contains_any(&cands, fp),
                swar.contains_any(&cands, fp)
            );
        }
    }
}

/// Straddle-free layouts accept SIMD kinds the host supports; straddling
/// layouts clamp every request back to SWAR.
#[test]
fn kernel_dispatch_respects_layout_eligibility() {
    // 8 × 14 bits: lanes straddle the word boundary → always SWAR.
    let straddling = BucketEngine::new(8, 14).unwrap();
    assert_eq!(straddling.kernel_kind(), KernelKind::Swar);
    assert_eq!(
        straddling.with_kernel(KernelKind::Avx2).kernel_kind(),
        KernelKind::Swar
    );
    assert_eq!(
        straddling.with_kernel(KernelKind::Neon).kernel_kind(),
        KernelKind::Swar
    );

    // Straddle-free layouts: 4 × 14 (one word) and 8 × 16 (64 % 16 == 0).
    for engine in [
        BucketEngine::new(4, 14).unwrap(),
        BucketEngine::new(8, 16).unwrap(),
        BucketEngine::new(8, 32).unwrap(),
    ] {
        // Forcing SWAR always works…
        assert_eq!(
            engine.with_kernel(KernelKind::Swar).kernel_kind(),
            KernelKind::Swar
        );
        // …and on an AVX2 host the eligible layout must accept AVX2.
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2")
            && std::env::var_os("VCF_FORCE_SWAR").is_none()
        {
            assert_eq!(
                engine.with_kernel(KernelKind::Avx2).kernel_kind(),
                KernelKind::Avx2
            );
            assert_eq!(engine.kernel_kind(), KernelKind::Avx2);
        }
    }
}
