//! Property-based tests for the bit-packed table substrate.
//!
//! The packed table is the foundation every filter stands on; a single
//! off-by-one in the bit arithmetic would corrupt neighbouring slots and
//! surface as impossible-to-debug false negatives far above. These tests
//! model the table against plain `Vec`-backed references under random
//! operation sequences.

use proptest::prelude::*;
use vcf_table::{FingerprintTable, MarkedEntry, MarkedTable, PackedTable};

proptest! {
    /// PackedTable must behave exactly like a Vec<u64> of masked values.
    #[test]
    fn packed_matches_vec_model(
        width in 1u32..=63,
        ops in prop::collection::vec((0usize..200, any::<u64>()), 1..200),
    ) {
        let count = 200;
        let mask = (1u64 << width) - 1;
        let mut table = PackedTable::new(count, width).unwrap();
        let mut model = vec![0u64; count];
        for (index, value) in ops {
            let value = value & mask;
            table.set(index, value);
            model[index] = value;
            prop_assert_eq!(table.get(index), value);
        }
        for (i, &expected) in model.iter().enumerate() {
            prop_assert_eq!(table.get(i), expected, "slot {} diverged", i);
        }
    }

    /// Writing one slot never disturbs any other slot, across widths that
    /// straddle word boundaries.
    #[test]
    fn packed_writes_are_isolated(
        width in 1u32..=63,
        target in 0usize..100,
        value in any::<u64>(),
    ) {
        let mask = (1u64 << width) - 1;
        let mut table = PackedTable::new(100, width).unwrap();
        // Paint a recognizable background.
        for i in 0..100 {
            table.set(i, (i as u64 * 0x5555_5555_5555) & mask);
        }
        table.set(target, value & mask);
        for i in 0..100 {
            let expected = if i == target { value & mask } else { (i as u64 * 0x5555_5555_5555) & mask };
            prop_assert_eq!(table.get(i), expected, "slot {} disturbed", i);
        }
    }

    /// FingerprintTable occupancy always equals the number of non-zero
    /// slots, under arbitrary interleavings of insert/remove/set/swap.
    #[test]
    fn fingerprint_occupancy_invariant(
        ops in prop::collection::vec((0u8..4, 0usize..16, 1u32..1 << 12), 1..300),
    ) {
        let mut t = FingerprintTable::new(16, 4, 12).unwrap();
        for (op, bucket, fp) in ops {
            match op {
                0 => { let _ = t.try_insert(bucket, fp); }
                1 => { let _ = t.remove_one(bucket, fp); }
                2 => { t.set(bucket, fp as usize % 4, fp); }
                _ => { let _ = t.swap(bucket, fp as usize % 4, fp); }
            }
            let counted = t.iter().count();
            prop_assert_eq!(t.occupied(), counted, "occupancy counter diverged");
        }
    }

    /// Everything inserted into a FingerprintTable (and not removed) is
    /// findable: the no-false-negative property at the storage layer.
    #[test]
    fn fingerprint_inserted_items_found(
        items in prop::collection::vec((0usize..32, 1u32..1 << 10), 1..120),
    ) {
        let mut t = FingerprintTable::new(32, 4, 10).unwrap();
        let mut stored: Vec<(usize, u32)> = Vec::new();
        for (bucket, fp) in items {
            if t.try_insert(bucket, fp).is_some() {
                stored.push((bucket, fp));
            }
        }
        for (bucket, fp) in stored {
            prop_assert!(t.contains(bucket, fp), "lost fingerprint {fp:#x} in bucket {bucket}");
        }
    }

    /// Removing an item removes exactly one copy.
    #[test]
    fn fingerprint_remove_is_single_copy(
        bucket in 0usize..8,
        fp in 1u32..1 << 12,
        copies in 1usize..4,
    ) {
        let mut t = FingerprintTable::new(8, 4, 12).unwrap();
        for _ in 0..copies {
            t.try_insert(bucket, fp).unwrap();
        }
        for remaining in (0..copies).rev() {
            prop_assert!(t.remove_one(bucket, fp));
            let count = (0..4).filter(|&s| t.get(bucket, s) == fp).count();
            prop_assert_eq!(count, remaining);
        }
        prop_assert!(!t.remove_one(bucket, fp));
    }

    /// MarkedTable roundtrips arbitrary (fingerprint, mark) pairs and
    /// matches exactly.
    #[test]
    fn marked_roundtrip(
        entries in prop::collection::vec((0usize..16, 1u32..1 << 16, 0u8..8), 1..60),
    ) {
        let mut t = MarkedTable::new(16, 4, 16, 8).unwrap();
        let mut stored = Vec::new();
        for (bucket, fingerprint, mark) in entries {
            let entry = MarkedEntry { fingerprint, mark };
            if t.try_insert(bucket, entry).is_some() {
                stored.push((bucket, entry));
            }
        }
        for (bucket, entry) in &stored {
            prop_assert!(t.contains(*bucket, *entry));
        }
        // Remove everything; table must end empty.
        for (bucket, entry) in stored {
            prop_assert!(t.remove_one(bucket, entry));
        }
        prop_assert_eq!(t.occupied(), 0);
    }

    /// Marked swap conserves the multiset of entries plus the incoming one.
    #[test]
    fn marked_swap_conserves_entries(
        seed_entries in prop::collection::vec((1u32..100, 0u8..4), 1..=4),
        incoming_fp in 100u32..200,
    ) {
        let mut t = MarkedTable::new(4, 4, 16, 4).unwrap();
        for (fp, mark) in &seed_entries {
            t.try_insert(0, MarkedEntry { fingerprint: *fp, mark: *mark }).unwrap();
        }
        let before = t.occupied();
        let incoming = MarkedEntry { fingerprint: incoming_fp, mark: 1 };
        let victim = t.swap(0, 0, incoming);
        prop_assert!(victim.is_some(), "seeded slot 0 must have been occupied");
        prop_assert_eq!(t.occupied(), before);
        prop_assert!(t.contains(0, incoming));
    }
}
