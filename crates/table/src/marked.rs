//! Bucketed storage of `(fingerprint, mark)` pairs for k-VCF.
//!
//! Section III-C: "k-VCF does not satisfy Theorem 1 like VCF, so it must
//! add the mark bits to label the bitmasks […] Consequently, each slot
//! must have two fields, the fingerprint field and the counter field."
//! The mark records *which* candidate position (equivalently, which
//! bitmask of Equ. 6) the stored fingerprint currently occupies, so that a
//! relocation can apply Equ. 7 without re-hashing the original item.

use crate::packed::PackedTable;
use crate::{MAX_BUCKET_SLOTS, MAX_FINGERPRINT_BITS, MIN_FINGERPRINT_BITS};
use vcf_traits::BuildError;

/// One occupied k-VCF slot: the fingerprint plus the candidate-position
/// mark (`0..k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MarkedEntry {
    /// Stored fingerprint, never zero for an occupied slot.
    pub fingerprint: u32,
    /// Index of the candidate bucket (equivalently, of the Equ. 6 bitmask)
    /// this copy currently resides in: `0` = `B1`, `k-1` = `Bk`.
    pub mark: u8,
}

/// A table whose slots carry a fingerprint field and a mark ("counter")
/// field, bit-packed side by side.
///
/// # Examples
///
/// ```
/// use vcf_table::{MarkedEntry, MarkedTable};
///
/// let mut t = MarkedTable::new(8, 4, 16, 7)?;
/// let e = MarkedEntry { fingerprint: 0xbeef, mark: 5 };
/// t.try_insert(2, e).expect("room");
/// assert!(t.contains(2, e));
/// # Ok::<(), vcf_traits::BuildError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MarkedTable {
    slots: PackedTable,
    buckets: usize,
    slots_per_bucket: usize,
    fingerprint_bits: u32,
    mark_bits: u32,
    occupied: usize,
}

impl MarkedTable {
    /// Creates an empty marked table sized for `candidates` candidate
    /// buckets per item (`k`); the mark field gets `ceil(log2(k))` bits.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the geometry is invalid or
    /// `candidates < 2`.
    pub fn new(
        buckets: usize,
        slots_per_bucket: usize,
        fingerprint_bits: u32,
        candidates: usize,
    ) -> Result<Self, BuildError> {
        if buckets == 0 {
            return Err(BuildError::InvalidBucketCount {
                got: 0,
                requirement: "positive",
            });
        }
        if slots_per_bucket == 0 || slots_per_bucket > MAX_BUCKET_SLOTS {
            return Err(BuildError::InvalidBucketSize {
                got: slots_per_bucket,
            });
        }
        if !(MIN_FINGERPRINT_BITS..=MAX_FINGERPRINT_BITS).contains(&fingerprint_bits) {
            return Err(BuildError::InvalidFingerprintBits {
                got: fingerprint_bits,
                min: MIN_FINGERPRINT_BITS,
                max: MAX_FINGERPRINT_BITS,
            });
        }
        if candidates < 2 {
            return Err(BuildError::InvalidConfig {
                reason: format!("k-VCF needs at least 2 candidate buckets, got {candidates}"),
            });
        }
        let mark_bits = (usize::BITS - (candidates - 1).leading_zeros()).max(1);
        let slots = PackedTable::new(buckets * slots_per_bucket, fingerprint_bits + mark_bits)?;
        Ok(Self {
            slots,
            buckets,
            slots_per_bucket,
            fingerprint_bits,
            mark_bits,
            occupied: 0,
        })
    }

    /// Number of buckets.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Slots per bucket.
    #[inline]
    pub fn slots_per_bucket(&self) -> usize {
        self.slots_per_bucket
    }

    /// Fingerprint width in bits.
    #[inline]
    pub fn fingerprint_bits(&self) -> u32 {
        self.fingerprint_bits
    }

    /// Mark field width in bits (the paper's "extra three bits […] when
    /// k = 7" corresponds to `mark_bits = 3`).
    #[inline]
    pub fn mark_bits(&self) -> u32 {
        self.mark_bits
    }

    /// Total slot capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buckets * self.slots_per_bucket
    }

    /// Number of occupied slots.
    #[inline]
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Current load factor.
    pub fn load_factor(&self) -> f64 {
        self.occupied as f64 / self.capacity() as f64
    }

    /// Heap size of the packed storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.slots.storage_bytes()
    }

    #[inline]
    fn slot_index(&self, bucket: usize, slot: usize) -> usize {
        debug_assert!(bucket < self.buckets);
        debug_assert!(slot < self.slots_per_bucket);
        bucket * self.slots_per_bucket + slot
    }

    #[inline]
    fn encode(&self, entry: MarkedEntry) -> u64 {
        debug_assert!(entry.fingerprint != 0);
        (u64::from(entry.mark) << self.fingerprint_bits) | u64::from(entry.fingerprint)
    }

    #[inline]
    fn decode(&self, raw: u64) -> Option<MarkedEntry> {
        let fingerprint = (raw & ((1u64 << self.fingerprint_bits) - 1)) as u32;
        (fingerprint != 0).then_some(MarkedEntry {
            fingerprint,
            mark: (raw >> self.fingerprint_bits) as u8,
        })
    }

    /// Reads `(bucket, slot)`; `None` means empty.
    #[inline]
    pub fn get(&self, bucket: usize, slot: usize) -> Option<MarkedEntry> {
        self.decode(self.slots.get(self.slot_index(bucket, slot)))
    }

    /// Inserts `entry` into the first empty slot of `bucket`; returns the
    /// slot used, or `None` when the bucket is full.
    ///
    /// # Panics
    ///
    /// Panics if the entry's fingerprint is zero or its mark does not fit
    /// in the mark field.
    pub fn try_insert(&mut self, bucket: usize, entry: MarkedEntry) -> Option<usize> {
        assert!(
            entry.fingerprint != 0,
            "fingerprint 0 is the empty sentinel"
        );
        assert!(
            u32::from(entry.mark) < (1 << self.mark_bits),
            "mark {} does not fit in {} bits",
            entry.mark,
            self.mark_bits
        );
        for slot in 0..self.slots_per_bucket {
            let index = self.slot_index(bucket, slot);
            if self.slots.get(index) & ((1u64 << self.fingerprint_bits) - 1) == 0 {
                self.slots.set(index, self.encode(entry));
                self.occupied += 1;
                return Some(slot);
            }
        }
        None
    }

    /// Whether `bucket` stores an exact `(fingerprint, mark)` match.
    pub fn contains(&self, bucket: usize, entry: MarkedEntry) -> bool {
        (0..self.slots_per_bucket).any(|slot| self.get(bucket, slot) == Some(entry))
    }

    /// Removes one exact `(fingerprint, mark)` match from `bucket`.
    pub fn remove_one(&mut self, bucket: usize, entry: MarkedEntry) -> bool {
        for slot in 0..self.slots_per_bucket {
            if self.get(bucket, slot) == Some(entry) {
                self.slots.set(self.slot_index(bucket, slot), 0);
                self.occupied -= 1;
                return true;
            }
        }
        false
    }

    /// Whether `bucket` has no empty slot.
    pub fn bucket_is_full(&self, bucket: usize) -> bool {
        (0..self.slots_per_bucket).all(|slot| self.get(bucket, slot).is_some())
    }

    /// Swaps `entry` with the resident of `(bucket, slot)`, returning the
    /// previous resident (`None` if the slot was empty). Used by the
    /// k-VCF eviction loop, which must read the victim's mark to apply
    /// Equ. 7.
    pub fn swap(&mut self, bucket: usize, slot: usize, entry: MarkedEntry) -> Option<MarkedEntry> {
        assert!(
            entry.fingerprint != 0,
            "fingerprint 0 is the empty sentinel"
        );
        let index = self.slot_index(bucket, slot);
        let old = self.decode(self.slots.get(index));
        self.slots.set(index, self.encode(entry));
        if old.is_none() {
            self.occupied += 1;
        }
        old
    }

    /// Removes every stored entry.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.occupied = 0;
    }

    /// Iterates `(bucket, slot, entry)` over occupied slots.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, MarkedEntry)> + '_ {
        (0..self.buckets).flat_map(move |bucket| {
            (0..self.slots_per_bucket)
                .filter_map(move |slot| self.get(bucket, slot).map(|e| (bucket, slot, e)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> MarkedTable {
        MarkedTable::new(8, 4, 16, 7).unwrap()
    }

    #[test]
    fn mark_bits_match_paper_example() {
        // k = 7 → three extra bits (paper Section III-C).
        assert_eq!(table().mark_bits(), 3);
        assert_eq!(MarkedTable::new(8, 4, 16, 4).unwrap().mark_bits(), 2);
        assert_eq!(MarkedTable::new(8, 4, 16, 2).unwrap().mark_bits(), 1);
        assert_eq!(MarkedTable::new(8, 4, 16, 10).unwrap().mark_bits(), 4);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(MarkedTable::new(0, 4, 16, 4).is_err());
        assert!(MarkedTable::new(8, 0, 16, 4).is_err());
        assert!(MarkedTable::new(8, 4, 1, 4).is_err());
        assert!(MarkedTable::new(8, 4, 16, 1).is_err());
    }

    #[test]
    fn roundtrip_entry() {
        let mut t = table();
        let e = MarkedEntry {
            fingerprint: 0xffff,
            mark: 6,
        };
        let slot = t.try_insert(3, e).unwrap();
        assert_eq!(t.get(3, slot), Some(e));
        assert_eq!(t.occupied(), 1);
    }

    #[test]
    fn exact_match_requires_mark() {
        let mut t = table();
        let e = MarkedEntry {
            fingerprint: 0xab,
            mark: 2,
        };
        t.try_insert(0, e).unwrap();
        assert!(t.contains(0, e));
        assert!(!t.contains(
            0,
            MarkedEntry {
                fingerprint: 0xab,
                mark: 3
            }
        ));
        assert!(!t.remove_one(
            0,
            MarkedEntry {
                fingerprint: 0xab,
                mark: 3
            }
        ));
        assert!(t.remove_one(0, e));
        assert_eq!(t.occupied(), 0);
    }

    #[test]
    fn bucket_fills_and_rejects() {
        let mut t = table();
        for i in 1..=4 {
            t.try_insert(
                1,
                MarkedEntry {
                    fingerprint: i,
                    mark: 0,
                },
            )
            .unwrap();
        }
        assert!(t.bucket_is_full(1));
        assert!(t
            .try_insert(
                1,
                MarkedEntry {
                    fingerprint: 9,
                    mark: 0
                }
            )
            .is_none());
    }

    #[test]
    fn swap_preserves_occupancy_and_returns_victim() {
        let mut t = table();
        let a = MarkedEntry {
            fingerprint: 1,
            mark: 1,
        };
        let b = MarkedEntry {
            fingerprint: 2,
            mark: 4,
        };
        t.try_insert(5, a).unwrap();
        assert_eq!(t.swap(5, 0, b), Some(a));
        assert_eq!(t.occupied(), 1);
        assert_eq!(t.swap(5, 1, a), None);
        assert_eq!(t.occupied(), 2);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_mark_panics() {
        let mut t = table();
        t.try_insert(
            0,
            MarkedEntry {
                fingerprint: 1,
                mark: 8,
            },
        );
    }

    #[test]
    #[should_panic(expected = "empty sentinel")]
    fn zero_fingerprint_panics() {
        let mut t = table();
        t.try_insert(
            0,
            MarkedEntry {
                fingerprint: 0,
                mark: 1,
            },
        );
    }

    #[test]
    fn iter_and_clear() {
        let mut t = table();
        let e = MarkedEntry {
            fingerprint: 77,
            mark: 5,
        };
        t.try_insert(7, e).unwrap();
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(7, 0, e)]);
        t.clear();
        assert_eq!(t.occupied(), 0);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn mark_zero_is_valid_for_occupied_slot() {
        let mut t = table();
        let e = MarkedEntry {
            fingerprint: 5,
            mark: 0,
        };
        t.try_insert(0, e).unwrap();
        assert!(t.contains(0, e));
    }
}
