//! Bucketed storage of `(fingerprint, mark)` pairs for k-VCF.
//!
//! Section III-C: "k-VCF does not satisfy Theorem 1 like VCF, so it must
//! add the mark bits to label the bitmasks […] Consequently, each slot
//! must have two fields, the fingerprint field and the counter field."
//! The mark records *which* candidate position (equivalently, which
//! bitmask of Equ. 6) the stored fingerprint currently occupies, so that a
//! relocation can apply Equ. 7 without re-hashing the original item.

use crate::bucket::{BucketEngine, BucketWords};
use crate::kernels::KernelKind;
use crate::{MAX_BUCKET_SLOTS, MAX_FINGERPRINT_BITS, MIN_FINGERPRINT_BITS};
use vcf_traits::BuildError;

/// One occupied k-VCF slot: the fingerprint plus the candidate-position
/// mark (`0..k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MarkedEntry {
    /// Stored fingerprint, never zero for an occupied slot.
    pub fingerprint: u32,
    /// Index of the candidate bucket (equivalently, of the Equ. 6 bitmask)
    /// this copy currently resides in: `0` = `B1`, `k-1` = `Bk`.
    pub mark: u8,
}

/// A table whose slots carry a fingerprint field and a mark ("counter")
/// field, bit-packed side by side into one lane per slot.
///
/// Probing runs on the same SWAR [`BucketEngine`] as
/// [`FingerprintTable`](crate::FingerprintTable): an exact
/// `(fingerprint, mark)` match is a full-lane compare, while the
/// empty-slot test masks the compare to the fingerprint field only (a
/// slot is empty iff its fingerprint field is zero, whatever its mark
/// bits say).
///
/// # Examples
///
/// ```
/// use vcf_table::{MarkedEntry, MarkedTable};
///
/// let mut t = MarkedTable::new(8, 4, 16, 7)?;
/// let e = MarkedEntry { fingerprint: 0xbeef, mark: 5 };
/// t.try_insert(2, e).expect("room");
/// assert!(t.contains(2, e));
/// # Ok::<(), vcf_traits::BuildError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MarkedTable {
    words: Vec<u64>,
    engine: BucketEngine,
    buckets: usize,
    fingerprint_bits: u32,
    mark_bits: u32,
    occupied: usize,
}

impl MarkedTable {
    /// Creates an empty marked table sized for `candidates` candidate
    /// buckets per item (`k`); the mark field gets `ceil(log2(k))` bits.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the geometry is invalid or
    /// `candidates < 2`.
    pub fn new(
        buckets: usize,
        slots_per_bucket: usize,
        fingerprint_bits: u32,
        candidates: usize,
    ) -> Result<Self, BuildError> {
        if buckets == 0 {
            return Err(BuildError::InvalidBucketCount {
                got: 0,
                requirement: "positive",
            });
        }
        if slots_per_bucket == 0 || slots_per_bucket > MAX_BUCKET_SLOTS {
            return Err(BuildError::InvalidBucketSize {
                got: slots_per_bucket,
            });
        }
        if !(MIN_FINGERPRINT_BITS..=MAX_FINGERPRINT_BITS).contains(&fingerprint_bits) {
            return Err(BuildError::InvalidFingerprintBits {
                got: fingerprint_bits,
                min: MIN_FINGERPRINT_BITS,
                max: MAX_FINGERPRINT_BITS,
            });
        }
        if candidates < 2 {
            return Err(BuildError::InvalidConfig {
                reason: format!("k-VCF needs at least 2 candidate buckets, got {candidates}"),
            });
        }
        let mark_bits = (usize::BITS - (candidates - 1).leading_zeros()).max(1);
        let fp_mask = (1u64 << fingerprint_bits) - 1;
        let engine = BucketEngine::with_empty_field(
            slots_per_bucket,
            fingerprint_bits + mark_bits,
            fp_mask,
        )?;
        Ok(Self {
            words: vec![0u64; engine.storage_words(buckets)],
            engine,
            buckets,
            fingerprint_bits,
            mark_bits,
            occupied: 0,
        })
    }

    /// Number of buckets.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Slots per bucket.
    #[inline]
    pub fn slots_per_bucket(&self) -> usize {
        self.engine.slots()
    }

    /// Fingerprint width in bits.
    #[inline]
    pub fn fingerprint_bits(&self) -> u32 {
        self.fingerprint_bits
    }

    /// Mark field width in bits (the paper's "extra three bits […] when
    /// k = 7" corresponds to `mark_bits = 3`).
    #[inline]
    pub fn mark_bits(&self) -> u32 {
        self.mark_bits
    }

    /// Total slot capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buckets * self.engine.slots()
    }

    /// Number of occupied slots.
    #[inline]
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Current load factor.
    pub fn load_factor(&self) -> f64 {
        self.occupied as f64 / self.capacity() as f64
    }

    /// Heap size of the packed storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The probe-kernel variant this table dispatches to.
    #[inline]
    pub fn kernel_kind(&self) -> KernelKind {
        self.engine.kernel_kind()
    }

    /// Pins this table's probes to `kind` (clamped to what the host CPU
    /// and geometry support) and returns the kind actually in effect —
    /// the differential harness and benches' forcing hook.
    pub fn set_kernel(&mut self, kind: KernelKind) -> KernelKind {
        self.engine = self.engine.with_kernel(kind);
        self.engine.kernel_kind()
    }

    #[inline]
    fn encode(&self, entry: MarkedEntry) -> u64 {
        debug_assert!(entry.fingerprint != 0);
        (u64::from(entry.mark) << self.fingerprint_bits) | u64::from(entry.fingerprint)
    }

    #[inline]
    fn decode(&self, raw: u64) -> Option<MarkedEntry> {
        let fingerprint = (raw & ((1u64 << self.fingerprint_bits) - 1)) as u32;
        (fingerprint != 0).then_some(MarkedEntry {
            fingerprint,
            mark: (raw >> self.fingerprint_bits) as u8,
        })
    }

    /// Loads `bucket`'s words once for repeated kernel probes (also the
    /// batching layer's early-touch hook).
    #[inline]
    pub fn read_bucket(&self, bucket: usize) -> BucketWords {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        self.engine.read_bucket(&self.words, bucket)
    }

    /// Issues a software prefetch for `bucket`'s storage words — the
    /// insert pipeline's warm-up hook. Unlike
    /// [`touch_bucket`](Self::touch_bucket) this performs no load, so it
    /// cannot stall even when the line is cold.
    #[inline]
    pub fn prefetch_bucket(&self, bucket: usize) {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        self.engine.prefetch_bucket(&self.words, bucket);
    }

    /// Pulls `bucket`'s cache line toward the core with a single word
    /// load (kept alive by `black_box`) — the batching layer's
    /// early-touch hook, much cheaper than materialising the bucket.
    #[inline]
    pub fn touch_bucket(&self, bucket: usize) {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        std::hint::black_box(self.words[bucket * self.engine.words_per_bucket()]);
    }

    /// Whether `entry` could have been stored at all (non-zero
    /// fingerprint that fits the field, mark that fits its field).
    #[inline]
    fn is_storable(&self, entry: MarkedEntry) -> bool {
        entry.fingerprint != 0
            && u64::from(entry.fingerprint) < (1u64 << self.fingerprint_bits)
            && u32::from(entry.mark) < (1 << self.mark_bits)
    }

    /// Reads `(bucket, slot)`; `None` means empty.
    #[inline]
    pub fn get(&self, bucket: usize, slot: usize) -> Option<MarkedEntry> {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        self.decode(self.engine.get_slot(&self.words, bucket, slot))
    }

    /// Inserts `entry` into the first empty slot of `bucket`; returns the
    /// slot used, or `None` when the bucket is full.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the entry's fingerprint is zero or its mark
    /// does not fit in the mark field; both are derived quantities the
    /// k-VCF remaps/bounds before they reach the table.
    pub fn try_insert(&mut self, bucket: usize, entry: MarkedEntry) -> Option<usize> {
        debug_assert!(
            entry.fingerprint != 0,
            "fingerprint 0 is the empty sentinel"
        );
        debug_assert!(
            u32::from(entry.mark) < (1 << self.mark_bits),
            "mark {} does not fit in {} bits",
            entry.mark,
            self.mark_bits
        );
        let slot = self.engine.probe_first_empty(&self.words, bucket)?;
        let encoded = self.encode(entry);
        self.engine.set_slot(&mut self.words, bucket, slot, encoded);
        self.occupied += 1;
        Some(slot)
    }

    /// First-fit fills `bucket` with the leading `entries` (capped at
    /// one bucket's worth), loading and storing the bucket words once —
    /// the bulk build's run primitive (see
    /// [`BucketEngine::fill_bucket`]). Returns how many were placed
    /// (always a prefix; fewer than asked means the bucket is now
    /// full).
    ///
    /// # Panics
    ///
    /// Debug builds panic if any entry's fingerprint is zero or its mark
    /// does not fit in the mark field; both are derived quantities the
    /// k-VCF remaps/bounds before they reach the table.
    pub fn fill(&mut self, bucket: usize, entries: &[MarkedEntry]) -> usize {
        let take = entries.len().min(MAX_BUCKET_SLOTS);
        let mut encoded = [0u64; MAX_BUCKET_SLOTS];
        for (out, &entry) in encoded.iter_mut().zip(&entries[..take]) {
            debug_assert!(
                entry.fingerprint != 0,
                "fingerprint 0 is the empty sentinel"
            );
            debug_assert!(
                u32::from(entry.mark) < (1 << self.mark_bits),
                "mark {} does not fit in {} bits",
                entry.mark,
                self.mark_bits
            );
            *out = self.encode(entry);
        }
        let placed = self
            .engine
            .fill_bucket(&mut self.words, bucket, &encoded[..take]);
        self.occupied += placed;
        placed
    }

    /// Whether `bucket` stores an exact `(fingerprint, mark)` match.
    pub fn contains(&self, bucket: usize, entry: MarkedEntry) -> bool {
        if !self.is_storable(entry) {
            return false;
        }
        self.engine
            .probe_contains(&self.words, bucket, self.encode(entry))
    }

    /// Whether any `buckets[i]` stores an exact match of `entries[i]` —
    /// the batched candidate probe, one `(bucket, mark-specific pattern)`
    /// pair per candidate position. Under AVX2 with single-word buckets
    /// every candidate is tested in one or two 64-bit gathers.
    pub fn contains_any(&self, buckets: &[usize], entries: &[MarkedEntry]) -> bool {
        debug_assert_eq!(buckets.len(), entries.len());
        debug_assert!(buckets.iter().all(|&b| b < self.buckets));
        if entries.iter().any(|&e| !self.is_storable(e)) {
            // A zero-fingerprint pattern would match *empty* lanes, so
            // unstorable entries cannot ride the gather path.
            return buckets
                .iter()
                .zip(entries)
                .any(|(&b, &e)| self.contains(b, e));
        }
        let mut patterns = [0u64; 8];
        buckets
            .chunks(8)
            .zip(entries.chunks(8))
            .any(|(bchunk, echunk)| {
                for (slot, &entry) in patterns.iter_mut().zip(echunk) {
                    *slot = self.encode(entry);
                }
                self.engine
                    .probe_contains_any(&self.words, bchunk, &patterns[..bchunk.len()])
            })
    }

    /// Removes one exact `(fingerprint, mark)` match from `bucket`.
    pub fn remove_one(&mut self, bucket: usize, entry: MarkedEntry) -> bool {
        if !self.is_storable(entry) {
            return false;
        }
        match self
            .engine
            .probe_find(&self.words, bucket, self.encode(entry))
        {
            Some(slot) => {
                self.engine.set_slot(&mut self.words, bucket, slot, 0);
                self.occupied -= 1;
                true
            }
            None => false,
        }
    }

    /// Whether `bucket` has no empty slot.
    pub fn bucket_is_full(&self, bucket: usize) -> bool {
        self.first_empty_slot(bucket).is_none()
    }

    /// First empty slot of `bucket`, if any — the BFS eviction search's
    /// goal test.
    #[inline]
    pub fn first_empty_slot(&self, bucket: usize) -> Option<usize> {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        self.engine.probe_first_empty(&self.words, bucket)
    }

    /// Swaps `entry` with the resident of `(bucket, slot)`, returning the
    /// previous resident (`None` if the slot was empty). Used by the
    /// k-VCF eviction loop, which must read the victim's mark to apply
    /// Equ. 7.
    pub fn swap(&mut self, bucket: usize, slot: usize, entry: MarkedEntry) -> Option<MarkedEntry> {
        debug_assert!(
            entry.fingerprint != 0,
            "fingerprint 0 is the empty sentinel"
        );
        let old = self.decode(self.engine.get_slot(&self.words, bucket, slot));
        let encoded = self.encode(entry);
        self.engine.set_slot(&mut self.words, bucket, slot, encoded);
        if old.is_none() {
            self.occupied += 1;
        }
        old
    }

    /// Removes every stored entry.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.occupied = 0;
    }

    /// Iterates `(bucket, slot, entry)` over occupied slots.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, MarkedEntry)> + '_ {
        (0..self.buckets).flat_map(move |bucket| {
            let loaded = self.read_bucket(bucket);
            (0..self.engine.slots()).filter_map(move |slot| {
                self.decode(self.engine.lane(&loaded, slot))
                    .map(|e| (bucket, slot, e))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> MarkedTable {
        MarkedTable::new(8, 4, 16, 7).unwrap()
    }

    #[test]
    fn mark_bits_match_paper_example() {
        // k = 7 → three extra bits (paper Section III-C).
        assert_eq!(table().mark_bits(), 3);
        assert_eq!(MarkedTable::new(8, 4, 16, 4).unwrap().mark_bits(), 2);
        assert_eq!(MarkedTable::new(8, 4, 16, 2).unwrap().mark_bits(), 1);
        assert_eq!(MarkedTable::new(8, 4, 16, 10).unwrap().mark_bits(), 4);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(MarkedTable::new(0, 4, 16, 4).is_err());
        assert!(MarkedTable::new(8, 0, 16, 4).is_err());
        assert!(MarkedTable::new(8, 4, 1, 4).is_err());
        assert!(MarkedTable::new(8, 4, 16, 1).is_err());
    }

    #[test]
    fn roundtrip_entry() {
        let mut t = table();
        let e = MarkedEntry {
            fingerprint: 0xffff,
            mark: 6,
        };
        let slot = t.try_insert(3, e).unwrap();
        assert_eq!(t.get(3, slot), Some(e));
        assert_eq!(t.occupied(), 1);
    }

    #[test]
    fn exact_match_requires_mark() {
        let mut t = table();
        let e = MarkedEntry {
            fingerprint: 0xab,
            mark: 2,
        };
        t.try_insert(0, e).unwrap();
        assert!(t.contains(0, e));
        assert!(!t.contains(
            0,
            MarkedEntry {
                fingerprint: 0xab,
                mark: 3
            }
        ));
        assert!(!t.remove_one(
            0,
            MarkedEntry {
                fingerprint: 0xab,
                mark: 3
            }
        ));
        assert!(t.remove_one(0, e));
        assert_eq!(t.occupied(), 0);
    }

    #[test]
    fn bucket_fills_and_rejects() {
        let mut t = table();
        for i in 1..=4 {
            t.try_insert(
                1,
                MarkedEntry {
                    fingerprint: i,
                    mark: 0,
                },
            )
            .unwrap();
        }
        assert!(t.bucket_is_full(1));
        assert!(t
            .try_insert(
                1,
                MarkedEntry {
                    fingerprint: 9,
                    mark: 0
                }
            )
            .is_none());
    }

    #[test]
    fn swap_preserves_occupancy_and_returns_victim() {
        let mut t = table();
        let a = MarkedEntry {
            fingerprint: 1,
            mark: 1,
        };
        let b = MarkedEntry {
            fingerprint: 2,
            mark: 4,
        };
        t.try_insert(5, a).unwrap();
        assert_eq!(t.swap(5, 0, b), Some(a));
        assert_eq!(t.occupied(), 1);
        assert_eq!(t.swap(5, 1, a), None);
        assert_eq!(t.occupied(), 2);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_mark_panics() {
        let mut t = table();
        t.try_insert(
            0,
            MarkedEntry {
                fingerprint: 1,
                mark: 8,
            },
        );
    }

    #[test]
    #[should_panic(expected = "empty sentinel")]
    fn zero_fingerprint_panics() {
        let mut t = table();
        t.try_insert(
            0,
            MarkedEntry {
                fingerprint: 0,
                mark: 1,
            },
        );
    }

    #[test]
    fn iter_and_clear() {
        let mut t = table();
        let e = MarkedEntry {
            fingerprint: 77,
            mark: 5,
        };
        t.try_insert(7, e).unwrap();
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(7, 0, e)]);
        t.clear();
        assert_eq!(t.occupied(), 0);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn mark_zero_is_valid_for_occupied_slot() {
        let mut t = table();
        let e = MarkedEntry {
            fingerprint: 5,
            mark: 0,
        };
        t.try_insert(0, e).unwrap();
        assert!(t.contains(0, e));
    }

    #[test]
    fn empty_slot_with_residual_mark_bits_is_still_empty() {
        // Directly exercise the masked empty test: a cleared slot whose
        // mark bits are nonzero must still count as empty. `set_slot`
        // always writes whole lanes so this cannot happen through the
        // public API, but the engine-level invariant is what k-VCF's
        // correctness rests on.
        let t = MarkedTable::new(2, 4, 16, 4).unwrap();
        assert!(!t.bucket_is_full(0));
    }
}
