//! Bit-packed bucket/slot tables — the storage substrate shared by every
//! cuckoo-family filter in this workspace.
//!
//! The paper's filters are all "a table of `m` buckets, each of which
//! contains `b` slots", where each slot stores an `f`-bit fingerprint
//! (Section II-B). For k-VCF each slot additionally carries a *mark* field
//! recording which bitmask produced the fingerprint's current residence
//! (Section III-C). This crate provides:
//!
//! * [`PackedTable`] — a raw bit-packed array of fixed-width slots,
//! * [`BucketEngine`] — the word-level bucket engine: a word-aligned
//!   bucket layout plus SWAR broadcast-compare kernels that probe all
//!   slots of a bucket in O(1) word operations,
//! * [`FingerprintTable`] — bucketed storage of non-zero `f`-bit
//!   fingerprints (used by CF, DCF, VCF, IVCF, DVCF), probed through the
//!   bucket engine,
//! * [`MarkedTable`] — bucketed storage of `(fingerprint, mark)` pairs
//!   (used by k-VCF), likewise engine-probed,
//! * [`AtomicBucketEngine`] / [`AtomicFingerprintTable`] — the lock-free
//!   siblings: the same layout and kernels over `AtomicU64` words, with
//!   CAS-based slot claim/replace for concurrent filters (`ConcurrentVcf`
//!   in `vcf-core`),
//! * the `kernels` module — runtime-dispatched AVX2/NEON variants of the
//!   probe kernels ([`KernelKind`]), selected once at construction with
//!   SWAR as the universal fallback.
//!
//! All tables use value `0` as the empty-slot sentinel, so the filter layer
//! maps real fingerprints into `1..2^f` (the standard trick from the
//! reference cuckoo filter implementation).
//!
//! # Examples
//!
//! ```
//! use vcf_table::FingerprintTable;
//!
//! let mut table = FingerprintTable::new(8, 4, 12)?;
//! assert!(table.try_insert(3, 0x5a5).is_some());
//! assert!(table.contains(3, 0x5a5));
//! assert!(table.remove_one(3, 0x5a5));
//! assert!(!table.contains(3, 0x5a5));
//! # Ok::<(), vcf_traits::BuildError>(())
//! ```

// `deny` rather than `forbid`: the cfg-gated prefetch intrinsic in
// `prefetch.rs` and the SIMD kernels in `kernels/` carry scoped
// `#[allow(unsafe_code)]` items; everything else in the crate still
// rejects `unsafe` at compile time (and `vcf-xtask lint`'s
// `simd-confinement` rule pins `target_feature` code to `kernels/`).
#![deny(unsafe_code)]
// Any future `unsafe fn` must scope each unsafe operation in its own
// block with its own SAFETY comment (also enforced by `vcf-xtask lint`).
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod atomic_bucket;
mod bucket;
mod fingerprint;
mod kernels;
mod marked;
mod packed;
mod prefetch;

pub use atomic_bucket::{AtomicBucketEngine, AtomicFingerprintTable};
pub use bucket::{BucketEngine, BucketWords, MAX_BUCKET_SEGMENTS, MAX_LANE_BITS};
pub use fingerprint::FingerprintTable;
pub use kernels::KernelKind;
pub use marked::{MarkedEntry, MarkedTable};
pub use packed::PackedTable;

/// Maximum supported slots per bucket.
pub const MAX_BUCKET_SLOTS: usize = 8;

/// Maximum supported fingerprint width in bits.
pub const MAX_FINGERPRINT_BITS: u32 = 32;

/// Minimum supported fingerprint width in bits.
pub const MIN_FINGERPRINT_BITS: u32 = 2;
