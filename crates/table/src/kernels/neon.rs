//! NEON bucket kernels: the SWAR broadcast-compare at 2×64-bit width.
//!
//! Same per-word math and constants as the scalar SWAR path, run on
//! `uint64x2_t` pairs with a scalar tail word, so masked results are
//! bit-identical to the fallback. All functions here are
//! `#[target_feature(enable = "neon")]` and unsafe to call; the safe
//! dispatch wrappers (and the SAFETY obligations) live in the parent
//! module.

use super::{WordLayout, MAX_WORDS};
use core::arch::aarch64::{
    uint64x2_t, vaddq_u64, vandq_u64, vdupq_n_u64, veorq_u64, vgetq_lane_u64, vld1q_u64, vorrq_u64,
};

/// Raw (not yet active-masked) per-word match masks for one bucket.
///
/// # Safety
///
/// Requires NEON: callers must have observed
/// `is_aarch64_feature_detected!("neon")` return true on this host.
/// `ptr` must point at `layout.words` readable `u64`s (the bucket's
/// words).
#[allow(unsafe_code)]
#[target_feature(enable = "neon")]
pub(super) unsafe fn match_words(
    layout: &WordLayout,
    ptr: *const u64,
    pattern: u64,
    field: u64,
) -> [u64; MAX_WORDS] {
    let pattern_bcast = pattern.wrapping_mul(layout.ones);
    let field_bcast = field.wrapping_mul(layout.ones);
    let pb: uint64x2_t = vdupq_n_u64(pattern_bcast);
    let fb: uint64x2_t = vdupq_n_u64(field_bcast);
    let lows = vdupq_n_u64(layout.lows);
    let highs = vdupq_n_u64(layout.highs);
    let words = layout.words as usize;
    debug_assert!(words <= MAX_WORDS);
    let mut out = [0u64; MAX_WORDS];
    let mut j = 0usize;
    while j + 2 <= words {
        // SAFETY: reads the two in-bounds words at `ptr + j` per the
        // caller contract (`j + 2 <= layout.words`).
        let x = unsafe { vld1q_u64(ptr.add(j)) };
        let y = vandq_u64(veorq_u64(x, pb), fb);
        let t = vaddq_u64(vandq_u64(y, lows), lows);
        let m = veorq_u64(vandq_u64(vorrq_u64(t, y), highs), highs);
        out[j] = vgetq_lane_u64::<0>(m);
        out[j + 1] = vgetq_lane_u64::<1>(m);
        j += 2;
    }
    if j < words {
        // Odd tail word: the identical math at scalar width.
        // SAFETY: `j < layout.words`, so the word is in bounds.
        let x = unsafe { ptr.add(j).read() };
        let y = (x ^ pattern_bcast) & field_bcast;
        let t = (y & layout.lows).wrapping_add(layout.lows);
        out[j] = ((t | y) & layout.highs) ^ layout.highs;
    }
    out
}
