//! AVX2 bucket kernels: the SWAR broadcast-compare at 4×64-bit width.
//!
//! Both kernels run the exact per-word math of the scalar SWAR path on
//! `__m256i` elements — same constants, same carry-free add — so their
//! masked results are bit-identical to the fallback. All functions here
//! are `#[target_feature(enable = "avx2")]` and unsafe to call; the
//! safe dispatch wrappers (and the SAFETY obligations) live in the
//! parent module.

use super::{WordLayout, MAX_WORDS};
use core::arch::x86_64::{
    __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_castsi256_pd, _mm256_cmpeq_epi64,
    _mm256_cmpgt_epi64, _mm256_i64gather_epi64, _mm256_maskload_epi64, _mm256_movemask_pd,
    _mm256_or_si256, _mm256_set1_epi64x, _mm256_setr_epi64x, _mm256_setzero_si256,
    _mm256_storeu_si256, _mm256_xor_si256,
};

/// The SWAR match step on four words at once: MSB of a lane set iff its
/// `field` bits in `x` equal the broadcast pattern.
#[target_feature(enable = "avx2")]
#[inline]
fn match_step(x: __m256i, pb: __m256i, fb: __m256i, lows: __m256i, highs: __m256i) -> __m256i {
    let y = _mm256_and_si256(_mm256_xor_si256(x, pb), fb);
    let t = _mm256_add_epi64(_mm256_and_si256(y, lows), lows);
    _mm256_xor_si256(_mm256_and_si256(_mm256_or_si256(t, y), highs), highs)
}

/// Raw (not yet active-masked) per-word match masks for one bucket.
///
/// # Safety
///
/// Requires AVX2: callers must have observed
/// `is_x86_feature_detected!("avx2")` return true on this host. `ptr`
/// must point at `layout.words` readable `u64`s (the bucket's words).
#[allow(unsafe_code)]
#[target_feature(enable = "avx2")]
pub(super) unsafe fn match_words(
    layout: &WordLayout,
    ptr: *const u64,
    pattern: u64,
    field: u64,
) -> [u64; MAX_WORDS] {
    // Broadcasting via one scalar multiply sidesteps AVX2's missing
    // 64-bit vector multiply; copies cannot overlap because a lane value
    // fits its width.
    let pb = _mm256_set1_epi64x(pattern.wrapping_mul(layout.ones) as i64);
    let fb = _mm256_set1_epi64x(field.wrapping_mul(layout.ones) as i64);
    let lows = _mm256_set1_epi64x(layout.lows as i64);
    let highs = _mm256_set1_epi64x(layout.highs as i64);
    let words = layout.words as usize;
    debug_assert!(words <= MAX_WORDS);
    let mut out = [0u64; MAX_WORDS];
    let mut j = 0usize;
    while j < words {
        let n = (words - j).min(4);
        // Element k loads iff k < n; masked-out elements read as zero
        // and are architecturally guaranteed not to touch memory.
        let live = _mm256_cmpgt_epi64(_mm256_set1_epi64x(n as i64), _mm256_setr_epi64x(0, 1, 2, 3));
        // SAFETY: the mask restricts the load to the `n` words at
        // `ptr + j .. ptr + j + n`, all in bounds per the caller
        // contract (`j + n <= layout.words`).
        let x = unsafe { _mm256_maskload_epi64(ptr.add(j).cast::<i64>(), live) };
        let m = match_step(x, pb, fb, lows, highs);
        let mut lanes = [0u64; 4];
        // SAFETY: `lanes` is a 32-byte local buffer; the unaligned
        // store writes exactly 32 bytes into it.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), m) };
        out[j..j + n].copy_from_slice(&lanes[..n]);
        j += n;
    }
    out
}

/// Gather-compare over four single-word buckets: bit `k` of the result
/// is set iff bucket word `idx[k]` holds a live lane whose `field` bits
/// equal `patterns[k]`.
///
/// # Safety
///
/// Requires AVX2: callers must have observed
/// `is_x86_feature_detected!("avx2")` return true on this host. Every
/// `idx[k]` must be an in-bounds word index of the table buffer at
/// `ptr` (single-word buckets: bucket id == word index).
#[allow(unsafe_code)]
#[target_feature(enable = "avx2")]
pub(super) unsafe fn gather_match(
    layout: &WordLayout,
    ptr: *const u64,
    idx: [i64; 4],
    patterns: [u64; 4],
    field: u64,
) -> u8 {
    // SAFETY: element k reads `ptr[idx[k]]`, in bounds per the caller
    // contract.
    let x = unsafe {
        _mm256_i64gather_epi64::<8>(
            ptr.cast::<i64>(),
            _mm256_setr_epi64x(idx[0], idx[1], idx[2], idx[3]),
        )
    };
    // Per-element patterns: each candidate bucket may look for a
    // different lane value (k-VCF marks differ per candidate).
    let pb = _mm256_setr_epi64x(
        patterns[0].wrapping_mul(layout.ones) as i64,
        patterns[1].wrapping_mul(layout.ones) as i64,
        patterns[2].wrapping_mul(layout.ones) as i64,
        patterns[3].wrapping_mul(layout.ones) as i64,
    );
    let fb = _mm256_set1_epi64x(field.wrapping_mul(layout.ones) as i64);
    let lows = _mm256_set1_epi64x(layout.lows as i64);
    let highs = _mm256_set1_epi64x(layout.highs as i64);
    let m = _mm256_and_si256(
        match_step(x, pb, fb, lows, highs),
        _mm256_set1_epi64x(layout.active[0] as i64),
    );
    // A zero element means "no live lane matched"; collect the per-
    // element verdicts via the sign bit of the all-ones compare result.
    let missed = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(
        m,
        _mm256_setzero_si256(),
    )));
    !(missed as u8) & 0x0f
}
