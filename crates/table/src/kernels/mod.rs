//! Runtime-dispatched SIMD bucket kernels (AVX2 on x86_64, NEON on
//! aarch64) over the word-level SWAR layout.
//!
//! The SWAR kernels in [`bucket`](crate::bucket) probe one 128-bit
//! segment at a time. On hosts with wider vector units the same
//! broadcast-compare runs over every word of a bucket at once, and — for
//! single-word buckets — over four *candidate buckets* at once via a
//! 64-bit gather. This module holds:
//!
//! * [`KernelKind`], the dispatch decision. It is resolved **once** at
//!   engine construction ([`detect`]) and cached as a plain enum field;
//!   no probe ever re-runs CPU feature detection.
//! * [`WordLayout`], the engine geometry re-derived at *word* (not
//!   segment) granularity: per-word broadcast constants plus an
//!   active-lane MSB mask and base-slot table, so the vector kernels can
//!   treat a bucket as a flat run of `u64`s.
//! * Safe dispatch wrappers around the per-arch `unsafe` kernels. All
//!   `unsafe` in this crate's SIMD path lives inside
//!   `crates/table/src/kernels/` — the `simd-confinement` lint rule
//!   enforces exactly that.
//!
//! # Eligibility (straddle-free layouts)
//!
//! The vector kernels reuse the SWAR compare at 64-bit element width, so
//! they require every lane to sit wholly inside one `u64` at uniform
//! offsets `{0, w, 2w, …}`. That holds iff a segment fits in one word
//! (`words_per_seg == 1`) or the lane width divides 64 (`64 % w == 0`).
//! Straddling geometries (e.g. 8 slots of 14 bits) are detected at
//! construction and pinned to [`KernelKind::Swar`] — dispatch never has
//! to reason about them again.
//!
//! # Kernel contract
//!
//! Every kernel returns results **bit-identical** to the SWAR path: the
//! same per-lane match MSBs, hence the same first-match slot, the same
//! containment verdicts, and the same occupancy counts. The three-way
//! differential harness in `tests/swar_vs_scalar.rs` checks this against
//! a scalar oracle for every kind the host can run.

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;

/// Upper bound on `u64` words per bucket (4 segments × 2 words).
pub(crate) const MAX_WORDS: usize = 8;

/// Which probe-kernel family a [`BucketEngine`](crate::BucketEngine)
/// dispatches to. Resolved once at construction; stored, never
/// re-detected per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// The portable SWAR kernels — the universal fallback, and the
    /// reference semantics every SIMD kernel must reproduce bit for bit.
    Swar,
    /// 256-bit AVX2 kernels (x86_64, runtime-detected).
    Avx2,
    /// 128-bit NEON kernels (aarch64).
    Neon,
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Swar => "swar",
            Self::Avx2 => "avx2",
            Self::Neon => "neon",
        })
    }
}

/// The bucket geometry flattened to word granularity: everything a
/// 64-bit-element vector kernel needs, precomputed at construction.
///
/// `ones`/`lows`/`highs` are the SWAR broadcast constants for the
/// *maximal* lane population of a word; words holding fewer live lanes
/// (a short final segment) are corrected by `active`, the per-word mask
/// of real-lane MSBs. The `lows`-masked add can never carry across lane
/// boundaries, so phantom-lane garbage cannot leak into live lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct WordLayout {
    /// Lane LSB broadcast constant for a fully-populated word.
    pub(crate) ones: u64,
    /// All lane bits below the MSB, for the carry trick.
    pub(crate) lows: u64,
    /// Lane MSB mask for a fully-populated word.
    pub(crate) highs: u64,
    /// Per-word mask of the MSBs of *live* lanes (zero past `words`).
    pub(crate) active: [u64; MAX_WORDS],
    /// Slot index of each word's first lane.
    pub(crate) base_slot: [u8; MAX_WORDS],
    /// Lane width in bits.
    pub(crate) width: u32,
    /// `u64` words per bucket.
    pub(crate) words: u8,
    /// Whether every lane is word-aligned at uniform offsets (see the
    /// module docs); SIMD kinds are only selectable when this holds.
    pub(crate) eligible: bool,
}

impl WordLayout {
    /// Derives the word-level view of a bucket geometry. Caller passes
    /// the segment layout already validated by the engine constructor.
    pub(crate) fn analyze(
        slots: usize,
        width: u32,
        lanes_per_seg: usize,
        segs: usize,
        words_per_seg: usize,
    ) -> Self {
        let words = segs * words_per_seg;
        debug_assert!(words <= MAX_WORDS);
        let eligible = words_per_seg == 1 || 64 % width == 0;
        let mut layout = Self {
            ones: 0,
            lows: 0,
            highs: 0,
            active: [0; MAX_WORDS],
            base_slot: [0; MAX_WORDS],
            width,
            words: words as u8,
            eligible,
        };
        if !eligible {
            return layout;
        }
        let lanes_per_word = lanes_per_seg.min((64 / width) as usize).max(1);
        for i in 0..lanes_per_word {
            layout.ones |= 1u64 << (i as u32 * width);
        }
        layout.highs = layout.ones << (width - 1);
        layout.lows = layout.highs - layout.ones;
        let mut seen = [false; MAX_WORDS];
        for slot in 0..slots {
            let seg = slot / lanes_per_seg;
            let bit = (slot % lanes_per_seg) as u32 * width;
            let word = seg * words_per_seg + (bit / 64) as usize;
            let shift = bit % 64;
            debug_assert!(shift + width <= 64, "straddle in an eligible layout");
            debug_assert!(word < MAX_WORDS);
            layout.active[word] |= 1u64 << (shift + width - 1);
            if !seen[word] {
                seen[word] = true;
                layout.base_slot[word] = slot as u8;
            }
        }
        layout
    }

    /// Whether the per-bucket vector kernels are worth dispatching to:
    /// an eligible layout spanning at least two words (a single-word
    /// bucket is already one SWAR op; only the multi-bucket gather can
    /// beat that).
    #[inline]
    pub(crate) fn wide(&self) -> bool {
        self.eligible && self.words >= 2
    }
}

/// Resolves the kernel for a freshly built engine: the best SIMD kind
/// the host supports, or [`KernelKind::Swar`] when the layout is
/// ineligible, the CPU lacks the feature, or `VCF_FORCE_SWAR` is set
/// (the forced-fallback CI leg — `-C target-feature=-avx2` changes
/// codegen but not runtime CPUID, so the override must be explicit).
pub(crate) fn detect(layout: &WordLayout) -> KernelKind {
    if !layout.eligible || force_swar() {
        return KernelKind::Swar;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return KernelKind::Avx2;
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        return KernelKind::Neon;
    }
    KernelKind::Swar
}

/// Clamps an explicitly requested kind (differential tests, benches) to
/// what the host CPU and the layout actually support.
pub(crate) fn clamp(requested: KernelKind, layout: &WordLayout) -> KernelKind {
    if !layout.eligible {
        return KernelKind::Swar;
    }
    match requested {
        KernelKind::Swar => KernelKind::Swar,
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 if std::arch::is_x86_feature_detected!("avx2") => KernelKind::Avx2,
        #[cfg(target_arch = "aarch64")]
        KernelKind::Neon if std::arch::is_aarch64_feature_detected!("neon") => KernelKind::Neon,
        _ => KernelKind::Swar,
    }
}

/// Whether `VCF_FORCE_SWAR` pins construction-time dispatch to SWAR.
fn force_swar() -> bool {
    std::env::var_os("VCF_FORCE_SWAR").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Per-word live-lane match masks for one bucket: word `j` holds the
/// MSB of every live lane whose `field` bits equal `pattern`, dispatch
/// target for the engine's whole-bucket probes.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[inline]
pub(crate) fn match_words(
    layout: &WordLayout,
    words: &[u64],
    base: usize,
    pattern: u64,
    field: u64,
) -> [u64; MAX_WORDS] {
    debug_assert!(base + layout.words as usize <= words.len());
    // SAFETY: the engine only dispatches here when `KernelKind::Avx2`
    // was selected, which requires `is_x86_feature_detected!("avx2")`
    // to have returned true at construction; the pointer covers
    // `layout.words` in-bounds words per the assert above.
    let raw = unsafe { avx2::match_words(layout, words.as_ptr().add(base), pattern, field) };
    masked(layout, raw)
}

/// NEON variant of [`match_words`].
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
#[inline]
pub(crate) fn match_words(
    layout: &WordLayout,
    words: &[u64],
    base: usize,
    pattern: u64,
    field: u64,
) -> [u64; MAX_WORDS] {
    debug_assert!(base + layout.words as usize <= words.len());
    // SAFETY: the engine only dispatches here when `KernelKind::Neon`
    // was selected, which requires `is_aarch64_feature_detected!("neon")`
    // to have returned true at construction; the pointer covers
    // `layout.words` in-bounds words per the assert above.
    let raw = unsafe { neon::match_words(layout, words.as_ptr().add(base), pattern, field) };
    masked(layout, raw)
}

/// Stub for architectures with no SIMD kernels: [`detect`] and
/// [`clamp`] never select a SIMD kind there, so this is unreachable.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub(crate) fn match_words(
    layout: &WordLayout,
    words: &[u64],
    base: usize,
    pattern: u64,
    field: u64,
) -> [u64; MAX_WORDS] {
    debug_assert!(false, "no SIMD kernel on this architecture");
    let _ = (layout, words, base, pattern, field);
    [0; MAX_WORDS]
}

/// Restricts raw per-word match masks to live lanes.
#[inline]
fn masked(layout: &WordLayout, mut m: [u64; MAX_WORDS]) -> [u64; MAX_WORDS] {
    for (w, active) in m.iter_mut().zip(&layout.active) {
        *w &= active;
    }
    m
}

/// First matching slot across the per-word masks, in slot order —
/// identical to the SWAR `find_field` result.
#[inline]
pub(crate) fn first_match(layout: &WordLayout, m: &[u64; MAX_WORDS]) -> Option<usize> {
    debug_assert!(layout.words as usize <= MAX_WORDS);
    for (j, &w) in m.iter().enumerate().take(layout.words as usize) {
        if w != 0 {
            let lane = (w.trailing_zeros() / layout.width) as usize;
            return Some(layout.base_slot[j] as usize + lane);
        }
    }
    None
}

/// Whether any lane matched.
#[inline]
pub(crate) fn any_match(m: &[u64; MAX_WORDS]) -> bool {
    m.iter().any(|&w| w != 0)
}

/// Number of matching lanes.
#[inline]
pub(crate) fn match_count(m: &[u64; MAX_WORDS]) -> usize {
    m.iter().map(|w| w.count_ones() as usize).sum()
}

/// Multi-bucket gather-compare for single-word buckets: bit `i` of the
/// result is set iff `buckets[i]` holds a live lane whose `field` bits
/// equal `patterns[i]`. Feeds the `contains_batch` candidate probes —
/// all (up to 8) candidate buckets of an item are tested in one or two
/// gathers instead of a serial early-exit loop.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) fn gather_match(
    layout: &WordLayout,
    words: &[u64],
    buckets: &[usize],
    patterns: &[u64],
    field: u64,
) -> u8 {
    debug_assert!(layout.words == 1, "gather path is single-word only");
    debug_assert_eq!(buckets.len(), patterns.len());
    debug_assert!(buckets.len() <= 8);
    debug_assert!(buckets.iter().all(|&b| b < words.len()));
    let mut out = 0u8;
    let mut i = 0usize;
    while i < buckets.len() {
        let n = (buckets.len() - i).min(4);
        // Pad short tails with the first index: in bounds, masked out.
        let mut idx = [buckets[i] as i64; 4];
        let mut pats = [patterns[i]; 4];
        for j in 0..n {
            idx[j] = buckets[i + j] as i64;
            pats[j] = patterns[i + j];
        }
        // SAFETY: the engine only dispatches here under
        // `KernelKind::Avx2` (runtime `is_x86_feature_detected!("avx2")`
        // at construction), and every gathered index is a live bucket
        // word per the asserts above (single-word buckets make the
        // bucket id its own word index).
        let m = unsafe { avx2::gather_match(layout, words.as_ptr(), idx, pats, field) };
        out |= (m & ((1u8 << n) - 1)) << i;
        i += n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eligibility_matches_rule() {
        // b=4, f=14: one word per segment — eligible.
        assert!(WordLayout::analyze(4, 14, 4, 1, 1).eligible);
        // b=8, f=16: two words per segment but 64 % 16 == 0 — eligible.
        assert!(WordLayout::analyze(8, 16, 8, 1, 2).eligible);
        // b=8, f=14: lanes straddle the word boundary — ineligible.
        assert!(!WordLayout::analyze(8, 14, 8, 1, 2).eligible);
    }

    #[test]
    fn layout_base_slots_and_active_masks() {
        // 8 slots of 16 bits: word 0 holds slots 0..4, word 1 slots 4..8.
        let lay = WordLayout::analyze(8, 16, 8, 1, 2);
        assert_eq!(lay.words, 2);
        assert_eq!(lay.base_slot[0], 0);
        assert_eq!(lay.base_slot[1], 4);
        assert_eq!(lay.active[0], lay.highs);
        assert_eq!(lay.active[1], lay.highs);
        assert!(lay.wide());
        // 3 slots of 20 bits: one word, three live lanes.
        let lay = WordLayout::analyze(3, 20, 3, 1, 1);
        assert_eq!(lay.words, 1);
        assert_eq!(lay.active[0].count_ones(), 3);
        assert!(!lay.wide(), "single-word buckets stay on SWAR probes");
    }

    #[test]
    fn force_swar_env_override() {
        // Not set in the test environment by default: detection is free
        // to pick a SIMD kind on an eligible layout.
        let lay = WordLayout::analyze(4, 14, 4, 1, 1);
        let kind = detect(&lay);
        if std::env::var_os("VCF_FORCE_SWAR").is_some_and(|v| !v.is_empty() && v != "0") {
            assert_eq!(kind, KernelKind::Swar);
        }
        // Ineligible layouts always pin to SWAR.
        let straddle = WordLayout::analyze(8, 14, 8, 1, 2);
        assert_eq!(detect(&straddle), KernelKind::Swar);
        assert_eq!(clamp(KernelKind::Avx2, &straddle), KernelKind::Swar);
        assert_eq!(clamp(KernelKind::Neon, &straddle), KernelKind::Swar);
    }
}
