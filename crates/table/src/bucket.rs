//! Word-level bucket engine: aligned bucket layout + SWAR probe kernels.
//!
//! Every cuckoo-family filter in this workspace probes buckets of `b`
//! fixed-width lanes. The engine lays buckets out so that each bucket
//! starts on a 64-bit word boundary and is grouped into *segments* of
//! whole lanes, where a segment spans at most two `u64` words (read as one
//! `u128`). A probe then tests all lanes of a segment in O(1) word
//! operations with a SWAR (SIMD-within-a-register) broadcast-compare
//! instead of a per-slot bit-extraction loop.
//!
//! # The compare trick
//!
//! For lane width `w` and `L` active lanes, precompute
//!
//! ```text
//! ones  = Σ_{i<L} 1 << (i·w)        (lane LSBs)
//! highs = ones << (w-1)             (lane MSBs)
//! lows  = highs - ones              (all lane bits below the MSB)
//! ```
//!
//! To find lanes of `x` equal to `p`: broadcast with `P = ones · p`, let
//! `y = (x ^ P) & (ones · field)`, then
//!
//! ```text
//! t          = (y & lows) + lows     // per-lane carry into the MSB
//! match_mask = ((t | y) & highs) ^ highs
//! ```
//!
//! `match_mask` has the MSB of lane `i` set **iff** lane `i` of `y` is
//! entirely zero. Unlike the classic `(x - ones) & ~x & highs` haszero
//! trick, the `lows`-masked addition cannot carry across lanes, so the
//! result is exact per lane — `count_ones` gives the match count and
//! `trailing_zeros / w` the first matching slot. `field` selects which
//! lane bits participate: the full lane for fingerprint equality, or just
//! the fingerprint field of a `(fingerprint, mark)` lane for the
//! empty-slot test.
//!
//! Padding lanes (beyond the bucket's `b` slots) and padding bits are
//! kept zero by [`BucketEngine::set_slot`]; the kernels mask their result
//! to active lanes so padding can never produce a phantom match.

use crate::kernels::{self, KernelKind, WordLayout};
use crate::prefetch::prefetch_read;
use crate::MAX_BUCKET_SLOTS;
use vcf_traits::BuildError;

/// Upper bound on segments per bucket: `slots ≤ 8` lanes of width
/// `≤ 63` bits, at `≥ 2` lanes per 128-bit segment, need at most 4.
pub const MAX_BUCKET_SEGMENTS: usize = 4;

/// Widest supported lane in bits.
pub const MAX_LANE_BITS: u32 = 63;

/// One bucket's lanes, loaded as up to [`MAX_BUCKET_SEGMENTS`] aligned
/// 128-bit segments. Produced by [`BucketEngine::read_bucket`]; all probe
/// kernels run on this value without touching memory again.
#[derive(Debug, Clone, Copy)]
pub struct BucketWords {
    segs: [u128; MAX_BUCKET_SEGMENTS],
}

/// Per-segment SWAR constants for a fixed `(lanes, width)` shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SegKernel {
    ones: u128,
    lows: u128,
    highs: u128,
}

impl SegKernel {
    fn new(lanes: usize, width: u32) -> Self {
        let mut ones = 0u128;
        for lane in 0..lanes {
            ones |= 1u128 << (lane as u32 * width);
        }
        let highs = ones << (width - 1);
        Self {
            ones,
            lows: highs - ones,
            highs,
        }
    }

    /// MSB-per-lane mask of lanes whose `field` bits equal `pattern`.
    #[inline]
    fn match_mask(&self, x: u128, pattern: u64, field: u64) -> u128 {
        let y = (x ^ self.ones.wrapping_mul(u128::from(pattern)))
            & self.ones.wrapping_mul(u128::from(field));
        let t = (y & self.lows).wrapping_add(self.lows);
        ((t | y) & self.highs) ^ self.highs
    }
}

/// Geometry + kernel constants for probing one table's buckets.
///
/// The engine owns no storage; tables hand it their `&[u64]` word buffer.
/// All per-slot coordinates are `(bucket, slot)` with `slot < slots()`.
///
/// # Examples
///
/// ```
/// use vcf_table::BucketEngine;
///
/// let engine = BucketEngine::new(4, 12)?;
/// let mut words = vec![0u64; engine.storage_words(8)];
/// engine.set_slot(&mut words, 3, 2, 0xabc);
/// let bucket = engine.read_bucket(&words, 3);
/// assert_eq!(engine.find_in_bucket(&bucket, 0xabc), Some(2));
/// assert_eq!(engine.first_empty_slot(&bucket), Some(0));
/// assert_eq!(engine.bucket_len(&bucket), 1);
/// # Ok::<(), vcf_traits::BuildError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BucketEngine {
    width: u32,
    slots: usize,
    lane_mask: u64,
    /// A slot is empty iff `lane & empty_field == 0`.
    empty_field: u64,
    lanes_per_seg: usize,
    segs: usize,
    words_per_seg: usize,
    words_per_bucket: usize,
    /// Kernel for segments `0..segs-1` (all hold `lanes_per_seg` lanes).
    full: SegKernel,
    /// Kernel for the final segment (may hold fewer lanes).
    last: SegKernel,
    /// Word-granularity view of the geometry for the SIMD kernels.
    layout: WordLayout,
    /// Probe-kernel dispatch, resolved once at construction.
    kind: KernelKind,
}

impl BucketEngine {
    /// Engine for buckets of `slots` lanes of `width` bits, where the
    /// whole lane must be zero for a slot to count as empty.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidConfig`] when `slots` is outside
    /// `1..=8` or `width` outside `1..=63`.
    pub fn new(slots: usize, width: u32) -> Result<Self, BuildError> {
        // Invalid widths get a placeholder field so the shared validation
        // in `with_empty_field` reports the width error.
        let lane_mask = if width == 0 || width > MAX_LANE_BITS {
            1
        } else {
            (1u64 << width) - 1
        };
        Self::with_empty_field(slots, width, lane_mask)
    }

    /// Engine whose empty-slot test only inspects `lane & empty_field`
    /// (e.g. just the fingerprint field of a `(fingerprint, mark)` lane).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidConfig`] for invalid geometry or an
    /// `empty_field` that is zero or wider than the lane.
    pub fn with_empty_field(
        slots: usize,
        width: u32,
        empty_field: u64,
    ) -> Result<Self, BuildError> {
        if slots == 0 || slots > MAX_BUCKET_SLOTS {
            return Err(BuildError::InvalidConfig {
                reason: format!("bucket slots must be 1..={MAX_BUCKET_SLOTS}, got {slots}"),
            });
        }
        if width == 0 || width > MAX_LANE_BITS {
            return Err(BuildError::InvalidConfig {
                reason: format!("lane width must be 1..={MAX_LANE_BITS} bits, got {width}"),
            });
        }
        let lane_mask = (1u64 << width) - 1;
        if empty_field == 0 || empty_field > lane_mask {
            return Err(BuildError::InvalidConfig {
                reason: format!("empty field {empty_field:#x} must be non-zero and fit the lane"),
            });
        }
        let lanes_per_seg = slots.min((128 / width) as usize);
        let segs = slots.div_ceil(lanes_per_seg);
        debug_assert!(segs <= MAX_BUCKET_SEGMENTS);
        let words_per_seg = (lanes_per_seg * width as usize).div_ceil(64);
        let last_lanes = slots - (segs - 1) * lanes_per_seg;
        let layout = WordLayout::analyze(slots, width, lanes_per_seg, segs, words_per_seg);
        let kind = kernels::detect(&layout);
        Ok(Self {
            width,
            slots,
            lane_mask,
            empty_field,
            lanes_per_seg,
            segs,
            words_per_seg,
            words_per_bucket: segs * words_per_seg,
            full: SegKernel::new(lanes_per_seg, width),
            last: SegKernel::new(last_lanes, width),
            layout,
            kind,
        })
    }

    /// The probe-kernel variant this engine dispatches to, resolved once
    /// at construction (no per-call feature detection).
    #[inline]
    pub fn kernel_kind(&self) -> KernelKind {
        self.kind
    }

    /// Returns this engine pinned to `kind`, clamped to what the host
    /// CPU and the bucket geometry actually support (a straddling
    /// layout or a missing CPU feature falls back to
    /// [`KernelKind::Swar`]). The differential harness and benches use
    /// this to compare kernel variants on identical geometry.
    #[must_use]
    pub fn with_kernel(mut self, kind: KernelKind) -> Self {
        self.kind = kernels::clamp(kind, &self.layout);
        self
    }

    /// Whether the per-bucket vector kernels are dispatched: a SIMD kind
    /// on a straddle-free layout spanning ≥ 2 words (single-word buckets
    /// are already one SWAR op).
    #[inline]
    fn use_simd(&self) -> bool {
        self.kind != KernelKind::Swar && self.layout.wide()
    }

    /// Lane width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Slots per bucket.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// All-ones mask of one lane.
    #[inline]
    pub fn lane_mask(&self) -> u64 {
        self.lane_mask
    }

    /// `u64` words each bucket occupies (aligned stride).
    #[inline]
    pub fn words_per_bucket(&self) -> usize {
        self.words_per_bucket
    }

    /// Words a table of `buckets` buckets must allocate.
    ///
    /// # Panics
    ///
    /// Panics on arithmetic overflow (a table that large cannot be
    /// allocated anyway).
    pub fn storage_words(&self, buckets: usize) -> usize {
        buckets
            .checked_mul(self.words_per_bucket)
            // lint: allow(panic-reachability) — construction-time sizing
            // (reachable from hot paths only through segment growth's
            // table allocation); overflow is documented under `# Panics`
            .expect("bucket storage size overflows usize")
    }

    #[inline]
    fn kernel(&self, seg: usize) -> &SegKernel {
        if seg + 1 == self.segs {
            &self.last
        } else {
            &self.full
        }
    }

    /// Issues a software prefetch for `bucket`'s storage words without
    /// reading them.
    ///
    /// A bucket spans [`words_per_bucket`](Self::words_per_bucket)
    /// consecutive `u64`s (≤ 64 bytes at the widest supported geometry).
    /// Buckets start on word — not cache-line — boundaries, so a wide
    /// bucket can straddle two lines; hinting the first and last word
    /// covers both. Unlike `touch_bucket` on the tables, this performs no
    /// load at all: it never stalls the pipeline, which is what the
    /// batched insert path wants when it warms a window of candidate
    /// buckets ahead of placing fingerprints.
    #[inline]
    pub fn prefetch_bucket(&self, words: &[u64], bucket: usize) {
        let base = bucket * self.words_per_bucket;
        debug_assert!(base < words.len(), "bucket {bucket} out of range");
        prefetch_read(&words[base]);
        if self.words_per_bucket > 1 {
            prefetch_read(&words[base + self.words_per_bucket - 1]);
        }
    }

    /// Loads all of `bucket`'s segments — one or two `u64` reads each.
    #[inline]
    pub fn read_bucket(&self, words: &[u64], bucket: usize) -> BucketWords {
        let base = bucket * self.words_per_bucket;
        debug_assert!(
            base + self.words_per_bucket <= words.len(),
            "bucket {bucket} out of range"
        );
        let mut segs = [0u128; MAX_BUCKET_SEGMENTS];
        for (seg, out) in segs.iter_mut().enumerate().take(self.segs) {
            let w = base + seg * self.words_per_seg;
            *out = if self.words_per_seg == 2 {
                u128::from(words[w]) | (u128::from(words[w + 1]) << 64)
            } else {
                u128::from(words[w])
            };
        }
        BucketWords { segs }
    }

    /// First slot whose full lane equals `pattern` (`pattern` may be the
    /// zero sentinel), or `None`.
    #[inline]
    pub fn find_in_bucket(&self, bucket: &BucketWords, pattern: u64) -> Option<usize> {
        self.find_field(bucket, pattern, self.lane_mask)
    }

    /// Whether any slot's full lane equals `pattern`.
    #[inline]
    pub fn contains_in_bucket(&self, bucket: &BucketWords, pattern: u64) -> bool {
        debug_assert!(pattern <= self.lane_mask);
        for seg in 0..self.segs {
            if self
                .kernel(seg)
                .match_mask(bucket.segs[seg], pattern, self.lane_mask)
                != 0
            {
                return true;
            }
        }
        false
    }

    /// First empty slot (lane zero under the engine's empty field), or
    /// `None` when the bucket is full.
    #[inline]
    pub fn first_empty_slot(&self, bucket: &BucketWords) -> Option<usize> {
        self.find_field(bucket, 0, self.empty_field)
    }

    /// Number of occupied slots.
    #[inline]
    pub fn bucket_len(&self, bucket: &BucketWords) -> usize {
        debug_assert!(self.segs <= MAX_BUCKET_SEGMENTS);
        let mut empty = 0u32;
        for seg in 0..self.segs {
            empty += self
                .kernel(seg)
                .match_mask(bucket.segs[seg], 0, self.empty_field)
                .count_ones();
        }
        self.slots - empty as usize
    }

    /// First slot where `lane & field == pattern & field`, or `None`.
    #[inline]
    pub fn find_field(&self, bucket: &BucketWords, pattern: u64, field: u64) -> Option<usize> {
        debug_assert!(pattern <= self.lane_mask && field <= self.lane_mask);
        for seg in 0..self.segs {
            let mask = self
                .kernel(seg)
                .match_mask(bucket.segs[seg], pattern, field);
            if mask != 0 {
                let lane = (mask.trailing_zeros() / self.width) as usize;
                return Some(seg * self.lanes_per_seg + lane);
            }
        }
        None
    }

    /// First slot of `bucket` whose full lane equals `pattern`, probing
    /// straight from the table's word buffer through the dispatched
    /// kernel ([`kernel_kind`](Self::kernel_kind)). Bit-identical to
    /// [`find_in_bucket`](Self::find_in_bucket) on a
    /// [`read_bucket`](Self::read_bucket) load.
    #[inline]
    pub fn probe_find(&self, words: &[u64], bucket: usize, pattern: u64) -> Option<usize> {
        self.probe_find_field(words, bucket, pattern, self.lane_mask)
    }

    /// Whether any slot of `bucket` equals `pattern`, through the
    /// dispatched kernel.
    #[inline]
    pub fn probe_contains(&self, words: &[u64], bucket: usize, pattern: u64) -> bool {
        if self.use_simd() {
            let base = bucket * self.words_per_bucket;
            let m = kernels::match_words(&self.layout, words, base, pattern, self.lane_mask);
            return kernels::any_match(&m);
        }
        self.contains_in_bucket(&self.read_bucket(words, bucket), pattern)
    }

    /// First empty slot of `bucket`, through the dispatched kernel.
    #[inline]
    pub fn probe_first_empty(&self, words: &[u64], bucket: usize) -> Option<usize> {
        self.probe_find_field(words, bucket, 0, self.empty_field)
    }

    /// Occupied-slot count of `bucket`, through the dispatched kernel.
    #[inline]
    pub fn probe_len(&self, words: &[u64], bucket: usize) -> usize {
        if self.use_simd() {
            let base = bucket * self.words_per_bucket;
            let m = kernels::match_words(&self.layout, words, base, 0, self.empty_field);
            return self.slots - kernels::match_count(&m);
        }
        self.bucket_len(&self.read_bucket(words, bucket))
    }

    /// First slot of `bucket` where `lane & field == pattern & field`,
    /// through the dispatched kernel.
    #[inline]
    pub fn probe_find_field(
        &self,
        words: &[u64],
        bucket: usize,
        pattern: u64,
        field: u64,
    ) -> Option<usize> {
        if self.use_simd() {
            let base = bucket * self.words_per_bucket;
            let m = kernels::match_words(&self.layout, words, base, pattern, field);
            return kernels::first_match(&self.layout, &m);
        }
        self.find_field(&self.read_bucket(words, bucket), pattern, field)
    }

    /// Whether any of `buckets` holds a full lane equal to the
    /// corresponding entry of `patterns` — the batched-lookup candidate
    /// probe. Under AVX2 with single-word buckets all (up to 8)
    /// candidates are tested with one or two 64-bit gathers; otherwise
    /// the buckets are probed in order with an early exit.
    pub fn probe_contains_any(&self, words: &[u64], buckets: &[usize], patterns: &[u64]) -> bool {
        debug_assert_eq!(buckets.len(), patterns.len());
        #[cfg(target_arch = "x86_64")]
        if self.kind == KernelKind::Avx2 && self.words_per_bucket == 1 && buckets.len() <= 8 {
            return kernels::gather_match(&self.layout, words, buckets, patterns, self.lane_mask)
                != 0;
        }
        buckets
            .iter()
            .zip(patterns)
            .any(|(&b, &p)| self.probe_contains(words, b, p))
    }

    /// The `(word, shift)` coordinates of `slot` within its bucket: the
    /// lane occupies bits `shift..shift + width` of the `word`-th `u64` of
    /// the bucket. Returns `None` when the lane straddles two words — the
    /// geometry the atomic engine rejects, because a straddling lane
    /// cannot be updated with a single-word compare-and-swap.
    pub fn slot_word_shift(&self, slot: usize) -> Option<(usize, u32)> {
        debug_assert!(slot < self.slots, "slot {slot} out of range");
        let seg = slot / self.lanes_per_seg;
        let seg_shift = (slot % self.lanes_per_seg) as u32 * self.width;
        let word_in_seg = (seg_shift / 64) as usize;
        let shift = seg_shift % 64;
        if shift + self.width > 64 {
            return None;
        }
        Some((seg * self.words_per_seg + word_in_seg, shift))
    }

    /// Extracts one lane from an already-loaded bucket.
    #[inline]
    pub fn lane(&self, bucket: &BucketWords, slot: usize) -> u64 {
        debug_assert!(slot < self.slots, "slot {slot} out of range");
        let seg = slot / self.lanes_per_seg;
        let shift = (slot % self.lanes_per_seg) as u32 * self.width;
        ((bucket.segs[seg] >> shift) as u64) & self.lane_mask
    }

    /// Reads one lane straight from the word buffer.
    #[inline]
    pub fn get_slot(&self, words: &[u64], bucket: usize, slot: usize) -> u64 {
        debug_assert!(slot < self.slots, "slot {slot} out of range");
        let seg = slot / self.lanes_per_seg;
        let shift = (slot % self.lanes_per_seg) as u32 * self.width;
        let base = bucket * self.words_per_bucket + seg * self.words_per_seg;
        // A lane with `shift + width <= 64` lives entirely in the low word;
        // anything else (straddling or high-word) needs the 128-bit view.
        let value = if shift + self.width > 64 {
            let seg128 = u128::from(words[base]) | (u128::from(words[base + 1]) << 64);
            (seg128 >> shift) as u64
        } else {
            words[base] >> shift
        };
        value & self.lane_mask
    }

    /// Writes one lane, preserving the zero-padding invariant.
    #[inline]
    pub fn set_slot(&self, words: &mut [u64], bucket: usize, slot: usize, value: u64) {
        debug_assert!(slot < self.slots, "slot {slot} out of range");
        debug_assert!(value <= self.lane_mask, "value {value:#x} exceeds lane");
        let seg = slot / self.lanes_per_seg;
        let shift = (slot % self.lanes_per_seg) as u32 * self.width;
        let base = bucket * self.words_per_bucket + seg * self.words_per_seg;
        if self.words_per_seg == 2 && shift + self.width > 64 && shift < 64 {
            // Lane straddles the segment's two words.
            let mut seg128 = u128::from(words[base]) | (u128::from(words[base + 1]) << 64);
            seg128 =
                (seg128 & !(u128::from(self.lane_mask) << shift)) | (u128::from(value) << shift);
            words[base] = seg128 as u64;
            words[base + 1] = (seg128 >> 64) as u64;
        } else if shift >= 64 {
            let shift = shift - 64;
            words[base + 1] = (words[base + 1] & !(self.lane_mask << shift)) | (value << shift);
        } else {
            words[base] = (words[base] & !(self.lane_mask << shift)) | (value << shift);
        }
    }

    /// Stores an edited [`read_bucket`](Self::read_bucket) image back
    /// into the word buffer.
    #[inline]
    fn write_bucket(&self, words: &mut [u64], bucket: usize, image: &BucketWords) {
        let base = bucket * self.words_per_bucket;
        debug_assert!(base + self.words_per_bucket <= words.len());
        for seg in 0..self.segs {
            let w = base + seg * self.words_per_seg;
            words[w] = image.segs[seg] as u64;
            if self.words_per_seg == 2 {
                words[w + 1] = (image.segs[seg] >> 64) as u64;
            }
        }
    }

    /// First-fit fills `bucket` with the leading `values`, stopping when
    /// the bucket is full or `values` runs out: the bucket words are
    /// loaded once, every placement edits the in-register image, and the
    /// result is stored once. This is the bulk build's run primitive —
    /// a run of `r` same-bucket items pays one load/store instead of
    /// `r` read-modify-write round trips. Returns how many of `values`
    /// were placed (always a prefix).
    pub fn fill_bucket(&self, words: &mut [u64], bucket: usize, values: &[u64]) -> usize {
        let mut image = self.read_bucket(words, bucket);
        let mut placed = 0;
        'segs: for seg in 0..self.segs {
            // One empty-lane scan per segment; each placement clears its
            // lane from the mask instead of re-probing the bucket.
            let mut empty = self
                .kernel(seg)
                .match_mask(image.segs[seg], 0, self.empty_field);
            while empty != 0 {
                if placed == values.len() {
                    break 'segs;
                }
                let value = values[placed];
                debug_assert!(value <= self.lane_mask, "value {value:#x} exceeds lane");
                debug_assert!(value != 0, "cannot fill with the empty sentinel");
                let shift = empty.trailing_zeros() / self.width * self.width;
                let lane = u128::from(self.lane_mask) << shift;
                image.segs[seg] = (image.segs[seg] & !lane) | (u128::from(value) << shift);
                empty &= !lane;
                placed += 1;
            }
        }
        if placed > 0 {
            self.write_bucket(words, bucket, &image);
        }
        placed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar oracle: the per-slot loop the kernels replace.
    fn scalar_find(engine: &BucketEngine, bucket: &BucketWords, pattern: u64) -> Option<usize> {
        (0..engine.slots()).find(|&slot| engine.lane(bucket, slot) == pattern)
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(BucketEngine::new(0, 12).is_err());
        assert!(BucketEngine::new(9, 12).is_err());
        assert!(BucketEngine::new(4, 0).is_err());
        assert!(BucketEngine::new(4, 64).is_err());
        assert!(BucketEngine::with_empty_field(4, 12, 0).is_err());
        assert!(BucketEngine::with_empty_field(4, 12, 1 << 12).is_err());
    }

    #[test]
    fn layout_is_word_aligned_and_two_words_per_segment() {
        for slots in 1..=8usize {
            for width in 1..=63u32 {
                let e = BucketEngine::new(slots, width).unwrap();
                assert!(e.words_per_bucket() >= 1);
                // Segments span at most two words.
                assert!(e.words_per_seg <= 2, "slots {slots} width {width}");
                // Every lane fits inside its segment.
                assert!(e.lanes_per_seg as u32 * width <= 128);
                // All slots are addressable.
                assert!(e.segs * e.lanes_per_seg >= slots);
                assert!(e.segs <= MAX_BUCKET_SEGMENTS);
            }
        }
    }

    #[test]
    fn slot_word_shift_agrees_with_get_slot() {
        for slots in 1..=8usize {
            for width in 1..=63u32 {
                let e = BucketEngine::new(slots, width).unwrap();
                let mut words = vec![0u64; e.storage_words(3)];
                for slot in 0..slots {
                    let v = (0xa5a5_5a5a_u64.wrapping_mul(slot as u64 + 1)) & e.lane_mask();
                    e.set_slot(&mut words, 2, slot, v);
                    if let Some((word, shift)) = e.slot_word_shift(slot) {
                        assert!(shift + width <= 64, "b={slots} w={width}");
                        let raw = words[2 * e.words_per_bucket() + word];
                        assert_eq!(
                            (raw >> shift) & e.lane_mask(),
                            v,
                            "b={slots} w={width} slot={slot}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn classic_config_is_one_word_per_bucket() {
        // f = 12, b = 4: 48 bits, word-aligned in a single u64.
        let e = BucketEngine::new(4, 12).unwrap();
        assert_eq!(e.words_per_bucket(), 1);
        // f = 16, b = 8: exactly two words, one segment.
        let e = BucketEngine::new(8, 16).unwrap();
        assert_eq!(e.words_per_bucket(), 2);
    }

    #[test]
    fn slot_roundtrip_all_widths() {
        for width in 1..=63u32 {
            let mask = (1u64 << width) - 1;
            let e = BucketEngine::new(8, width).unwrap();
            let mut words = vec![0u64; e.storage_words(5)];
            for bucket in 0..5 {
                for slot in 0..8 {
                    let v = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul((bucket * 8 + slot) as u64 + 1)
                        & mask;
                    e.set_slot(&mut words, bucket, slot, v);
                }
            }
            for bucket in 0..5 {
                let bw = e.read_bucket(&words, bucket);
                for slot in 0..8 {
                    let v = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul((bucket * 8 + slot) as u64 + 1)
                        & mask;
                    assert_eq!(e.get_slot(&words, bucket, slot), v, "w={width}");
                    assert_eq!(e.lane(&bw, slot), v, "w={width}");
                }
            }
        }
    }

    #[test]
    fn kernels_agree_with_scalar_loop() {
        let mut state = 0xdead_beefu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 16
        };
        for width in 1..=63u32 {
            let mask = (1u64 << width) - 1;
            for slots in 1..=8usize {
                let e = BucketEngine::new(slots, width).unwrap();
                let mut words = vec![0u64; e.storage_words(1)];
                for slot in 0..slots {
                    // Mix zeros (empty sentinel) and duplicates in.
                    let v = match next() % 4 {
                        0 => 0,
                        1 => 1 & mask,
                        _ => next() & mask,
                    };
                    e.set_slot(&mut words, 0, slot, v);
                }
                let bw = e.read_bucket(&words, 0);
                for probe in [0, 1 & mask, next() & mask, mask] {
                    let expected = scalar_find(&e, &bw, probe);
                    assert_eq!(
                        e.find_in_bucket(&bw, probe),
                        expected,
                        "w={width} b={slots}"
                    );
                    assert_eq!(
                        e.contains_in_bucket(&bw, probe),
                        expected.is_some(),
                        "w={width} b={slots}"
                    );
                }
                assert_eq!(e.first_empty_slot(&bw), scalar_find(&e, &bw, 0));
                let scalar_len = (0..slots).filter(|&s| e.lane(&bw, s) != 0).count();
                assert_eq!(e.bucket_len(&bw), scalar_len, "w={width} b={slots}");
            }
        }
    }

    #[test]
    fn padding_never_matches() {
        // 3 slots of 20 bits: one 64-bit word with 4 padding bits, plus
        // room for phantom lanes if masks were sloppy.
        let e = BucketEngine::new(3, 20).unwrap();
        let mut words = vec![0u64; e.storage_words(1)];
        e.set_slot(&mut words, 0, 0, 5);
        e.set_slot(&mut words, 0, 1, 6);
        e.set_slot(&mut words, 0, 2, 7);
        let bw = e.read_bucket(&words, 0);
        assert_eq!(e.first_empty_slot(&bw), None, "padding must not look empty");
        assert_eq!(e.bucket_len(&bw), 3);
        assert_eq!(e.find_in_bucket(&bw, 0), None);
    }

    #[test]
    fn masked_empty_field_ignores_mark_bits() {
        // 16-bit fingerprint + 3 mark bits per lane.
        let e = BucketEngine::with_empty_field(4, 19, 0xffff).unwrap();
        let mut words = vec![0u64; e.storage_words(1)];
        // Mark bits set but fingerprint zero: still an empty slot.
        e.set_slot(&mut words, 0, 0, 0b101 << 16);
        e.set_slot(&mut words, 0, 1, (0b001 << 16) | 0xabcd);
        let bw = e.read_bucket(&words, 0);
        assert_eq!(e.first_empty_slot(&bw), Some(0));
        assert_eq!(e.bucket_len(&bw), 1, "only slot 1 has a fingerprint");
        assert!(e.contains_in_bucket(&bw, (0b001 << 16) | 0xabcd));
        assert!(!e.contains_in_bucket(&bw, (0b010 << 16) | 0xabcd));
    }

    #[test]
    fn duplicate_lanes_report_first_match() {
        let e = BucketEngine::new(8, 9).unwrap();
        let mut words = vec![0u64; e.storage_words(1)];
        e.set_slot(&mut words, 0, 2, 0x1ab);
        e.set_slot(&mut words, 0, 5, 0x1ab);
        let bw = e.read_bucket(&words, 0);
        assert_eq!(e.find_in_bucket(&bw, 0x1ab), Some(2));
        assert_eq!(e.bucket_len(&bw), 2);
    }

    #[test]
    fn neighbouring_buckets_are_isolated() {
        let e = BucketEngine::new(4, 13).unwrap();
        let mut words = vec![0u64; e.storage_words(3)];
        for slot in 0..4 {
            e.set_slot(&mut words, 1, slot, 0x1fff);
        }
        for bucket in [0usize, 2] {
            let bw = e.read_bucket(&words, bucket);
            assert_eq!(e.bucket_len(&bw), 0, "bucket {bucket} disturbed");
        }
        e.set_slot(&mut words, 0, 3, 0x0aaa);
        e.set_slot(&mut words, 2, 0, 0x1555);
        let bw = e.read_bucket(&words, 1);
        assert_eq!(e.bucket_len(&bw), 4);
        assert_eq!(e.find_in_bucket(&bw, 0x1fff), Some(0));
    }
}
