//! Bucketed storage of non-zero fingerprints.

use crate::bucket::{BucketEngine, BucketWords};
use crate::kernels::KernelKind;
use crate::{MAX_BUCKET_SLOTS, MAX_FINGERPRINT_BITS, MIN_FINGERPRINT_BITS};
use vcf_traits::BuildError;

/// A table of `buckets × slots_per_bucket` fingerprint slots, the storage
/// layout of every 2-ary and 4-ary cuckoo filter in this workspace.
///
/// Fingerprints are `u32` values in `1..2^f` — zero is reserved as the
/// empty sentinel, which is why the filter layer remaps a zero fingerprint
/// to `1` before storing (see `vcf_core`).
///
/// Buckets are word-aligned and probed through the SWAR kernels of
/// [`BucketEngine`]: every bucket-wide operation (`find`, `contains`,
/// `try_insert`, `bucket_is_full`, `bucket_len`, `remove_one`) loads the
/// bucket's one or two words once and tests all slots with a handful of
/// branch-free word operations instead of a per-slot bit-extraction loop.
///
/// # Examples
///
/// ```
/// use vcf_table::FingerprintTable;
///
/// let mut t = FingerprintTable::new(16, 4, 8)?;
/// let slot = t.try_insert(5, 0xab).expect("bucket 5 has room");
/// assert_eq!(t.get(5, slot), 0xab);
/// assert_eq!(t.occupied(), 1);
/// # Ok::<(), vcf_traits::BuildError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FingerprintTable {
    words: Vec<u64>,
    engine: BucketEngine,
    buckets: usize,
    occupied: usize,
}

impl FingerprintTable {
    /// Creates an empty table.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when `buckets` is zero, `slots_per_bucket`
    /// is outside `1..=8`, or `fingerprint_bits` is outside `2..=32`.
    pub fn new(
        buckets: usize,
        slots_per_bucket: usize,
        fingerprint_bits: u32,
    ) -> Result<Self, BuildError> {
        if buckets == 0 {
            return Err(BuildError::InvalidBucketCount {
                got: 0,
                requirement: "positive",
            });
        }
        if slots_per_bucket == 0 || slots_per_bucket > MAX_BUCKET_SLOTS {
            return Err(BuildError::InvalidBucketSize {
                got: slots_per_bucket,
            });
        }
        if !(MIN_FINGERPRINT_BITS..=MAX_FINGERPRINT_BITS).contains(&fingerprint_bits) {
            return Err(BuildError::InvalidFingerprintBits {
                got: fingerprint_bits,
                min: MIN_FINGERPRINT_BITS,
                max: MAX_FINGERPRINT_BITS,
            });
        }
        let engine = BucketEngine::new(slots_per_bucket, fingerprint_bits)?;
        Ok(Self {
            words: vec![0u64; engine.storage_words(buckets)],
            engine,
            buckets,
            occupied: 0,
        })
    }

    /// Number of buckets (`m`).
    #[inline]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Slots per bucket (`b`).
    #[inline]
    pub fn slots_per_bucket(&self) -> usize {
        self.engine.slots()
    }

    /// Fingerprint width in bits (`f`).
    #[inline]
    pub fn fingerprint_bits(&self) -> u32 {
        self.engine.width()
    }

    /// Total slot capacity (`m · b`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buckets * self.engine.slots()
    }

    /// Number of occupied slots.
    #[inline]
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Current load factor `α = occupied / capacity`.
    pub fn load_factor(&self) -> f64 {
        self.occupied as f64 / self.capacity() as f64
    }

    /// Heap size of the packed storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The bucket engine probing this table (geometry + SWAR kernels).
    #[inline]
    pub fn engine(&self) -> &BucketEngine {
        &self.engine
    }

    /// The probe-kernel variant this table dispatches to.
    #[inline]
    pub fn kernel_kind(&self) -> KernelKind {
        self.engine.kernel_kind()
    }

    /// Pins this table's probes to `kind` (clamped to what the host CPU
    /// and geometry support) and returns the kind actually in effect —
    /// the differential harness and benches' forcing hook.
    pub fn set_kernel(&mut self, kind: KernelKind) -> KernelKind {
        self.engine = self.engine.with_kernel(kind);
        self.engine.kernel_kind()
    }

    /// Loads `bucket`'s words once for repeated kernel probes.
    #[inline]
    pub fn read_bucket(&self, bucket: usize) -> BucketWords {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        self.engine.read_bucket(&self.words, bucket)
    }

    /// Issues a software prefetch for `bucket`'s storage words — the
    /// insert pipeline's warm-up hook. Unlike
    /// [`touch_bucket`](Self::touch_bucket) this performs no load, so it
    /// cannot stall even when the line is cold.
    #[inline]
    pub fn prefetch_bucket(&self, bucket: usize) {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        self.engine.prefetch_bucket(&self.words, bucket);
    }

    /// Pulls `bucket`'s cache line toward the core with a single word
    /// load (kept alive by `black_box`) — the batching layer's
    /// early-touch hook, much cheaper than materialising the bucket.
    #[inline]
    pub fn touch_bucket(&self, bucket: usize) {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        // `.get()` rather than indexing: a touch hint must never be able
        // to panic, even on a garbage bucket id in release builds.
        if let Some(&word) = self.words.get(bucket * self.engine.words_per_bucket()) {
            std::hint::black_box(word);
        }
    }

    /// Reads the fingerprint in `(bucket, slot)`; `0` means empty.
    #[inline]
    pub fn get(&self, bucket: usize, slot: usize) -> u32 {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        self.engine.get_slot(&self.words, bucket, slot) as u32
    }

    /// Overwrites `(bucket, slot)` with `fingerprint` (may be `0` to
    /// clear), maintaining the occupancy count.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the fingerprint does not fit in `f` bits or
    /// the position is out of range; release builds truncate (callers
    /// derive fingerprints through [`Self::fingerprint_of`]-style
    /// masking, so an oversized value is an internal bug, not input).
    pub fn set(&mut self, bucket: usize, slot: usize, fingerprint: u32) {
        debug_assert!(
            u64::from(fingerprint) <= self.engine.lane_mask(),
            "fingerprint {fingerprint:#x} exceeds {} bits",
            self.engine.width()
        );
        let old = self.engine.get_slot(&self.words, bucket, slot);
        self.engine
            .set_slot(&mut self.words, bucket, slot, u64::from(fingerprint));
        match (old == 0, fingerprint == 0) {
            (true, false) => self.occupied += 1,
            (false, true) => self.occupied -= 1,
            _ => {}
        }
    }

    /// Inserts `fingerprint` into the first empty slot of `bucket`.
    /// Returns the slot used, or `None` when the bucket is full.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `fingerprint` is zero (the empty sentinel);
    /// fingerprint derivation remaps 0 before it reaches the table.
    pub fn try_insert(&mut self, bucket: usize, fingerprint: u32) -> Option<usize> {
        debug_assert!(fingerprint != 0, "fingerprint 0 is the empty sentinel");
        let slot = self.engine.probe_first_empty(&self.words, bucket)?;
        self.engine
            .set_slot(&mut self.words, bucket, slot, u64::from(fingerprint));
        self.occupied += 1;
        Some(slot)
    }

    /// First-fit fills `bucket` with the leading `fingerprints`, loading
    /// and storing the bucket words once — the bulk build's run
    /// primitive (see [`BucketEngine::fill_bucket`]). Returns how many
    /// were placed (always a prefix; fewer than asked means the bucket
    /// is now full).
    ///
    /// # Panics
    ///
    /// Debug builds panic if any fingerprint is zero (the empty
    /// sentinel); fingerprint derivation remaps 0 before the table.
    pub fn fill(&mut self, bucket: usize, fingerprints: &[u64]) -> usize {
        debug_assert!(
            fingerprints.iter().all(|&fp| fp != 0),
            "fingerprint 0 is the empty sentinel"
        );
        let placed = self
            .engine
            .fill_bucket(&mut self.words, bucket, fingerprints);
        self.occupied += placed;
        placed
    }

    /// Returns the slot holding `fingerprint` in `bucket`, if any.
    #[inline]
    pub fn find(&self, bucket: usize, fingerprint: u32) -> Option<usize> {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        self.engine
            .probe_find(&self.words, bucket, u64::from(fingerprint))
    }

    /// Whether `bucket` holds at least one copy of `fingerprint`.
    #[inline]
    pub fn contains(&self, bucket: usize, fingerprint: u32) -> bool {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        self.engine
            .probe_contains(&self.words, bucket, u64::from(fingerprint))
    }

    /// Whether any bucket of `buckets` holds `fingerprint` — the batched
    /// candidate probe. Under AVX2 with single-word buckets every
    /// candidate is tested in one or two 64-bit gathers.
    pub fn contains_any(&self, buckets: &[usize], fingerprint: u32) -> bool {
        debug_assert!(buckets.iter().all(|&b| b < self.buckets));
        let pattern = u64::from(fingerprint);
        let patterns = [pattern; 8];
        buckets.chunks(8).any(|chunk| {
            self.engine
                .probe_contains_any(&self.words, chunk, &patterns[..chunk.len()])
        })
    }

    /// Removes one copy of `fingerprint` from `bucket`; returns whether a
    /// copy was found.
    pub fn remove_one(&mut self, bucket: usize, fingerprint: u32) -> bool {
        if fingerprint == 0 {
            return false;
        }
        match self.find(bucket, fingerprint) {
            Some(slot) => {
                self.engine.set_slot(&mut self.words, bucket, slot, 0);
                self.occupied -= 1;
                true
            }
            None => false,
        }
    }

    /// Whether `bucket` has no empty slot.
    pub fn bucket_is_full(&self, bucket: usize) -> bool {
        self.first_empty_slot(bucket).is_none()
    }

    /// First empty slot of `bucket`, if any — the BFS eviction search's
    /// goal test.
    #[inline]
    pub fn first_empty_slot(&self, bucket: usize) -> Option<usize> {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        self.engine.probe_first_empty(&self.words, bucket)
    }

    /// Number of occupied slots in `bucket`.
    pub fn bucket_len(&self, bucket: usize) -> usize {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        self.engine.probe_len(&self.words, bucket)
    }

    /// Swaps `fingerprint` with the resident of `(bucket, slot)` and
    /// returns the previous resident. Used by the eviction ("kick") loops.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `fingerprint` is zero; fingerprint
    /// derivation remaps 0 before it reaches the table.
    pub fn swap(&mut self, bucket: usize, slot: usize, fingerprint: u32) -> u32 {
        debug_assert!(fingerprint != 0, "fingerprint 0 is the empty sentinel");
        let old = self.engine.get_slot(&self.words, bucket, slot) as u32;
        self.engine
            .set_slot(&mut self.words, bucket, slot, u64::from(fingerprint));
        if old == 0 {
            self.occupied += 1;
        }
        old
    }

    /// Removes every stored fingerprint.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.occupied = 0;
    }

    /// Iterates `(bucket, slot, fingerprint)` over occupied slots.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, u32)> + '_ {
        (0..self.buckets).flat_map(move |bucket| {
            let loaded = self.read_bucket(bucket);
            (0..self.engine.slots()).filter_map(move |slot| {
                let fp = self.engine.lane(&loaded, slot) as u32;
                (fp != 0).then_some((bucket, slot, fp))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> FingerprintTable {
        FingerprintTable::new(8, 4, 12).unwrap()
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(FingerprintTable::new(0, 4, 12).is_err());
        assert!(FingerprintTable::new(8, 0, 12).is_err());
        assert!(FingerprintTable::new(8, 9, 12).is_err());
        assert!(FingerprintTable::new(8, 4, 1).is_err());
        assert!(FingerprintTable::new(8, 4, 33).is_err());
    }

    #[test]
    fn insert_fills_slots_in_order() {
        let mut t = table();
        assert_eq!(t.try_insert(2, 10), Some(0));
        assert_eq!(t.try_insert(2, 11), Some(1));
        assert_eq!(t.try_insert(2, 12), Some(2));
        assert_eq!(t.try_insert(2, 13), Some(3));
        assert_eq!(t.try_insert(2, 14), None);
        assert!(t.bucket_is_full(2));
        assert_eq!(t.bucket_len(2), 4);
        assert_eq!(t.occupied(), 4);
    }

    #[test]
    fn duplicate_fingerprints_coexist() {
        let mut t = table();
        t.try_insert(1, 7).unwrap();
        t.try_insert(1, 7).unwrap();
        assert!(t.remove_one(1, 7));
        assert!(t.contains(1, 7), "second copy must survive");
        assert!(t.remove_one(1, 7));
        assert!(!t.contains(1, 7));
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut t = table();
        assert!(!t.remove_one(0, 9));
        t.try_insert(0, 9).unwrap();
        assert!(!t.remove_one(1, 9), "wrong bucket");
        assert!(!t.remove_one(0, 8), "wrong fingerprint");
        assert_eq!(t.occupied(), 1);
    }

    #[test]
    fn remove_zero_is_never_found() {
        let mut t = table();
        assert!(!t.remove_one(0, 0));
    }

    #[test]
    fn swap_returns_victim() {
        let mut t = table();
        t.try_insert(3, 100).unwrap();
        let victim = t.swap(3, 0, 200);
        assert_eq!(victim, 100);
        assert_eq!(t.get(3, 0), 200);
        assert_eq!(t.occupied(), 1, "swap must not change occupancy");
    }

    #[test]
    fn swap_into_empty_slot_increases_occupancy() {
        let mut t = table();
        let victim = t.swap(3, 1, 50);
        assert_eq!(victim, 0);
        assert_eq!(t.occupied(), 1);
    }

    #[test]
    #[should_panic(expected = "empty sentinel")]
    fn inserting_zero_panics() {
        table().try_insert(0, 0);
    }

    #[test]
    fn occupancy_tracks_set() {
        let mut t = table();
        t.set(0, 0, 5);
        assert_eq!(t.occupied(), 1);
        t.set(0, 0, 6); // overwrite occupied with occupied
        assert_eq!(t.occupied(), 1);
        t.set(0, 0, 0); // clear
        assert_eq!(t.occupied(), 0);
        t.set(0, 0, 0); // clear empty
        assert_eq!(t.occupied(), 0);
    }

    #[test]
    fn load_factor_tracks_occupancy() {
        let mut t = table();
        assert_eq!(t.load_factor(), 0.0);
        for bucket in 0..8 {
            for fp in 1..=4 {
                t.try_insert(bucket, fp).unwrap();
            }
        }
        assert!((t.load_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_occupied_only() {
        let mut t = table();
        t.try_insert(0, 1).unwrap();
        t.try_insert(7, 2).unwrap();
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all, vec![(0, 0, 1), (7, 0, 2)]);
    }

    #[test]
    fn clear_empties_table() {
        let mut t = table();
        t.try_insert(0, 1).unwrap();
        t.clear();
        assert_eq!(t.occupied(), 0);
        assert!(!t.contains(0, 1));
    }

    #[test]
    fn max_width_fingerprints_roundtrip() {
        let mut t = FingerprintTable::new(4, 4, 32).unwrap();
        t.try_insert(0, u32::MAX).unwrap();
        assert!(t.contains(0, u32::MAX));
    }

    #[test]
    fn buckets_are_word_aligned() {
        // f = 12, b = 4 → one word per bucket.
        let t = FingerprintTable::new(10, 4, 12).unwrap();
        assert_eq!(t.storage_bytes(), 10 * 8);
        // f = 16, b = 8 → two words per bucket.
        let t = FingerprintTable::new(10, 8, 16).unwrap();
        assert_eq!(t.storage_bytes(), 10 * 16);
    }
}
