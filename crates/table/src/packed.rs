//! Raw bit-packed fixed-width slot array.

use vcf_traits::BuildError;

/// A flat array of `count` slots, each `width` bits wide (1..=63), packed
/// contiguously into `u64` words.
///
/// `PackedTable` knows nothing about buckets or fingerprints; it is the
/// raw bit-level substrate under [`FingerprintTable`](crate::FingerprintTable)
/// and [`MarkedTable`](crate::MarkedTable). A slot value of `0` is used by
/// the higher layers as the empty sentinel.
///
/// # Examples
///
/// ```
/// use vcf_table::PackedTable;
///
/// let mut t = PackedTable::new(100, 13)?;
/// t.set(42, 0x1abc);
/// assert_eq!(t.get(42), 0x1abc);
/// assert_eq!(t.get(41), 0);
/// # Ok::<(), vcf_traits::BuildError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedTable {
    words: Vec<u64>,
    count: usize,
    width: u32,
    mask: u64,
}

impl PackedTable {
    /// Creates a table of `count` zeroed slots of `width` bits each.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidConfig`] when `width` is 0 or ≥ 64, or
    /// when `count` is 0.
    pub fn new(count: usize, width: u32) -> Result<Self, BuildError> {
        if width == 0 || width >= 64 {
            return Err(BuildError::InvalidConfig {
                reason: format!("slot width must be 1..=63 bits, got {width}"),
            });
        }
        if count == 0 {
            return Err(BuildError::InvalidConfig {
                reason: "slot count must be positive".into(),
            });
        }
        let total_bits =
            count
                .checked_mul(width as usize)
                .ok_or_else(|| BuildError::InvalidConfig {
                    reason: "table too large".into(),
                })?;
        let words = vec![0u64; total_bits.div_ceil(64)];
        Ok(Self {
            words,
            count,
            width,
            mask: (1u64 << width) - 1,
        })
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` when the table has zero slots (never true for a
    /// successfully constructed table).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Slot width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Heap size of the packed storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Reads slot `index`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `index` is out of bounds. Release
    /// builds skip the explicit check on this hot path — callers (the
    /// bucketed tables, quotient filter, counting Bloom) validate
    /// geometry at construction — but an out-of-range read beyond the
    /// final word still panics via the slice bounds check.
    #[inline]
    pub fn get(&self, index: usize) -> u64 {
        debug_assert!(
            index < self.count,
            "slot index {index} out of bounds ({})",
            self.count
        );
        let bit = index * self.width as usize;
        let word = bit / 64;
        let shift = (bit % 64) as u32;
        let mut value = self.words[word] >> shift;
        let taken = 64 - shift;
        if taken < self.width {
            value |= self.words[word + 1] << taken;
        }
        value & self.mask
    }

    /// Writes `value` (truncated to the slot width) into slot `index`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `index` is out of bounds or `value`
    /// does not fit in the slot width. Release builds skip both explicit
    /// checks on this hot path — callers validate geometry at
    /// construction — and instead truncate the value to the slot width,
    /// so neighbouring slots can never be corrupted.
    #[inline]
    pub fn set(&mut self, index: usize, value: u64) {
        debug_assert!(
            index < self.count,
            "slot index {index} out of bounds ({})",
            self.count
        );
        debug_assert!(
            value <= self.mask,
            "value {value:#x} exceeds slot width {}",
            self.width
        );
        let value = value & self.mask;
        let bit = index * self.width as usize;
        let word = bit / 64;
        let shift = (bit % 64) as u32;
        self.words[word] = (self.words[word] & !(self.mask << shift)) | (value << shift);
        let taken = 64 - shift;
        if taken < self.width {
            let hi_mask = self.mask >> taken;
            self.words[word + 1] = (self.words[word + 1] & !hi_mask) | (value >> taken);
        }
    }

    /// Resets every slot to zero.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over all slot values in index order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.count).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_geometry() {
        assert!(PackedTable::new(0, 8).is_err());
        assert!(PackedTable::new(8, 0).is_err());
        assert!(PackedTable::new(8, 64).is_err());
        assert!(PackedTable::new(8, 63).is_ok());
    }

    #[test]
    fn starts_zeroed() {
        let t = PackedTable::new(77, 11).unwrap();
        assert!(t.iter().all(|v| v == 0));
    }

    #[test]
    fn roundtrip_all_widths() {
        for width in 1..=63u32 {
            let mut t = PackedTable::new(65, width).unwrap();
            let mask = (1u64 << width) - 1;
            for i in 0..65usize {
                let v = (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)) & mask;
                t.set(i, v);
            }
            for i in 0..65usize {
                let v = (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)) & mask;
                assert_eq!(t.get(i), v, "width {width} slot {i}");
            }
        }
    }

    #[test]
    fn neighbours_are_not_disturbed() {
        let mut t = PackedTable::new(10, 13).unwrap();
        t.set(3, 0x1fff);
        t.set(5, 0x0aaa);
        t.set(4, 0x1555);
        assert_eq!(t.get(3), 0x1fff);
        assert_eq!(t.get(4), 0x1555);
        assert_eq!(t.get(5), 0x0aaa);
        t.set(4, 0);
        assert_eq!(t.get(3), 0x1fff);
        assert_eq!(t.get(5), 0x0aaa);
    }

    #[test]
    fn word_boundary_straddle() {
        // width 9: slot 7 spans bits 63..72, crossing the first word edge.
        let mut t = PackedTable::new(16, 9).unwrap();
        t.set(7, 0x1ab);
        assert_eq!(t.get(7), 0x1ab);
        t.set(6, 0x155);
        t.set(8, 0x0ff);
        assert_eq!(t.get(7), 0x1ab);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let t = PackedTable::new(4, 8).unwrap();
        t.get(4);
    }

    #[test]
    #[should_panic(expected = "exceeds slot width")]
    fn set_oversized_value_panics() {
        let mut t = PackedTable::new(4, 8).unwrap();
        t.set(0, 256);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = PackedTable::new(50, 7).unwrap();
        for i in 0..50 {
            t.set(i, (i as u64) & 0x7f);
        }
        t.clear();
        assert!(t.iter().all(|v| v == 0));
    }

    #[test]
    fn storage_is_compact() {
        let t = PackedTable::new(1024, 12).unwrap();
        // 1024 * 12 bits = 1536 bytes = 192 words.
        assert_eq!(t.storage_bytes(), 192 * 8);
    }
}
