//! Atomic counterpart of the bucket engine: lock-free word-level probing
//! and CAS-based slot updates over `AtomicU64` storage.
//!
//! [`AtomicBucketEngine`] reuses the [`BucketEngine`] layout and SWAR
//! kernels but operates on `&[AtomicU64]` words, so concurrent filters can
//! probe and mutate buckets without a table-wide lock:
//!
//! * **Loads are per-word atomic.** A bucket view assembled from several
//!   words may be *torn across words* under concurrent writes — each lane
//!   is still internally consistent because the engine only accepts
//!   geometries where every lane fits inside one 64-bit word
//!   (`slot_word_shift` is `Some` for every slot). A torn multi-word view
//!   is indistinguishable from some interleaving of the racing operations,
//!   which is exactly the consistency a lock-free probe needs.
//! * **Writes are single-word CAS.** [`try_claim`](AtomicBucketEngine::try_claim)
//!   fills the first empty lane by CAS-ing the whole word (empty lanes are
//!   zero, so the claim is an OR); [`replace_expect`](AtomicBucketEngine::replace_expect)
//!   swaps a lane only while it still holds the expected value, retrying
//!   when *other* lanes of the same word changed underneath.
//!
//! Memory ordering: data loads are `Relaxed` — the stored fingerprints
//! *are* the data, nothing is published through them — and successful CAS
//! uses `AcqRel` so that claim/replace chains order across threads. Any
//! stronger visibility contract (e.g. "a miss really means absent while a
//! relocation is in flight") belongs to the caller; `vcf-core`'s
//! `ConcurrentVcf` layers per-bucket seqlock versions on top for that.
//!
//! [`AtomicFingerprintTable`] owns the `AtomicU64` buffer plus an exact
//! occupancy counter and mirrors the sequential [`FingerprintTable`] API
//! with `&self` mutators.

use crate::bucket::{BucketEngine, BucketWords};
use crate::{MAX_BUCKET_SLOTS, MAX_FINGERPRINT_BITS, MIN_FINGERPRINT_BITS};
use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use vcf_traits::BuildError;

/// Upper bound on `u64` words per bucket (4 segments × 2 words).
const MAX_BUCKET_WORDS: usize = 8;

/// Lock-free probing and CAS mutation over `AtomicU64` bucket words.
///
/// Owns no storage, exactly like [`BucketEngine`]; callers hand it their
/// `&[AtomicU64]` buffer laid out by the wrapped engine. Construction
/// fails for geometries where a lane would straddle two words, because a
/// straddling lane cannot be claimed or cleared with one CAS.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::AtomicU64;
/// use vcf_table::AtomicBucketEngine;
///
/// let engine = AtomicBucketEngine::new(4, 12)?;
/// let words: Vec<AtomicU64> = (0..engine.storage_words(8))
///     .map(|_| AtomicU64::new(0))
///     .collect();
/// assert_eq!(engine.try_claim(&words, 3, 0xabc), Some(0));
/// assert!(engine.contains(&words, 3, 0xabc));
/// assert!(engine.replace_expect(&words, 3, 0, 0xabc, 0));
/// assert!(!engine.contains(&words, 3, 0xabc));
/// # Ok::<(), vcf_traits::BuildError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AtomicBucketEngine {
    engine: BucketEngine,
    /// Per-slot `(word-in-bucket, shift)`; straddle-free by construction.
    slot_words: [(u8, u8); MAX_BUCKET_SLOTS],
}

impl AtomicBucketEngine {
    /// Builds an atomic engine for buckets of `slots` lanes of `width`
    /// bits.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidConfig`] for geometry the sequential
    /// engine rejects, and additionally when any lane straddles a 64-bit
    /// word boundary (e.g. 8 slots × 12 bits), since single-word CAS
    /// could not update such a lane atomically.
    pub fn new(slots: usize, width: u32) -> Result<Self, BuildError> {
        let engine = BucketEngine::new(slots, width)?;
        let mut slot_words = [(0u8, 0u8); MAX_BUCKET_SLOTS];
        for (slot, out) in slot_words.iter_mut().enumerate().take(slots) {
            match engine.slot_word_shift(slot) {
                Some((word, shift)) => *out = (word as u8, shift as u8),
                None => {
                    return Err(BuildError::InvalidConfig {
                        reason: format!(
                            "slot {slot} of a {slots}x{width}-bit bucket straddles a word \
                             boundary; the atomic engine needs single-word lanes"
                        ),
                    })
                }
            }
        }
        Ok(Self { engine, slot_words })
    }

    /// The wrapped sequential engine (geometry + SWAR kernels).
    #[inline]
    pub fn engine(&self) -> &BucketEngine {
        &self.engine
    }

    /// Slots per bucket.
    #[inline]
    pub fn slots(&self) -> usize {
        self.engine.slots()
    }

    /// Lane width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.engine.width()
    }

    /// All-ones mask of one lane.
    #[inline]
    pub fn lane_mask(&self) -> u64 {
        self.engine.lane_mask()
    }

    /// `AtomicU64` words a table of `buckets` buckets must allocate.
    pub fn storage_words(&self, buckets: usize) -> usize {
        self.engine.storage_words(buckets)
    }

    /// Loads all of `bucket`'s words (one `Relaxed` atomic load each) into
    /// a [`BucketWords`] view for the SWAR kernels.
    #[inline]
    pub fn load_bucket(&self, words: &[AtomicU64], bucket: usize) -> BucketWords {
        let wpb = self.engine.words_per_bucket();
        let base = bucket * wpb;
        let mut buf = [0u64; MAX_BUCKET_WORDS];
        for (out, word) in buf.iter_mut().zip(&words[base..base + wpb]) {
            *out = word.load(Ordering::Relaxed);
        }
        self.engine.read_bucket(&buf[..wpb], 0)
    }

    /// Reads one lane with a single `Relaxed` atomic load.
    #[inline]
    pub fn get_slot(&self, words: &[AtomicU64], bucket: usize, slot: usize) -> u64 {
        debug_assert!(slot < self.slots(), "slot {slot} out of range");
        let (word, shift) = self.slot_words[slot];
        let base = bucket * self.engine.words_per_bucket();
        let raw = words[base + word as usize].load(Ordering::Relaxed);
        (raw >> shift) & self.lane_mask()
    }

    /// Whether any lane of `bucket` currently equals `pattern` (one torn
    /// load per word; see the module docs for the consistency contract).
    #[inline]
    pub fn contains(&self, words: &[AtomicU64], bucket: usize, pattern: u64) -> bool {
        let loaded = self.load_bucket(words, bucket);
        self.engine.contains_in_bucket(&loaded, pattern)
    }

    /// Claims the first empty lane of `bucket` for `value` with a CAS
    /// loop. Returns the slot claimed, or `None` when the bucket stayed
    /// full throughout. Never overwrites a non-empty lane.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `value` is zero — zero is the empty sentinel.
    #[inline]
    pub fn try_claim(&self, words: &[AtomicU64], bucket: usize, value: u64) -> Option<usize> {
        debug_assert!(value != 0, "value 0 is the empty sentinel");
        debug_assert!(value <= self.lane_mask(), "value {value:#x} exceeds lane");
        let base = bucket * self.engine.words_per_bucket();
        loop {
            let loaded = self.load_bucket(words, bucket);
            let slot = self.engine.first_empty_slot(&loaded)?;
            let (word, shift) = self.slot_words[slot];
            let target = &words[base + word as usize];
            let old = target.load(Ordering::Relaxed);
            // Re-derive emptiness from the freshest word: `loaded` may be
            // stale. If the lane filled meanwhile, loop and look again.
            if (old >> shift) & self.lane_mask() != 0 {
                continue;
            }
            let new = old | (value << shift);
            if target
                .compare_exchange_weak(old, new, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(slot);
            }
        }
    }

    /// Replaces the lane at `(bucket, slot)` with `new` iff it still holds
    /// `expected`, retrying while *other* lanes of the same word churn.
    /// Returns `false` as soon as the lane no longer holds `expected`.
    /// `new` may be zero (clearing the slot).
    #[inline]
    pub fn replace_expect(
        &self,
        words: &[AtomicU64],
        bucket: usize,
        slot: usize,
        expected: u64,
        new: u64,
    ) -> bool {
        debug_assert!(slot < self.slots(), "slot {slot} out of range");
        debug_assert!(new <= self.lane_mask(), "value {new:#x} exceeds lane");
        let (word, shift) = self.slot_words[slot];
        let mask = self.lane_mask();
        let base = bucket * self.engine.words_per_bucket();
        let target = &words[base + word as usize];
        loop {
            let old = target.load(Ordering::Relaxed);
            if (old >> shift) & mask != expected {
                return false;
            }
            let updated = (old & !(mask << shift)) | (new << shift);
            if target
                .compare_exchange_weak(old, updated, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }
}

/// Bucketed `AtomicU64` storage of non-zero fingerprints with `&self`
/// mutators — the concurrent sibling of [`FingerprintTable`].
///
/// All mutation goes through single-word CAS ([`try_claim`] /
/// [`replace_expect`]); the `occupied` counter is adjusted on exactly the
/// operations that change the number of non-empty lanes, so at quiescence
/// `occupied()` equals the number of stored fingerprints exactly.
///
/// [`FingerprintTable`]: crate::FingerprintTable
/// [`try_claim`]: AtomicFingerprintTable::try_claim
/// [`replace_expect`]: AtomicFingerprintTable::replace_expect
///
/// # Examples
///
/// ```
/// use vcf_table::AtomicFingerprintTable;
///
/// let t = AtomicFingerprintTable::new(16, 4, 8)?;
/// let slot = t.try_claim(5, 0xab).expect("bucket 5 has room");
/// assert_eq!(t.get(5, slot), 0xab);
/// assert_eq!(t.occupied(), 1);
/// assert!(t.replace_expect(5, slot, 0xab, 0));
/// assert_eq!(t.occupied(), 0);
/// # Ok::<(), vcf_traits::BuildError>(())
/// ```
#[derive(Debug)]
pub struct AtomicFingerprintTable {
    words: Vec<AtomicU64>,
    engine: AtomicBucketEngine,
    buckets: usize,
    occupied: AtomicUsize,
}

impl AtomicFingerprintTable {
    /// Creates an empty table.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for the same geometry errors as
    /// [`FingerprintTable::new`](crate::FingerprintTable::new), plus
    /// word-straddling lanes (see [`AtomicBucketEngine::new`]).
    pub fn new(
        buckets: usize,
        slots_per_bucket: usize,
        fingerprint_bits: u32,
    ) -> Result<Self, BuildError> {
        if buckets == 0 {
            return Err(BuildError::InvalidBucketCount {
                got: 0,
                requirement: "positive",
            });
        }
        if slots_per_bucket == 0 || slots_per_bucket > MAX_BUCKET_SLOTS {
            return Err(BuildError::InvalidBucketSize {
                got: slots_per_bucket,
            });
        }
        if !(MIN_FINGERPRINT_BITS..=MAX_FINGERPRINT_BITS).contains(&fingerprint_bits) {
            return Err(BuildError::InvalidFingerprintBits {
                got: fingerprint_bits,
                min: MIN_FINGERPRINT_BITS,
                max: MAX_FINGERPRINT_BITS,
            });
        }
        let engine = AtomicBucketEngine::new(slots_per_bucket, fingerprint_bits)?;
        let words = (0..engine.storage_words(buckets))
            .map(|_| AtomicU64::new(0))
            .collect();
        Ok(Self {
            words,
            engine,
            buckets,
            occupied: AtomicUsize::new(0),
        })
    }

    /// Number of buckets (`m`).
    #[inline]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Slots per bucket (`b`).
    #[inline]
    pub fn slots_per_bucket(&self) -> usize {
        self.engine.slots()
    }

    /// Fingerprint width in bits (`f`).
    #[inline]
    pub fn fingerprint_bits(&self) -> u32 {
        self.engine.width()
    }

    /// Total slot capacity (`m · b`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buckets * self.engine.slots()
    }

    /// Number of occupied slots (exact at quiescence; momentarily lags
    /// in-flight claims by at most the number of racing threads).
    #[inline]
    pub fn occupied(&self) -> usize {
        self.occupied.load(Ordering::Relaxed)
    }

    /// Current load factor `α = occupied / capacity`.
    pub fn load_factor(&self) -> f64 {
        self.occupied() as f64 / self.capacity() as f64
    }

    /// Heap size of the atomic word storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The atomic engine probing this table.
    #[inline]
    pub fn engine(&self) -> &AtomicBucketEngine {
        &self.engine
    }

    /// Loads `bucket`'s words for repeated kernel probes.
    #[inline]
    pub fn load_bucket(&self, bucket: usize) -> BucketWords {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        self.engine.load_bucket(&self.words, bucket)
    }

    /// Pulls `bucket`'s cache line toward the core — the batching layer's
    /// early-touch hook.
    #[inline]
    pub fn touch_bucket(&self, bucket: usize) {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        std::hint::black_box(
            self.words[bucket * self.engine.engine().words_per_bucket()].load(Ordering::Relaxed),
        );
    }

    /// Reads the fingerprint in `(bucket, slot)`; `0` means empty.
    #[inline]
    pub fn get(&self, bucket: usize, slot: usize) -> u32 {
        debug_assert!(bucket < self.buckets, "bucket {bucket} out of range");
        self.engine.get_slot(&self.words, bucket, slot) as u32
    }

    /// Whether `bucket` holds at least one copy of `fingerprint`.
    #[inline]
    pub fn contains(&self, bucket: usize, fingerprint: u32) -> bool {
        self.engine
            .contains(&self.words, bucket, u64::from(fingerprint))
    }

    /// The slot currently holding `fingerprint` in `bucket`, if any.
    #[inline]
    pub fn find(&self, bucket: usize, fingerprint: u32) -> Option<usize> {
        let loaded = self.load_bucket(bucket);
        self.engine
            .engine()
            .find_in_bucket(&loaded, u64::from(fingerprint))
    }

    /// Whether `bucket` currently has no empty slot.
    #[inline]
    pub fn bucket_is_full(&self, bucket: usize) -> bool {
        let loaded = self.load_bucket(bucket);
        self.engine.engine().first_empty_slot(&loaded).is_none()
    }

    /// CAS-claims the first empty slot of `bucket` for `fingerprint`.
    /// Returns the slot, or `None` when the bucket is full.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `fingerprint` is zero (the empty sentinel);
    /// fingerprint derivation remaps 0 before it reaches the table.
    pub fn try_claim(&self, bucket: usize, fingerprint: u32) -> Option<usize> {
        debug_assert!(fingerprint != 0, "fingerprint 0 is the empty sentinel");
        let slot = self
            .engine
            .try_claim(&self.words, bucket, u64::from(fingerprint))?;
        self.occupied.fetch_add(1, Ordering::Relaxed);
        Some(slot)
    }

    /// Replaces `(bucket, slot)` with `new` iff it still holds `expected`,
    /// keeping the occupancy count exact (`expected → 0` decrements;
    /// `expected → new` with both non-zero is a pure swap).
    ///
    /// # Panics
    ///
    /// Debug builds panic if `expected` is zero — claiming empty slots
    /// must go through
    /// [`try_claim`](AtomicFingerprintTable::try_claim) so occupancy
    /// stays first-empty-slot consistent.
    pub fn replace_expect(&self, bucket: usize, slot: usize, expected: u32, new: u32) -> bool {
        debug_assert!(expected != 0, "claim empty slots via try_claim");
        if !self.engine.replace_expect(
            &self.words,
            bucket,
            slot,
            u64::from(expected),
            u64::from(new),
        ) {
            return false;
        }
        if new == 0 {
            self.occupied.fetch_sub(1, Ordering::Relaxed);
        }
        true
    }

    /// Iterates `(bucket, slot, fingerprint)` over occupied slots. Only
    /// meaningful at quiescence (no concurrent writers).
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, u32)> + '_ {
        (0..self.buckets).flat_map(move |bucket| {
            let loaded = self.load_bucket(bucket);
            (0..self.engine.slots()).filter_map(move |slot| {
                let fp = self.engine.engine().lane(&loaded, slot) as u32;
                (fp != 0).then_some((bucket, slot, fp))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_straddling_lanes() {
        // 8 slots × 12 bits: lane 5 spans bits 60..72 of its segment.
        assert!(AtomicBucketEngine::new(8, 12).is_err());
        assert!(AtomicFingerprintTable::new(8, 8, 12).is_err());
        // The paper's default (4 × 14 = 56 bits) and the two-word
        // power-of-two shapes are all single-word-lane clean.
        assert!(AtomicBucketEngine::new(4, 14).is_ok());
        assert!(AtomicBucketEngine::new(8, 16).is_ok());
        assert!(AtomicBucketEngine::new(4, 32).is_ok());
    }

    #[test]
    fn claim_fills_slots_in_order_and_rejects_when_full() {
        let t = AtomicFingerprintTable::new(8, 4, 12).unwrap();
        assert_eq!(t.try_claim(2, 10), Some(0));
        assert_eq!(t.try_claim(2, 11), Some(1));
        assert_eq!(t.try_claim(2, 12), Some(2));
        assert_eq!(t.try_claim(2, 13), Some(3));
        assert_eq!(t.try_claim(2, 14), None);
        assert!(t.bucket_is_full(2));
        assert_eq!(t.occupied(), 4);
        assert_eq!(t.get(2, 1), 11);
        assert_eq!(t.find(2, 13), Some(3));
    }

    #[test]
    fn replace_expect_validates_the_lane() {
        let t = AtomicFingerprintTable::new(4, 4, 14).unwrap();
        t.try_claim(1, 77).unwrap();
        assert!(!t.replace_expect(1, 0, 88, 99), "wrong expected value");
        assert!(t.replace_expect(1, 0, 77, 99), "swap in place");
        assert_eq!(t.occupied(), 1, "swap must not change occupancy");
        assert!(t.replace_expect(1, 0, 99, 0), "clear");
        assert_eq!(t.occupied(), 0);
        assert!(!t.contains(1, 99));
    }

    #[test]
    fn concurrent_claims_never_collide() {
        use std::sync::Arc;
        let t = Arc::new(AtomicFingerprintTable::new(64, 4, 16).unwrap());
        let handles: Vec<_> = (0..4u32)
            .map(|thread| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let mut claimed = Vec::new();
                    for i in 0..64u32 {
                        let fp = (thread << 8) | i | 1;
                        if let Some(slot) = t.try_claim((i % 64) as usize, fp) {
                            claimed.push(((i % 64) as usize, slot, fp));
                        }
                    }
                    claimed
                })
            })
            .collect();
        let mut all: Vec<(usize, usize, u32)> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        // No two threads may have claimed the same (bucket, slot).
        let mut coords: Vec<(usize, usize)> = all.iter().map(|&(b, s, _)| (b, s)).collect();
        coords.sort_unstable();
        coords.dedup();
        assert_eq!(coords.len(), all.len(), "two claims landed on one slot");
        assert_eq!(t.occupied(), all.len());
        for &(b, s, fp) in &all {
            assert_eq!(t.get(b, s), fp, "claimed value lost");
        }
    }

    #[test]
    fn iter_matches_claims() {
        let t = AtomicFingerprintTable::new(8, 2, 8).unwrap();
        t.try_claim(0, 3).unwrap();
        t.try_claim(7, 9).unwrap();
        let got: Vec<_> = t.iter().collect();
        assert_eq!(got, vec![(0, 0, 3), (7, 0, 9)]);
    }
}
