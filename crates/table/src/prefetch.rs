//! Software prefetch — the only place in the workspace allowed to use
//! `unsafe`, and only for the cfg-gated prefetch intrinsic.
//!
//! The insert pipeline hashes a window of keys up front and issues a
//! prefetch for every candidate bucket word before any fingerprint is
//! placed, so the bucket loads of key *i+W* overlap the hashing of keys
//! *i+W+1..* instead of serialising hash → miss → hash → miss. A prefetch
//! is purely a performance hint: it reads no data, faults on nothing
//! (invalid addresses are dropped by the hardware), and has no observable
//! effect on program state — which is why the one-line intrinsic wrapper
//! below is sound despite being `unsafe` to call.

/// Hints the memory system to pull the cache line containing `*ptr`
/// toward the L1 data cache.
///
/// On `x86_64` this is `PREFETCHT0` via [`_mm_prefetch`]; on other
/// architectures it is a no-op (stable Rust exposes no portable prefetch
/// intrinsic — notably `aarch64`'s `prfm` is nightly-only), which keeps
/// the insert pipeline correct everywhere and fast where it matters.
///
/// [`_mm_prefetch`]: core::arch::x86_64::_mm_prefetch
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
    // SAFETY: PREFETCHT0 is architecturally defined to be a hint with no
    // effect on architectural state; it cannot fault even on invalid
    // addresses. The pointer is never dereferenced.
    unsafe { _mm_prefetch::<_MM_HINT_T0>(ptr.cast::<i8>()) }
}

/// No-op fallback for targets without a stable prefetch intrinsic.
#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    let _ = ptr;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_side_effect_free() {
        let data = [1u64, 2, 3];
        prefetch_read(data.as_ptr());
        prefetch_read(data.as_ptr().wrapping_add(2));
        assert_eq!(data, [1, 2, 3]);
    }
}
