//! Property-based tests for the hash substrates.

use proptest::prelude::*;
use vcf_hash::fnv::Fnv1a64;
use vcf_hash::{djb2_64, fnv1a_64, mix64, murmur3_x64_128, murmur3_x86_32, HashKind, SplitMix64};

proptest! {
    /// Streaming FNV must equal one-shot FNV for every split of every
    /// input.
    #[test]
    fn fnv_streaming_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..256), split in any::<prop::sample::Index>()) {
        let at = if data.is_empty() { 0 } else { split.index(data.len()) };
        let mut hasher = Fnv1a64::new();
        hasher.update(&data[..at]);
        hasher.update(&data[at..]);
        prop_assert_eq!(hasher.finish(), fnv1a_64(&data));
    }

    /// Hashes must be pure functions of their input.
    #[test]
    fn all_kinds_deterministic(data in prop::collection::vec(any::<u8>(), 0..128)) {
        for kind in HashKind::ALL {
            prop_assert_eq!(kind.hash64(&data), kind.hash64(&data));
        }
    }

    /// Appending a byte must change the FNV and DJB2 hashes (both are
    /// injective-in-length for fixed prefixes: h' = h*P ^ b etc. cannot
    /// equal h unless the math degenerates, which it provably does not
    /// for FNV's odd prime and DJB2's *33).
    #[test]
    fn extension_changes_hash(data in prop::collection::vec(any::<u8>(), 0..64), extra in any::<u8>()) {
        let mut extended = data.clone();
        extended.push(extra);
        prop_assert_ne!(fnv1a_64(&data), fnv1a_64(&extended));
        prop_assert_ne!(djb2_64(&data), djb2_64(&extended));
    }

    /// Murmur3 x64_128 tail handling: inputs differing in their final
    /// byte must hash differently (each tail byte feeds the k-lane).
    #[test]
    fn murmur_tail_sensitivity(data in prop::collection::vec(any::<u8>(), 1..64), flip in any::<u8>()) {
        prop_assume!(flip != 0);
        let mut tweaked = data.clone();
        let last = tweaked.len() - 1;
        tweaked[last] ^= flip;
        prop_assert_ne!(murmur3_x64_128(&data, 0), murmur3_x64_128(&tweaked, 0));
        prop_assert_ne!(murmur3_x86_32(&data, 0), murmur3_x86_32(&tweaked, 0));
    }

    /// Seed sensitivity for Murmur3.
    #[test]
    fn murmur_seed_sensitivity(data in prop::collection::vec(any::<u8>(), 0..64), s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        prop_assert_ne!(murmur3_x64_128(&data, s1), murmur3_x64_128(&data, s2));
    }

    /// mix64 is a bijection: no two distinct inputs in a sampled window
    /// may collide, and it must be invertible in distribution (checked
    /// cheaply via distinctness).
    #[test]
    fn mix64_injective_on_pairs(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(mix64(a), mix64(b));
    }

    /// SplitMix64 streams from equal seeds agree; from different seeds
    /// they diverge within a few outputs.
    #[test]
    fn splitmix_seed_determines_stream(seed in any::<u64>()) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(seed.wrapping_add(1));
        let first_eight: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        let mut d = SplitMix64::new(seed);
        let original: Vec<u64> = (0..8).map(|_| d.next_u64()).collect();
        prop_assert_ne!(first_eight, original);
    }

    /// next_below never violates its bound and hits both halves of the
    /// range over a modest sample.
    #[test]
    fn next_below_uniformish(seed in any::<u64>(), bound in 2u64..1000) {
        let mut g = SplitMix64::new(seed);
        let mut low = false;
        let mut high = false;
        for _ in 0..200 {
            let v = g.next_below(bound);
            prop_assert!(v < bound);
            if v < bound / 2 { low = true; } else { high = true; }
        }
        prop_assert!(low && high, "200 draws should cover both halves of [0, {bound})");
    }
}
