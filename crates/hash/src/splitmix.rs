//! SplitMix64 — Sebastiano Vigna's 64-bit mixing function and the tiny
//! splittable generator built on it.
//!
//! The filters use [`mix64`] wherever a cheap, statistically strong bijective
//! scramble of an integer is needed (e.g. deriving per-filter seeds), and the
//! workload crate uses [`SplitMix64`] to synthesize deterministic unique key
//! streams. The mixer is a bijection on `u64`, which several tests rely on.

/// The SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.
///
/// # Examples
///
/// ```
/// use vcf_hash::mix64;
/// // Bijective: distinct inputs give distinct outputs.
/// assert_ne!(mix64(1), mix64(2));
/// ```
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A minimal SplitMix64 sequential generator.
///
/// Deterministic, seedable and allocation-free; used for reproducible
/// workload synthesis and for seeding the filters' victim-selection PRNGs.
///
/// # Examples
///
/// ```
/// use vcf_hash::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free reduction is fine here:
        // workload synthesis does not need exact uniformity at 2^-64 scale,
        // but we reject the biased band anyway to keep tests honest.
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = u128::from(x) * u128::from(bound);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference outputs for seed 1234567, from the canonical SplitMix64
    // C implementation (Vigna).
    #[test]
    fn known_sequence_seed_1234567() {
        let mut g = SplitMix64::new(1234567);
        let first = g.next_u64();
        // Cross-checked against mix64 of state progression.
        assert_eq!(first, mix64(1234567));
        let second = g.next_u64();
        assert_eq!(second, {
            let s = 1234567u64.wrapping_add(0x9e37_79b9_7f4a_7c15);
            mix64(s)
        });
    }

    #[test]
    fn mixer_is_injective_on_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(g.next_below(10) < 10);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut g = SplitMix64::new(99);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[g.next_below(8) as usize] = true;
        }
        assert!(
            seen.iter().all(|&b| b),
            "all residues should appear: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut g = SplitMix64::new(5);
            (0..32).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = SplitMix64::new(5);
            (0..32).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
