//! MurmurHash3 (Austin Appleby, public domain), reimplemented from the
//! reference `MurmurHash3.cpp`.
//!
//! Two variants are provided:
//!
//! * [`murmur3_x86_32`] — the 32-bit variant, verified against the widely
//!   published SMHasher verification vectors.
//! * [`murmur3_x64_128`] — the 128-bit x64 variant used by the paper's
//!   Table IV experiments; [`murmur3_x64_64`] truncates it to the low
//!   64 bits.

const C1_32: u32 = 0xcc9e_2d51;
const C2_32: u32 = 0x1b87_3593;

/// MurmurHash3 x86 32-bit.
///
/// # Examples
///
/// ```
/// use vcf_hash::murmur3_x86_32;
/// assert_eq!(murmur3_x86_32(b"", 0), 0);
/// assert_eq!(murmur3_x86_32(b"", 1), 0x514e28b7);
/// ```
pub fn murmur3_x86_32(data: &[u8], seed: u32) -> u32 {
    let mut h = seed;
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let mut k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        k = k.wrapping_mul(C1_32);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2_32);
        h ^= k;
        h = h.rotate_left(13);
        h = h.wrapping_mul(5).wrapping_add(0xe654_6b64);
    }

    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut k: u32 = 0;
        for (i, &byte) in tail.iter().enumerate() {
            k ^= u32::from(byte) << (8 * i);
        }
        k = k.wrapping_mul(C1_32);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2_32);
        h ^= k;
    }

    h ^= data.len() as u32;
    fmix32(h)
}

#[inline]
fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

const C1_64: u64 = 0x87c3_7b91_1142_53d5;
const C2_64: u64 = 0x4cf5_ad43_2745_937f;

/// Little-endian `u64` from up to 8 bytes, zero-padded. The zip bounds
/// both sides, so the load is panic-free; LLVM folds the 8-byte case to
/// a single unaligned load.
#[inline]
fn le_u64(bytes: &[u8]) -> u64 {
    let mut word = [0u8; 8];
    for (dst, &src) in word.iter_mut().zip(bytes) {
        *dst = src;
    }
    u64::from_le_bytes(word)
}

/// MurmurHash3 x64 128-bit. Returns `(h1, h2)`, the two 64-bit halves in
/// the order the reference implementation emits them.
///
/// # Examples
///
/// ```
/// use vcf_hash::murmur3_x64_128;
/// // The empty input with seed 0 hashes to (0, 0) by construction.
/// assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
/// ```
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    let mut h1 = seed;
    let mut h2 = seed;

    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        let mut k1 = le_u64(&chunk[0..8]);
        let mut k2 = le_u64(&chunk[8..16]);

        k1 = k1.wrapping_mul(C1_64);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2_64);
        h1 ^= k1;
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2_64);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1_64);
        h2 ^= k2;
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut k1: u64 = 0;
        let mut k2: u64 = 0;
        for (i, &byte) in tail.iter().enumerate() {
            if i < 8 {
                k1 ^= u64::from(byte) << (8 * i);
            } else {
                k2 ^= u64::from(byte) << (8 * (i - 8));
            }
        }
        if tail.len() > 8 {
            k2 = k2.wrapping_mul(C2_64);
            k2 = k2.rotate_left(33);
            k2 = k2.wrapping_mul(C1_64);
            h2 ^= k2;
        }
        k1 = k1.wrapping_mul(C1_64);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2_64);
        h1 ^= k1;
    }

    let len = data.len() as u64;
    h1 ^= len;
    h2 ^= len;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

/// MurmurHash3 x64 128-bit truncated to its first 64-bit half — the form
/// the filters consume.
///
/// # Examples
///
/// ```
/// use vcf_hash::{murmur3_x64_64, murmur3_x64_128};
/// let data = b"online applications";
/// assert_eq!(murmur3_x64_64(data, 7), murmur3_x64_128(data, 7).0);
/// ```
#[inline]
pub fn murmur3_x64_64(data: &[u8], seed: u64) -> u64 {
    murmur3_x64_128(data, seed).0
}

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    // Published verification vectors for MurmurHash3 x86_32 (SMHasher and
    // the widely reproduced Stack Overflow vector table).
    #[test]
    fn x86_32_empty_input_seeds() {
        assert_eq!(murmur3_x86_32(b"", 0), 0x0000_0000);
        assert_eq!(murmur3_x86_32(b"", 1), 0x514e_28b7);
        assert_eq!(murmur3_x86_32(b"", 0xffff_ffff), 0x81f1_6f39);
    }

    #[test]
    fn x86_32_zero_bytes() {
        assert_eq!(murmur3_x86_32(&[0x00], 0), 0x514e_28b7);
        assert_eq!(murmur3_x86_32(&[0x00, 0x00], 0), 0x30f4_c306);
        assert_eq!(murmur3_x86_32(&[0x00, 0x00, 0x00], 0), 0x85f0_b427);
        assert_eq!(murmur3_x86_32(&[0x00, 0x00, 0x00, 0x00], 0), 0x2362_f9de);
    }

    #[test]
    fn x86_32_pattern_bytes() {
        assert_eq!(murmur3_x86_32(&[0xff, 0xff, 0xff, 0xff], 0), 0x7629_3b50);
        assert_eq!(murmur3_x86_32(&[0x21, 0x43, 0x65, 0x87], 0), 0xf55b_516b);
        assert_eq!(
            murmur3_x86_32(&[0x21, 0x43, 0x65, 0x87], 0x5082_edee),
            0x2362_f9de
        );
        assert_eq!(murmur3_x86_32(&[0x21, 0x43, 0x65], 0), 0x7e4a_8634);
        assert_eq!(murmur3_x86_32(&[0x21, 0x43], 0), 0xa0f7_b07a);
        assert_eq!(murmur3_x86_32(&[0x21], 0), 0x7266_1cf4);
    }

    #[test]
    fn x64_128_empty_is_zero_with_zero_seed() {
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
    }

    #[test]
    fn x64_64_is_first_half() {
        for len in 0..40 {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(murmur3_x64_64(&data, 99), murmur3_x64_128(&data, 99).0);
        }
    }

    #[test]
    fn x64_128_tail_lengths_all_distinct() {
        // Every tail length 0..=16 must hit a distinct code path and yield
        // a distinct hash for distinct inputs.
        let mut seen = std::collections::HashSet::new();
        for len in 0..=33 {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            assert!(
                seen.insert(murmur3_x64_128(&data, 0)),
                "collision at len {len}"
            );
        }
    }

    #[test]
    fn seed_changes_output() {
        let data = b"seed sensitivity";
        assert_ne!(murmur3_x64_64(data, 0), murmur3_x64_64(data, 1));
        assert_ne!(murmur3_x86_32(data, 0), murmur3_x86_32(data, 1));
    }
}
