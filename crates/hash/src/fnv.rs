//! Fowler–Noll–Vo hash functions (FNV-1 and FNV-1a, 32- and 64-bit).
//!
//! FNV is the paper's default hash function. The algorithm multiplies a
//! running hash by a fixed prime and XORs in each input byte; the `1a`
//! variant XORs first and multiplies second, which diffuses low-order bits
//! slightly better and is the variant recommended by the FNV authors.
//!
//! Reference: <http://www.isthe.com/chongo/tech/comp/fnv/> (the paper's
//! footnote 3).

/// 32-bit FNV offset basis.
pub const FNV32_OFFSET: u32 = 0x811c_9dc5;
/// 32-bit FNV prime.
pub const FNV32_PRIME: u32 = 0x0100_0193;
/// 64-bit FNV offset basis.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a, 64-bit: XOR the byte in, then multiply by the prime.
///
/// # Examples
///
/// ```
/// use vcf_hash::fnv1a_64;
/// assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
/// ```
#[inline]
pub fn fnv1a_64(data: &[u8]) -> u64 {
    let mut hash = FNV64_OFFSET;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV64_PRIME);
    }
    hash
}

/// FNV-1, 64-bit: multiply by the prime, then XOR the byte in.
///
/// # Examples
///
/// ```
/// use vcf_hash::fnv1_64;
/// assert_eq!(fnv1_64(b""), 0xcbf29ce484222325);
/// ```
#[inline]
pub fn fnv1_64(data: &[u8]) -> u64 {
    let mut hash = FNV64_OFFSET;
    for &byte in data {
        hash = hash.wrapping_mul(FNV64_PRIME);
        hash ^= u64::from(byte);
    }
    hash
}

/// FNV-1a, 32-bit.
///
/// # Examples
///
/// ```
/// use vcf_hash::fnv1a_32;
/// assert_eq!(fnv1a_32(b""), 0x811c9dc5);
/// ```
#[inline]
pub fn fnv1a_32(data: &[u8]) -> u32 {
    let mut hash = FNV32_OFFSET;
    for &byte in data {
        hash ^= u32::from(byte);
        hash = hash.wrapping_mul(FNV32_PRIME);
    }
    hash
}

/// FNV-1, 32-bit.
#[inline]
pub fn fnv1_32(data: &[u8]) -> u32 {
    let mut hash = FNV32_OFFSET;
    for &byte in data {
        hash = hash.wrapping_mul(FNV32_PRIME);
        hash ^= u32::from(byte);
    }
    hash
}

/// Streaming FNV-1a 64-bit hasher for incremental input.
///
/// Produces bit-identical results to [`fnv1a_64`] over the concatenated
/// input.
///
/// # Examples
///
/// ```
/// use vcf_hash::fnv::Fnv1a64;
/// use vcf_hash::fnv1a_64;
///
/// let mut hasher = Fnv1a64::new();
/// hasher.update(b"foo");
/// hasher.update(b"bar");
/// assert_eq!(hasher.finish(), fnv1a_64(b"foobar"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fnv1a64 {
    state: u64,
}

impl Fnv1a64 {
    /// Creates a hasher initialized to the FNV-1a offset basis.
    pub const fn new() -> Self {
        Self {
            state: FNV64_OFFSET,
        }
    }

    /// Absorbs `data` into the running hash.
    #[inline]
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV64_PRIME);
        }
    }

    /// Returns the current hash value.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Published vectors from the FNV reference page test suite.
    #[test]
    fn fnv1a_64_known_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"b"), 0xaf63_df4c_8601_f1a5);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv1_64_known_vectors() {
        assert_eq!(fnv1_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1_64(b"a"), 0xaf63_bd4c_8601_b7be);
        assert_eq!(fnv1_64(b"foobar"), 0x340d_8765_a4dd_a9c2);
    }

    #[test]
    fn fnv1a_32_known_vectors() {
        assert_eq!(fnv1a_32(b""), 0x811c_9dc5);
        assert_eq!(fnv1a_32(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a_32(b"foobar"), 0xbf9c_f968);
    }

    #[test]
    fn fnv1_32_known_vectors() {
        assert_eq!(fnv1_32(b""), 0x811c_9dc5);
        assert_eq!(fnv1_32(b"a"), 0x050c_5d7e);
        assert_eq!(fnv1_32(b"foobar"), 0x31f0_b262);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut h = Fnv1a64::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), fnv1a_64(data), "split at {split}");
        }
    }

    #[test]
    fn variants_differ_on_nonempty_input() {
        assert_ne!(fnv1_64(b"x"), fnv1a_64(b"x"));
        assert_ne!(fnv1_32(b"x"), fnv1a_32(b"x"));
    }

    #[test]
    fn single_bit_flip_changes_hash() {
        let a = fnv1a_64(b"\x00\x00\x00\x00");
        let b = fnv1a_64(b"\x01\x00\x00\x00");
        assert_ne!(a, b);
    }
}
