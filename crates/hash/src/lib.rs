//! From-scratch implementations of the hash functions used by the paper's
//! evaluation (Section VI, Table IV): **FNV**, **MurmurHash3** and
//! **DJBHash**, plus the **SplitMix64** finalizer used internally for
//! fingerprint mixing and seeding.
//!
//! The Vertical Cuckoo filter paper benchmarks every filter under each of
//! these functions, so they are first-class substrates here rather than
//! external dependencies. All implementations are pure safe Rust, verified
//! against published test vectors where such vectors exist.
//!
//! # Examples
//!
//! ```
//! use vcf_hash::HashKind;
//!
//! let h = HashKind::Fnv1a.hash64(b"hello world");
//! assert_ne!(h, HashKind::Djb2.hash64(b"hello world"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod djb2;
pub mod fnv;
pub mod murmur3;
pub mod splitmix;

pub use djb2::djb2_64;
pub use fnv::{fnv1_32, fnv1_64, fnv1a_32, fnv1a_64};
pub use murmur3::{murmur3_x64_128, murmur3_x64_64, murmur3_x86_32};
pub use splitmix::{mix64, SplitMix64};

/// Selects which byte-string hash function a filter uses.
///
/// Matches the three functions compared in the paper's Table IV. The
/// default is [`HashKind::Fnv1a`], mirroring the paper's main experimental
/// setup ("The hash function used in our experiments is FNV hash").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum HashKind {
    /// FNV-1a, 64-bit variant — the paper's default.
    #[default]
    Fnv1a,
    /// MurmurHash3, x64 128-bit variant truncated to 64 bits.
    Murmur3,
    /// Bernstein's DJB2 accumulated into 64 bits.
    Djb2,
}

impl HashKind {
    /// All supported hash kinds, in Table IV order.
    pub const ALL: [HashKind; 3] = [HashKind::Fnv1a, HashKind::Murmur3, HashKind::Djb2];

    /// Hashes `data` to a 64-bit value with this function.
    ///
    /// # Examples
    ///
    /// ```
    /// use vcf_hash::HashKind;
    /// assert_eq!(HashKind::Fnv1a.hash64(b""), 0xcbf2_9ce4_8422_2325);
    /// ```
    #[inline]
    pub fn hash64(self, data: &[u8]) -> u64 {
        match self {
            HashKind::Fnv1a => fnv1a_64(data),
            HashKind::Murmur3 => murmur3_x64_64(data, 0),
            HashKind::Djb2 => djb2_64(data),
        }
    }

    /// Hashes a fingerprint value (as stored in a cuckoo slot) to 64 bits.
    ///
    /// This is the `hash(η_x)` of the paper's Equ. 1/3: the value whose
    /// masked fragments index the alternate candidate buckets. The
    /// fingerprint is hashed as its 4-byte little-endian encoding, so the
    /// result depends only on the stored fingerprint — never on the
    /// original key — which is exactly the property partial-key cuckoo
    /// hashing and vertical hashing rely on.
    #[inline]
    pub fn hash_fingerprint(self, fingerprint: u32) -> u64 {
        self.hash64(&fingerprint.to_le_bytes())
    }

    /// Stable numeric code for serialization (see `from_code`).
    pub fn code(self) -> u8 {
        match self {
            HashKind::Fnv1a => 0,
            HashKind::Murmur3 => 1,
            HashKind::Djb2 => 2,
        }
    }

    /// Inverse of [`HashKind::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<HashKind> {
        match code {
            0 => Some(HashKind::Fnv1a),
            1 => Some(HashKind::Murmur3),
            2 => Some(HashKind::Djb2),
            _ => None,
        }
    }

    /// Short display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            HashKind::Fnv1a => "FNV",
            HashKind::Murmur3 => "Murmur3",
            HashKind::Djb2 => "DJB2",
        }
    }
}

impl core::fmt::Display for HashKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_disagree_on_typical_input() {
        let data = b"vertical cuckoo filter";
        let h: Vec<u64> = HashKind::ALL.iter().map(|k| k.hash64(data)).collect();
        assert_ne!(h[0], h[1]);
        assert_ne!(h[0], h[2]);
        assert_ne!(h[1], h[2]);
    }

    #[test]
    fn hash_fingerprint_depends_only_on_fingerprint() {
        for kind in HashKind::ALL {
            assert_eq!(kind.hash_fingerprint(42), kind.hash_fingerprint(42));
            assert_ne!(kind.hash_fingerprint(42), kind.hash_fingerprint(43));
        }
    }

    #[test]
    fn default_is_fnv() {
        assert_eq!(HashKind::default(), HashKind::Fnv1a);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(HashKind::Fnv1a.to_string(), "FNV");
        assert_eq!(HashKind::Murmur3.to_string(), "Murmur3");
        assert_eq!(HashKind::Djb2.to_string(), "DJB2");
    }

    #[test]
    fn code_roundtrip() {
        for kind in HashKind::ALL {
            assert_eq!(HashKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(HashKind::from_code(200), None);
    }

    #[test]
    fn hash64_is_deterministic() {
        for kind in HashKind::ALL {
            assert_eq!(kind.hash64(b"abc"), kind.hash64(b"abc"));
        }
    }
}
