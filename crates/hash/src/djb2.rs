//! Bernstein's DJB2 string hash (the paper's "DJBHash",
//! <http://www.cse.yorku.ca/~oz/hash.html>).
//!
//! `hash = hash * 33 + byte`, starting from the magic constant 5381. DJB2
//! is a deliberately simple multiplicative hash; the paper includes it in
//! Table IV to show that vertical hashing's insertion-time advantage holds
//! even under weak, cheap hash functions.

/// DJB2 initial state.
pub const DJB2_INIT: u64 = 5381;

/// DJB2 accumulated in 64 bits.
///
/// # Examples
///
/// ```
/// use vcf_hash::djb2_64;
/// assert_eq!(djb2_64(b""), 5381);
/// ```
#[inline]
pub fn djb2_64(data: &[u8]) -> u64 {
    let mut hash = DJB2_INIT;
    for &byte in data {
        // hash * 33 + byte, expressed as shift-add exactly like the original.
        hash = (hash << 5).wrapping_add(hash).wrapping_add(u64::from(byte));
    }
    hash
}

/// DJB2 accumulated in 32 bits (the original C formulation's width on
/// 32-bit platforms).
#[inline]
pub fn djb2_32(data: &[u8]) -> u32 {
    let mut hash = DJB2_INIT as u32;
    for &byte in data {
        hash = (hash << 5).wrapping_add(hash).wrapping_add(u32::from(byte));
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_init() {
        assert_eq!(djb2_64(b""), 5381);
        assert_eq!(djb2_32(b""), 5381);
    }

    #[test]
    fn single_byte_formula() {
        // 5381 * 33 + 'a' (97) = 177670
        assert_eq!(djb2_64(b"a"), 5381 * 33 + 97);
    }

    #[test]
    fn multi_byte_formula() {
        // Direct expansion of the recurrence for "ab".
        let expected = (5381u64 * 33 + 97) * 33 + 98;
        assert_eq!(djb2_64(b"ab"), expected);
    }

    #[test]
    fn widths_agree_modulo_2_pow_32() {
        let data = b"the quick brown fox";
        assert_eq!(djb2_64(data) as u32, djb2_32(data));
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(djb2_64(b"ab"), djb2_64(b"ba"));
    }
}
