//! SARIF 2.1.0 emission — `vcf-xtask lint --format sarif`.
//!
//! One run, one tool (`vcf-xtask`), one result per diagnostic. The
//! schema subset here is what GitHub code scanning consumes for
//! PR-diff annotations: tool driver with rule metadata, and results
//! carrying `ruleId`, a message, and a single physical location with a
//! one-line region. Spans are 1-based in both SARIF and our
//! [`Diagnostic`], so coordinates pass through untouched.

use crate::diag::Diagnostic;
use crate::json::Value;
use crate::rules;

/// The SARIF schema URI required by `$schema`.
const SCHEMA: &str = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Tool version reported in the driver block.
const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Meta-rules emitted by the waiver machinery rather than a [`rules::Rule`].
const META_RULES: &[(&str, &str)] = &[
    ("lint-waiver", "waivers must name a rule and carry a reason"),
    (
        "stale-waiver",
        "waivers that no longer suppress anything must be deleted",
    ),
];

/// Renders a full SARIF 2.1.0 log for one lint run.
pub fn report(diags: &[Diagnostic]) -> String {
    let mut rule_meta: Vec<(String, String)> = rules::all_rules()
        .iter()
        .map(|r| (r.id().to_owned(), r.summary().to_owned()))
        .collect();
    for (id, summary) in META_RULES {
        rule_meta.push(((*id).to_owned(), (*summary).to_owned()));
    }
    let rule_index = |id: &str| rule_meta.iter().position(|(rid, _)| rid == id);

    let rules_json = Value::Arr(
        rule_meta
            .iter()
            .map(|(id, summary)| {
                Value::Obj(vec![
                    ("id".into(), Value::Str(id.clone())),
                    (
                        "shortDescription".into(),
                        Value::Obj(vec![("text".into(), Value::Str(summary.clone()))]),
                    ),
                    (
                        "defaultConfiguration".into(),
                        Value::Obj(vec![("level".into(), Value::Str("error".into()))]),
                    ),
                ])
            })
            .collect(),
    );

    let results = Value::Arr(
        diags
            .iter()
            .map(|d| {
                let mut message = d.message.clone();
                if !d.hint.is_empty() {
                    message.push_str(" \u{2014} hint: ");
                    message.push_str(&d.hint);
                }
                let mut result = vec![
                    ("ruleId".into(), Value::Str(d.rule.to_owned())),
                    ("level".into(), Value::Str("error".into())),
                    (
                        "message".into(),
                        Value::Obj(vec![("text".into(), Value::Str(message))]),
                    ),
                    (
                        "locations".into(),
                        Value::Arr(vec![Value::Obj(vec![(
                            "physicalLocation".into(),
                            Value::Obj(vec![
                                (
                                    "artifactLocation".into(),
                                    Value::Obj(vec![
                                        ("uri".into(), Value::Str(d.file.clone())),
                                        ("uriBaseId".into(), Value::Str("SRCROOT".into())),
                                    ]),
                                ),
                                (
                                    "region".into(),
                                    Value::Obj(vec![
                                        ("startLine".into(), Value::Num(f64::from(d.line))),
                                        ("startColumn".into(), Value::Num(f64::from(d.col))),
                                    ]),
                                ),
                            ]),
                        )])]),
                    ),
                ];
                if let Some(i) = rule_index(d.rule) {
                    #[allow(clippy::cast_precision_loss)]
                    result.insert(1, ("ruleIndex".into(), Value::Num(i as f64)));
                }
                Value::Obj(result)
            })
            .collect(),
    );

    let run = Value::Obj(vec![
        (
            "tool".into(),
            Value::Obj(vec![(
                "driver".into(),
                Value::Obj(vec![
                    ("name".into(), Value::Str("vcf-xtask".into())),
                    ("version".into(), Value::Str(VERSION.into())),
                    (
                        "informationUri".into(),
                        Value::Str("https://example.invalid/vcf-xtask".into()),
                    ),
                    ("rules".into(), rules_json),
                ]),
            )]),
        ),
        (
            "originalUriBaseIds".into(),
            Value::Obj(vec![(
                "SRCROOT".into(),
                Value::Obj(vec![("uri".into(), Value::Str("file:///".into()))]),
            )]),
        ),
        ("columnKind".into(), Value::Str("unicodeCodePoints".into())),
        ("results".into(), results),
    ]);

    Value::Obj(vec![
        ("$schema".into(), Value::Str(SCHEMA.into())),
        ("version".into(), Value::Str("2.1.0".into())),
        ("runs".into(), Value::Arr(vec![run])),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "no-panic-hot-path",
            file: "crates/core/src/vcf.rs".into(),
            line: 42,
            col: 7,
            message: "hot path can reach a panic".into(),
            hint: "use get()".into(),
        }
    }

    #[test]
    fn emits_required_toplevel_fields() {
        let log = report(&[sample()]);
        let v = json::parse(&log).expect("sarif output must be valid json");
        assert_eq!(
            v.get("version").and_then(json::Value::as_str),
            Some("2.1.0")
        );
        assert!(v
            .get("$schema")
            .and_then(json::Value::as_str)
            .unwrap()
            .contains("2.1.0"));
        let runs = v.get("runs").and_then(json::Value::as_arr).unwrap();
        assert_eq!(runs.len(), 1);
        let driver = runs[0].get("tool").unwrap().get("driver").unwrap();
        assert_eq!(
            driver.get("name").and_then(json::Value::as_str),
            Some("vcf-xtask")
        );
        assert!(!driver
            .get("rules")
            .and_then(json::Value::as_arr)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn result_location_carries_span() {
        let log = report(&[sample()]);
        let v = json::parse(&log).unwrap();
        let results = v.get("runs").and_then(json::Value::as_arr).unwrap()[0]
            .get("results")
            .and_then(json::Value::as_arr)
            .unwrap();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(
            r.get("ruleId").and_then(json::Value::as_str),
            Some("no-panic-hot-path")
        );
        let region = r.get("locations").and_then(json::Value::as_arr).unwrap()[0]
            .get("physicalLocation")
            .unwrap()
            .get("region")
            .unwrap();
        assert_eq!(
            region.get("startLine").and_then(json::Value::as_num),
            Some(42.0)
        );
        assert_eq!(
            region.get("startColumn").and_then(json::Value::as_num),
            Some(7.0)
        );
    }

    #[test]
    fn empty_run_still_validates() {
        let log = report(&[]);
        let v = json::parse(&log).unwrap();
        let results = v.get("runs").and_then(json::Value::as_arr).unwrap()[0]
            .get("results")
            .and_then(json::Value::as_arr)
            .unwrap();
        assert!(results.is_empty());
    }
}
