//! The workspace call graph: name-level call resolution scoped by crate
//! dependencies, plus the reachability engine the transitive rules run
//! on.
//!
//! # Resolution model
//!
//! The parser gives us call sites as *(name, shape)* pairs; no type
//! information exists. Resolution therefore over-approximates: a call
//! resolves to **every** workspace function the name could denote —
//! method calls to every method of that name, bare calls to every free
//! function of that name, path calls to either. Over-approximation is
//! sound for reachability rules (it can only add edges, never hide
//! one), and two scoping facts keep it tight in practice:
//!
//! * **Crate confinement** — a call in crate `C` can only resolve into
//!   `C` itself or crates `C` declares in `[dependencies]`
//!   (dev-dependencies are excluded: test-only code cannot sit on a
//!   production hot path). A panic in `vcf-baselines` (which nothing
//!   depends on) cannot contaminate `vcf-core`'s hot paths through an
//!   accidental name collision.
//! * **Qualifier matching** — a `Type::method` path call resolves only
//!   to methods of a workspace type named `Type` (`Self::` maps to the
//!   caller's own type), so `io::Error::new` does not fan out to every
//!   constructor in the workspace. A lowercase qualifier
//!   (`bulk::build_from_iter`) restricts to free functions.
//! * **Source candidacy** — only non-test functions in `crates/*/src`
//!   and the façade `src/` are resolution targets; test helpers and
//!   bench harness code never become edges.
//!
//! A method call whose name matches *only* bodyless trait declarations
//! falls back to **conservative may-panic**: any impl outside the graph
//! could panic, so the caller must treat the call as a potential sink
//! (ISSUE-10's trait-dispatch fallback). External names (std, shimmed
//! deps) resolve to nothing and are assumed panic-free — the panicky
//! std idioms (`unwrap`, indexing, …) are caught *at the call site* by
//! the sink scan instead.

use crate::parser::{CallKind, DanglingMarker, EnumInfo, FnInfo, ParsedFile};
use crate::source::SourceFile;
use std::collections::HashMap;
use std::fs;
use std::path::Path;

/// Crate-dependency map: for each crate key, the set of crate keys its
/// call sites may resolve into (always includes itself).
#[derive(Debug, Default)]
pub struct CrateDeps {
    /// `crate dir → allowed dep dirs`. Empty ⇒ unknown ⇒ allow all.
    map: HashMap<String, Vec<String>>,
}

/// Key of the workspace-root façade package in [`CrateDeps`].
const ROOT_CRATE: &str = ".";

/// Method names ubiquitous on std containers. A `.name()` call with one
/// of these names skips the conservative trait-decl fallback — it is
/// overwhelmingly a `Vec`/slice/iterator call, and flagging every one
/// as may-panic because some workspace trait shares the name would bury
/// real findings. Same-named *workspace bodies* still resolve normally.
const STD_COLLISION_METHODS: &[&str] = &[
    "push", "pop", "len", "is_empty", "capacity", "clear", "extend", "reserve",
];

impl CrateDeps {
    /// The crate key a workspace-relative path belongs to.
    pub fn crate_of(rel: &str) -> &str {
        if let Some(rest) = rel.strip_prefix("crates/") {
            if let Some(slash) = rest.find('/') {
                return &rest[..slash];
            }
        }
        ROOT_CRATE
    }

    /// Whether a call in `from` may resolve to a definition in `to`.
    pub fn allows(&self, from: &str, to: &str) -> bool {
        if from == to || self.map.is_empty() {
            return true;
        }
        self.map
            .get(from)
            .is_some_and(|deps| deps.iter().any(|d| d == to))
    }

    /// Loads the dependency map from the workspace's `Cargo.toml`s.
    /// Returns an empty (allow-all) map when manifests are unreadable —
    /// in-memory fixture contexts land here.
    pub fn load(root: &Path) -> Self {
        // Workspace dep name → crate dir, from [workspace.dependencies]
        // entries of the form `vcf-x = { path = "crates/x" }`.
        let mut name_to_dir: HashMap<String, String> = HashMap::new();
        let root_toml = fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
        for line in root_toml.lines() {
            let Some((name, rest)) = line.split_once('=') else {
                continue;
            };
            if let Some(idx) = rest.find("path = \"crates/") {
                let tail = &rest[idx + "path = \"crates/".len()..];
                if let Some(end) = tail.find('"') {
                    name_to_dir.insert(name.trim().to_owned(), tail[..end].to_owned());
                }
            }
        }
        let mut map = HashMap::new();
        // The façade package's own [dependencies] live in the root
        // manifest below the [workspace.*] sections.
        map.insert(
            ROOT_CRATE.to_owned(),
            deps_in_manifest(&root_toml, &name_to_dir),
        );
        let crates_dir = root.join("crates");
        if let Ok(entries) = fs::read_dir(&crates_dir) {
            for entry in entries.filter_map(Result::ok) {
                let Ok(dir) = entry.file_name().into_string() else {
                    continue;
                };
                let Ok(toml) = fs::read_to_string(entry.path().join("Cargo.toml")) else {
                    continue;
                };
                map.insert(dir, deps_in_manifest(&toml, &name_to_dir));
            }
        }
        Self { map }
    }
}

/// Crate dirs named under a manifest's `[dependencies]` section.
/// Dev-dependencies are deliberately skipped: they only link into test
/// binaries, which are never resolution targets anyway.
fn deps_in_manifest(toml: &str, name_to_dir: &HashMap<String, String>) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps {
            continue;
        }
        let Some((name, _)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim().trim_end_matches(".workspace").trim();
        if let Some(dir) = name_to_dir.get(name) {
            if !out.contains(dir) {
                out.push(dir.clone());
            }
        }
    }
    out
}

/// The assembled workspace analysis: parsed items plus the resolved
/// call graph. Built once per lint run and shared by every rule.
#[derive(Debug)]
pub struct Analysis {
    /// Every parsed function, workspace-wide (arena; edges index this).
    pub fns: Vec<FnInfo>,
    /// Every parsed enum.
    pub enums: Vec<EnumInfo>,
    /// Markers that bound to no item.
    pub dangling: Vec<DanglingMarker>,
    /// `edges[f]` = indices of fns the body of `fns[f]` may call.
    pub edges: Vec<Vec<usize>>,
    /// Call sites that resolved only to bodyless trait declarations:
    /// `(caller fn index, call index within the caller)`.
    pub conservative_calls: Vec<(usize, usize)>,
    /// Crate-dependency scoping used during resolution.
    pub deps: CrateDeps,
}

impl Analysis {
    /// Parses every file and resolves the call graph. `root` enables
    /// crate-dependency scoping; `None` (fixtures) allows all edges.
    pub fn build(files: &[SourceFile], root: Option<&Path>) -> Self {
        let mut fns = Vec::new();
        let mut enums = Vec::new();
        let mut dangling = Vec::new();
        for (idx, file) in files.iter().enumerate() {
            let ParsedFile { fns: f, enums: e } =
                crate::parser::parse_file(file, idx, &mut dangling);
            fns.extend(f);
            enums.extend(e);
        }
        let deps = root.map(CrateDeps::load).unwrap_or_default();

        // Candidate indexes. Only live src fns with bodies are targets;
        // bodyless trait decls index separately for the conservative
        // fallback.
        let mut methods: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut free: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut trait_decls: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            if f.test {
                continue;
            }
            if f.trait_decl {
                trait_decls.entry(f.name.as_str()).or_default().push(i);
            } else if f.body.is_some() {
                if f.is_method {
                    methods.entry(f.name.as_str()).or_default().push(i);
                } else {
                    free.entry(f.name.as_str()).or_default().push(i);
                }
            }
        }

        // Trait names = owners of at least one bodyless declaration.
        // `Trait::method(x)` (UFCS dispatch) must fan out to every impl
        // candidate, unlike `Type::method` which pins one owner.
        let trait_names: std::collections::HashSet<&str> = fns
            .iter()
            .filter(|f| f.trait_decl)
            .filter_map(|f| f.owner.as_deref())
            .collect();

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut conservative_calls = Vec::new();
        for (i, f) in fns.iter().enumerate() {
            let from_crate = CrateDeps::crate_of(&files[f.file].rel);
            let mut out = Vec::new();
            for (ci, call) in f.calls.iter().enumerate() {
                let name = call.name.as_str();
                // Body candidates, plus the bodyless trait declarations
                // that trigger the conservative fallback if no body
                // resolves. A bare call can never be a trait method
                // (those need a receiver or a qualified path), so it
                // gets no fallback set.
                let mut cands: Vec<usize> = Vec::new();
                let mut decl_cands: Vec<usize> = Vec::new();
                let owner_is = |t: usize, owner: Option<&str>| fns[t].owner.as_deref() == owner;
                match call.kind {
                    CallKind::Macro => {}
                    CallKind::Method => {
                        cands.extend(methods.get(name).into_iter().flatten());
                        // Std-collision exemption: `.push()`, `.len()`
                        // and friends on std containers would otherwise
                        // hit every same-named bodyless trait decl and
                        // drown the conservative fallback in noise.
                        // Real workspace bodies still resolve above.
                        if !STD_COLLISION_METHODS.contains(&name) {
                            decl_cands.extend(trait_decls.get(name).into_iter().flatten());
                        }
                    }
                    CallKind::Bare => {
                        cands.extend(free.get(name).into_iter().flatten());
                    }
                    CallKind::Path => match call.qual.as_deref() {
                        // `Self::helper` — the caller's own type.
                        Some("Self") => {
                            let owner = f.owner.as_deref();
                            cands.extend(
                                methods
                                    .get(name)
                                    .into_iter()
                                    .flatten()
                                    .filter(|&&t| owner_is(t, owner)),
                            );
                            decl_cands.extend(
                                trait_decls
                                    .get(name)
                                    .into_iter()
                                    .flatten()
                                    .filter(|&&t| owner_is(t, owner)),
                            );
                        }
                        // `Trait::method(x)` — UFCS dispatch: any impl
                        // may run, so fan out to every same-named
                        // method body.
                        Some(q) if trait_names.contains(q) => {
                            cands.extend(methods.get(name).into_iter().flatten());
                            decl_cands.extend(
                                trait_decls
                                    .get(name)
                                    .into_iter()
                                    .flatten()
                                    .filter(|&&t| owner_is(t, Some(q))),
                            );
                        }
                        // `Type::method` — only methods of a workspace
                        // type with that exact name; `io::Error::new`
                        // resolves to nothing (external).
                        Some(q) if q.starts_with(char::is_uppercase) => {
                            cands.extend(
                                methods
                                    .get(name)
                                    .into_iter()
                                    .flatten()
                                    .filter(|&&t| owner_is(t, Some(q))),
                            );
                            decl_cands.extend(
                                trait_decls
                                    .get(name)
                                    .into_iter()
                                    .flatten()
                                    .filter(|&&t| owner_is(t, Some(q))),
                            );
                        }
                        // `module::helper` — free functions.
                        Some(_) => {
                            cands.extend(free.get(name).into_iter().flatten());
                        }
                        // Unrecognised qualifier shape (e.g.
                        // `<T as Trait>::f`): fan out to everything.
                        None => {
                            cands.extend(methods.get(name).into_iter().flatten());
                            cands.extend(free.get(name).into_iter().flatten());
                            decl_cands.extend(trait_decls.get(name).into_iter().flatten());
                        }
                    },
                }
                let mut resolved = false;
                for &target in &cands {
                    let to_crate = CrateDeps::crate_of(&files[fns[target].file].rel);
                    if deps.allows(from_crate, to_crate) {
                        resolved = true;
                        if !out.contains(&target) {
                            out.push(target);
                        }
                    }
                }
                // Conservative fallback: the name resolves only to
                // bodyless trait declarations, so some impl outside the
                // graph provides the body.
                if !resolved
                    && decl_cands.iter().any(|&d| {
                        deps.allows(from_crate, CrateDeps::crate_of(&files[fns[d].file].rel))
                    })
                {
                    conservative_calls.push((i, ci));
                }
            }
            edges[i] = out;
        }
        Self {
            fns,
            enums,
            dangling,
            edges,
            conservative_calls,
            deps,
        }
    }

    /// Forward reachability from `roots` over the call edges. Returns
    /// `parent[f] = Some(caller)` for every reached fn (roots map to
    /// themselves), `None` for unreached fns. Cycles are handled by the
    /// visited set — each node is expanded once.
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(r);
                queue.push(r);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            for &next in &self.edges[cur] {
                if parent[next].is_none() {
                    parent[next] = Some(cur);
                    queue.push(next);
                }
            }
        }
        parent
    }

    /// The call chain `root → … → target` implied by a parent map from
    /// [`Self::reachable_from`], rendered with fn labels. Truncated in
    /// the middle past eight hops.
    pub fn chain(&self, parent: &[Option<usize>], target: usize, files: &[SourceFile]) -> String {
        let mut hops = vec![target];
        let mut cur = target;
        while let Some(p) = parent[cur] {
            if p == cur {
                break;
            }
            cur = p;
            hops.push(cur);
        }
        hops.reverse();
        let labels: Vec<String> = hops.iter().map(|&f| self.fns[f].label(files)).collect();
        if labels.len() > 8 {
            format!(
                "{} \u{2192} … \u{2192} {}",
                labels[..3].join(" \u{2192} "),
                labels[labels.len() - 3..].join(" \u{2192} ")
            )
        } else {
            labels.join(" \u{2192} ")
        }
    }

    /// Indices of hot-path-annotated root fns.
    pub fn hot_roots(&self) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| self.fns[i].hot_path && !self.fns[i].test)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(sources: &[(&str, &str)]) -> (Analysis, Vec<SourceFile>) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| SourceFile::new(*rel, *src))
            .collect();
        let analysis = Analysis::build(&files, None);
        (analysis, files)
    }

    fn idx(a: &Analysis, name: &str) -> usize {
        a.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn direct_and_two_deep_edges() {
        let (a, _) = analyze(&[(
            "crates/demo/src/lib.rs",
            "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        )]);
        let parent = a.reachable_from(&[idx(&a, "top")]);
        assert!(parent[idx(&a, "leaf")].is_some(), "leaf reachable two deep");
        assert_eq!(parent[idx(&a, "leaf")], Some(idx(&a, "mid")));
    }

    #[test]
    fn cycles_terminate_and_stay_reachable() {
        let (a, _) = analyze(&[(
            "crates/demo/src/lib.rs",
            "fn ping() { pong(); }\nfn pong() { ping(); }\nfn island() {}\n",
        )]);
        let parent = a.reachable_from(&[idx(&a, "ping")]);
        assert!(parent[idx(&a, "pong")].is_some());
        assert!(parent[idx(&a, "island")].is_none());
    }

    #[test]
    fn method_calls_resolve_to_all_same_named_methods() {
        let (a, _) = analyze(&[(
            "crates/demo/src/lib.rs",
            "struct A;\nimpl A {\n    fn probe(&self) {}\n}\n\
             struct B;\nimpl B {\n    fn probe(&self) {}\n}\n\
             fn caller(a: &A) { a.probe(); }\n",
        )]);
        let edges = &a.edges[idx(&a, "caller")];
        assert_eq!(edges.len(), 2, "both probe impls are candidates");
    }

    #[test]
    fn bare_calls_do_not_resolve_to_methods() {
        let (a, _) = analyze(&[(
            "crates/demo/src/lib.rs",
            "struct A;\nimpl A {\n    fn helper(&self) {}\n}\nfn caller() { helper(); }\n",
        )]);
        assert!(a.edges[idx(&a, "caller")].is_empty());
    }

    #[test]
    fn trait_decl_without_body_is_conservative() {
        let (a, _) = analyze(&[(
            "crates/demo/src/lib.rs",
            "trait Backend {\n    fn exec(&self);\n}\nfn run(b: &dyn Backend) { b.exec(); }\n",
        )]);
        let run = idx(&a, "run");
        assert!(a.edges[run].is_empty());
        assert_eq!(a.conservative_calls, [(run, 0)]);
    }

    #[test]
    fn trait_with_impl_resolves_to_body_not_conservative() {
        let (a, _) = analyze(&[(
            "crates/demo/src/lib.rs",
            "trait Backend {\n    fn exec(&self);\n}\n\
             struct Real;\nimpl Backend for Real {\n    fn exec(&self) {}\n}\n\
             fn run(b: &Real) { b.exec(); }\n",
        )]);
        let run = idx(&a, "run");
        assert_eq!(a.edges[run].len(), 1);
        assert!(a.conservative_calls.is_empty());
    }

    #[test]
    fn cross_crate_edges_resolve() {
        let (a, _) = analyze(&[
            (
                "crates/core/src/vcf.rs",
                "fn lookup(t: &Engine) { t.contains_fp(); }\n",
            ),
            (
                "crates/table/src/bucket.rs",
                "struct Engine;\nimpl Engine {\n    fn contains_fp(&self) {}\n}\n",
            ),
        ]);
        assert_eq!(a.edges[idx(&a, "lookup")].len(), 1, "core → table edge");
    }

    #[test]
    fn test_fns_are_not_candidates() {
        let (a, _) = analyze(&[
            (
                "crates/demo/src/lib.rs",
                "fn caller() { helper(); }\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
            ),
            ("crates/demo/tests/it.rs", "fn helper() {}\n"),
        ]);
        assert!(
            a.edges[idx(&a, "caller")].is_empty(),
            "test fns must not become resolution targets"
        );
    }

    #[test]
    fn chain_renders_root_to_target() {
        let (a, files) = analyze(&[(
            "crates/demo/src/lib.rs",
            "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        )]);
        let parent = a.reachable_from(&[idx(&a, "top")]);
        let chain = a.chain(&parent, idx(&a, "leaf"), &files);
        assert_eq!(chain, "lib::top \u{2192} lib::mid \u{2192} lib::leaf");
    }

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(CrateDeps::crate_of("crates/core/src/vcf.rs"), "core");
        assert_eq!(CrateDeps::crate_of("src/lib.rs"), ".");
        assert_eq!(CrateDeps::crate_of("tests/smoke.rs"), ".");
    }
}
