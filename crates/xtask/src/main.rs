//! CLI for the workspace invariant linter.
//!
//! ```text
//! vcf-xtask lint [--format text|json|sarif] [--root PATH] [--rule ID]
//! vcf-xtask rules
//! vcf-xtask bench-check [--root PATH]
//! ```
//!
//! `--json` is kept as an alias for `--format json`. Exit codes: 0
//! clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use vcf_xtask::{bench_check, diag, rules, sarif, LintContext};

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("rules") => {
            list_rules();
            0
        }
        Some("bench-check") => bench_check_cmd(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            2
        }
    }
}

const USAGE: &str =
    "usage: vcf-xtask lint [--format text|json|sarif] [--root PATH] [--rule ID]\n       \
     vcf-xtask rules\n       vcf-xtask bench-check [--root PATH]";

/// Output formats for `lint`.
enum Format {
    Text,
    Json,
    Sarif,
}

fn lint(args: &[String]) -> i32 {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut rule: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    return usage_error(&format!("unknown format `{other}` (text, json, or sarif)"))
                }
                None => return usage_error("--format needs a value (text, json, or sarif)"),
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--rule" => match it.next() {
                Some(r) => rule = Some(r.clone()),
                None => return usage_error("--rule needs a rule id"),
            },
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("error: not inside a workspace (no Cargo.toml + crates/ found); use --root");
        return 2;
    };
    let ctx = match LintContext::load(&root) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("error: failed to load workspace at {}: {e}", root.display());
            return 2;
        }
    };
    let diags = match ctx.run(rule.as_deref()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let rule_ids: Vec<&str> = rules::all_rules().iter().map(|r| r.id()).collect();
    match format {
        Format::Json => print!("{}", diag::report_json(&diags, ctx.files.len(), &rule_ids)),
        Format::Sarif => print!("{}", sarif::report(&diags)),
        Format::Text if diags.is_empty() => {
            println!(
                "lint clean: {} files checked against {} rules",
                ctx.files.len(),
                rule_ids.len()
            );
        }
        Format::Text => {
            for d in &diags {
                println!("{}", d.render_text());
            }
            println!(
                "\n{} violation(s) across {} files",
                diags.len(),
                ctx.files.len()
            );
        }
    }
    i32::from(!diags.is_empty())
}

fn bench_check_cmd(args: &[String]) -> i32 {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("error: not inside a workspace (no Cargo.toml + crates/ found); use --root");
        return 2;
    };
    let problems = bench_check::run(&root);
    if problems.is_empty() {
        println!(
            "bench-check clean: {} baseline file(s) validated",
            bench_check::SCHEMAS.len()
        );
        0
    } else {
        for p in &problems {
            println!("{p}");
        }
        println!("\n{} problem(s)", problems.len());
        1
    }
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("error: {msg}\n{USAGE}");
    2
}

fn list_rules() {
    for rule in rules::all_rules() {
        println!("{:<22} {}", rule.id(), rule.summary());
    }
    println!(
        "{:<22} waivers must be well-formed with a reason",
        "lint-waiver"
    );
    println!(
        "{:<22} waivers must still suppress something",
        "stale-waiver"
    );
}

/// Ascends from the current directory to the first dir holding both a
/// `Cargo.toml` and a `crates/` directory.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
