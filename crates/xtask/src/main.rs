//! CLI for the workspace invariant linter.
//!
//! ```text
//! vcf-xtask lint [--json] [--root PATH] [--rule ID]
//! vcf-xtask rules
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use vcf_xtask::{diag, rules, LintContext};

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("rules") => {
            list_rules();
            0
        }
        _ => {
            eprintln!("{USAGE}");
            2
        }
    }
}

const USAGE: &str =
    "usage: vcf-xtask lint [--json] [--root PATH] [--rule ID]\n       vcf-xtask rules";

fn lint(args: &[String]) -> i32 {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut rule: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--rule" => match it.next() {
                Some(r) => rule = Some(r.clone()),
                None => return usage_error("--rule needs a rule id"),
            },
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("error: not inside a workspace (no Cargo.toml + crates/ found); use --root");
        return 2;
    };
    let ctx = match LintContext::load(&root) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("error: failed to load workspace at {}: {e}", root.display());
            return 2;
        }
    };
    let diags = match ctx.run(rule.as_deref()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let rule_ids: Vec<&str> = rules::all_rules().iter().map(|r| r.id()).collect();
    if json {
        print!("{}", diag::report_json(&diags, ctx.files.len(), &rule_ids));
    } else if diags.is_empty() {
        println!(
            "lint clean: {} files checked against {} rules",
            ctx.files.len(),
            rule_ids.len()
        );
    } else {
        for d in &diags {
            println!("{}", d.render_text());
        }
        println!(
            "\n{} violation(s) across {} files",
            diags.len(),
            ctx.files.len()
        );
    }
    i32::from(!diags.is_empty())
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("error: {msg}\n{USAGE}");
    2
}

fn list_rules() {
    for rule in rules::all_rules() {
        println!("{:<22} {}", rule.id(), rule.summary());
    }
    println!(
        "{:<22} waivers must be well-formed with a reason",
        "lint-waiver"
    );
    println!(
        "{:<22} waivers must still suppress something",
        "stale-waiver"
    );
}

/// Ascends from the current directory to the first dir holding both a
/// `Cargo.toml` and a `crates/` directory.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
