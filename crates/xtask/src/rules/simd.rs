//! `simd-confinement`: `#[target_feature]` code stays in the kernels
//! module, with SAFETY text naming the feature it requires.

use super::{Rule, SIMD_KERNEL_DIR};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// How many lines above a `#[target_feature]` attribute we search for a
/// safety note — `# Safety` doc sections can be several lines long.
const WINDOW_ABOVE: u32 = 24;
/// How many lines below the attribute the note may still appear (the
/// attribute stack between the note and the `fn` item).
const WINDOW_BELOW: u32 = 4;

/// Flags `#[target_feature(enable = "…")]` attributes outside
/// [`SIMD_KERNEL_DIR`], and — inside it — `unsafe fn`s whose nearby
/// SAFETY/`# Safety` text does not name the feature the caller must
/// have detected.
pub struct SimdConfinement;

impl Rule for SimdConfinement {
    fn id(&self) -> &'static str {
        "simd-confinement"
    }

    fn summary(&self) -> &'static str {
        "`#[target_feature]` only in the kernels module, with SAFETY text naming the feature"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (k, &ti) in file.code.iter().enumerate() {
            let tok = file.tokens[ti];
            if tok.kind != TokenKind::Ident || file.tok(ti) != "target_feature" {
                continue;
            }
            // Attribute form only: `#[target_feature(...)]`. The token
            // before `cfg(target_feature = "...")` is `(`, not `[`.
            if k == 0 || file.code_tok(k - 1) != "[" {
                continue;
            }
            if file.is_test_line(tok.line) {
                continue;
            }

            if !file.rel.starts_with(SIMD_KERNEL_DIR) {
                out.push(Diagnostic {
                    rule: self.id(),
                    file: file.rel.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: "`#[target_feature]` outside the SIMD kernels module".to_owned(),
                    hint: format!(
                        "feature-gated code belongs under {SIMD_KERNEL_DIR} so every \
                         CPU-dispatch assumption sits behind one reviewed boundary"
                    ),
                });
                continue;
            }

            // Inside the kernels module: unsafe kernels must tell their
            // callers which feature to detect.
            let Some(feature) = attribute_feature(file, k) else {
                continue;
            };
            if !is_unsafe_fn(file, k) {
                continue;
            }
            if has_feature_note(file, tok.line, &feature) {
                continue;
            }
            out.push(Diagnostic {
                rule: self.id(),
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "unsafe `#[target_feature(enable = \"{feature}\")]` fn without SAFETY \
                     text naming `{feature}`"
                ),
                hint: format!(
                    "add a `# Safety` section (or `// SAFETY:` comment) stating that \
                     callers must have detected `{feature}` at runtime"
                ),
            });
        }
    }
}

/// The first string literal inside the attribute brackets — the feature
/// name in `#[target_feature(enable = "avx2")]`.
fn attribute_feature(file: &SourceFile, k: usize) -> Option<String> {
    let close = file.matching_close(k - 1);
    for j in k..close.min(file.code.len()) {
        let ti = file.code[j];
        if file.tokens[ti].kind == TokenKind::Str {
            return Some(file.tok(ti).trim_matches('"').to_owned());
        }
    }
    None
}

/// Whether the item under the attribute at code index `k` is an
/// `unsafe fn` (skipping any further stacked attributes).
fn is_unsafe_fn(file: &SourceFile, k: usize) -> bool {
    let mut j = file.matching_close(k - 1) + 1;
    // Skip stacked `#[...]` attribute groups.
    while j + 1 < file.code.len() && file.code_tok(j) == "#" {
        j = file.matching_close(j + 1) + 1;
    }
    // Scan the item header (visibility, `unsafe`, `extern`, …) up to
    // `fn`; a bounded walk is plenty for any real header.
    let mut saw_unsafe = false;
    for _ in 0..8 {
        match file.code.get(j).map(|&ti| file.tok(ti)) {
            Some("unsafe") => saw_unsafe = true,
            Some("fn") => return saw_unsafe,
            Some(_) => {}
            None => return false,
        }
        j += 1;
    }
    false
}

/// True when a comment near `line` both signals safety (`SAFETY` or
/// `# Safety`) and names the required feature.
fn has_feature_note(file: &SourceFile, line: u32, feature: &str) -> bool {
    let lo = line.saturating_sub(WINDOW_ABOVE);
    let hi = line + WINDOW_BELOW;
    let mut saw_safety = false;
    let mut saw_feature = false;
    for t in &file.tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        if t.line < lo || t.line > hi {
            continue;
        }
        let text = t.text(&file.text);
        saw_safety |= text.contains("SAFETY") || text.contains("# Safety");
        saw_feature |= text.contains(feature);
    }
    saw_safety && saw_feature
}
