//! `atomic-ordering`: memory-ordering confinement.
//!
//! Atomics are easy to sprinkle and hard to review. The workspace
//! therefore confines explicit `Ordering::*` arguments to the modules
//! that own the concurrency story ([`super::ATOMIC_MODULES`]);
//! everything else uses those modules' APIs. The seqlock module's
//! internal discipline is checked structurally by the
//! [`super::seqlock::SeqlockProtocol`] rule.

use super::{is_crate_src, Rule, ATOMIC_MODULES};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// The five atomic orderings; matching them after `Ordering::` keeps
/// `cmp::Ordering::Less` and friends out of scope.
const VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Flags `Ordering::<atomic variant>` outside the whitelisted
/// concurrency modules.
pub struct AtomicOrdering;

impl Rule for AtomicOrdering {
    fn id(&self) -> &'static str {
        "atomic-ordering"
    }

    fn summary(&self) -> &'static str {
        "atomic `Ordering::*` arguments appear only in the whitelisted concurrency modules"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !is_crate_src(&file.rel) || ATOMIC_MODULES.contains(&file.rel.as_str()) {
            return;
        }
        for k in 0..file.code.len().saturating_sub(3) {
            if file.code_tok(k) != "Ordering"
                || file.code_tok(k + 1) != ":"
                || file.code_tok(k + 2) != ":"
                || !VARIANTS.contains(&file.code_tok(k + 3))
            {
                continue;
            }
            let tok = file.tokens[file.code[k]];
            if file.is_test_line(tok.line) {
                continue;
            }
            out.push(Diagnostic {
                rule: self.id(),
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "atomic `Ordering::{}` outside the whitelisted concurrency modules",
                    file.code_tok(k + 3)
                ),
                hint: format!(
                    "use the APIs in {} instead, or extend the allowlist in rules/mod.rs + DESIGN.md \u{a7}9",
                    ATOMIC_MODULES.join(", ")
                ),
            });
        }
    }
}
