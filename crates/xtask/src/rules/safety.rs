//! `safety-comment`: every `unsafe` site must state why it is sound.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// How many lines above an `unsafe` block we search for `// SAFETY:`.
const BLOCK_WINDOW: u32 = 6;
/// How many lines above an `unsafe fn`/`unsafe impl` we search — doc
/// blocks with a `# Safety` section can be long.
const ITEM_WINDOW: u32 = 24;

/// Flags `unsafe` tokens (outside `#[cfg(test)]`) with no `SAFETY`
/// comment nearby; `unsafe fn` may alternatively carry a `# Safety`
/// doc section.
pub struct SafetyComment;

impl Rule for SafetyComment {
    fn id(&self) -> &'static str {
        "safety-comment"
    }

    fn summary(&self) -> &'static str {
        "every `unsafe` block, fn, or impl carries a `// SAFETY:` justification"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (k, &ti) in file.code.iter().enumerate() {
            let tok = file.tokens[ti];
            if tok.kind != TokenKind::Ident || file.tok(ti) != "unsafe" {
                continue;
            }
            if file.is_test_line(tok.line) {
                continue;
            }
            let next = file.code.get(k + 1).map_or("", |&j| file.tok(j));
            let is_item = matches!(next, "fn" | "trait" | "impl");
            let window = if is_item { ITEM_WINDOW } else { BLOCK_WINDOW };
            if has_safety_note(file, tok.line, window, is_item) {
                continue;
            }
            out.push(Diagnostic {
                rule: self.id(),
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`unsafe{}` without a nearby SAFETY justification",
                    if next.is_empty() {
                        String::new()
                    } else {
                        format!(" {next}")
                    }
                ),
                hint: if is_item {
                    "add a `# Safety` doc section (or a `// SAFETY:` comment) above the item"
                        .to_owned()
                } else {
                    "add `// SAFETY: <why the invariants hold>` directly above the unsafe block"
                        .to_owned()
                },
            });
        }
    }
}

/// True when a comment within `window` lines above `line` (or the line
/// just inside the block) mentions `SAFETY`, or — for items — a doc
/// comment carries a `# Safety` section.
fn has_safety_note(file: &SourceFile, line: u32, window: u32, is_item: bool) -> bool {
    let lo = line.saturating_sub(window);
    file.tokens.iter().any(|t| {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            return false;
        }
        if t.line < lo || t.line > line + 1 {
            return false;
        }
        let text = t.text(&file.text);
        text.contains("SAFETY") || (is_item && text.contains("# Safety"))
    })
}
