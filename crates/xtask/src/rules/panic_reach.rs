//! `panic-reachability`: hot paths must not be able to *reach* a panic.
//!
//! v1's `no-panic-hot-path` scanned an allowlist of files for direct
//! panicky tokens — a hot-path function calling a helper in another
//! module that indexes a slice passed the lint. v2 replaces the file
//! allowlist with `// lint: hot-path` annotations on the functions
//! themselves and propagates **transitively** over the workspace call
//! graph: every function reachable from a hot root is scanned for
//! panicky sinks, and every finding carries the call chain that
//! reaches it.
//!
//! Sinks: `.unwrap()` / `.expect(…)`, the panic macro family
//! (`panic!` / `unreachable!` / `todo!` / `unimplemented!`), release
//! asserts (`assert!` / `assert_eq!` / `assert_ne!` — `debug_assert*`
//! is the sanctioned idiom and exempt), and raw `[]` indexing with a
//! dynamic index. Indexing is dispensed when the index is a literal,
//! a range, or the enclosing fn carries a `debug_assert!` (the
//! SWAR-kernel idiom: assert the bound in debug, elide in release).
//!
//! Calls that resolve only to bodyless trait declarations are
//! conservatively treated as able to panic — any impl outside the
//! graph could. Diagnostics land on the *sink* line (not the hot
//! root), so the per-line waiver machinery applies unchanged.

use super::Rule;
use crate::callgraph::Analysis;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::LintContext;

/// Identifier-shaped keywords that may precede `[` without it being an
/// index expression (`let [a, b] = …`, `match [x, y] { … }`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "match", "if", "else", "return", "break", "continue", "move", "box",
    "dyn", "impl", "for", "where", "as", "const", "static", "use",
];

/// Panic-family macros (besides `.unwrap()`/`.expect()`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Release-mode assert macros — hard aborts on the request path.
/// `debug_assert*` is deliberately absent: it is the dispensation.
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// One panicky construct found inside a function body.
struct Sink {
    line: u32,
    col: u32,
    desc: String,
    hint: &'static str,
}

/// Flags panic sinks in any function transitively reachable from a
/// `// lint: hot-path` root.
pub struct PanicReachability;

impl Rule for PanicReachability {
    fn id(&self) -> &'static str {
        "panic-reachability"
    }

    fn summary(&self) -> &'static str {
        "functions reachable from `// lint: hot-path` roots must not unwrap/panic!/assert!/index unchecked"
    }

    fn check_workspace(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        let a = &ctx.analysis;
        for d in &a.dangling {
            if d.marker == "hot-path" {
                out.push(Diagnostic {
                    rule: self.id(),
                    file: ctx.files[d.file].rel.clone(),
                    line: d.line,
                    col: 1,
                    message: "dangling `// lint: hot-path` marker binds to no function".to_owned(),
                    hint: "place the marker directly above a `fn` item (doc comments and \
                           attributes between them are fine)"
                        .to_owned(),
                });
            }
        }
        let roots = a.hot_roots();
        let parent = a.reachable_from(&roots);
        for (i, f) in a.fns.iter().enumerate() {
            if parent[i].is_none() {
                continue;
            }
            let file = &ctx.files[f.file];
            for sink in scan_sinks(file, a, i) {
                let via = if parent[i] == Some(i) {
                    String::new()
                } else {
                    format!(" (reached via {})", a.chain(&parent, i, &ctx.files))
                };
                out.push(Diagnostic {
                    rule: self.id(),
                    file: file.rel.clone(),
                    line: sink.line,
                    col: sink.col,
                    message: format!("{} on a hot path{via}", sink.desc),
                    hint: sink.hint.to_owned(),
                });
            }
        }
        for &(caller, ci) in &a.conservative_calls {
            if parent[caller].is_none() {
                continue;
            }
            let f = &a.fns[caller];
            let call = &f.calls[ci];
            let file = &ctx.files[f.file];
            out.push(Diagnostic {
                rule: self.id(),
                file: file.rel.clone(),
                line: call.line,
                col: call.col,
                message: format!(
                    "call to `{}` resolves only to a bodyless trait declaration \u{2014} \
                     conservatively assumed to panic (hot path via {})",
                    call.name,
                    a.chain(&parent, caller, &ctx.files)
                ),
                hint: "give the trait method a workspace impl the resolver can see, or waive \
                       with the reason the impl is panic-free"
                    .to_owned(),
            });
        }
    }
}

/// Scans the body of `a.fns[idx]` for panic sinks. Nested fn bodies are
/// skipped — the nested fn is its own graph node and scans itself.
fn scan_sinks(file: &SourceFile, a: &Analysis, idx: usize) -> Vec<Sink> {
    let mut sinks = Vec::new();
    let Some((open, close)) = a.fns[idx].body else {
        return sinks;
    };
    let nested: Vec<(usize, usize)> = a
        .fns
        .iter()
        .filter(|g| g.file == a.fns[idx].file)
        .filter_map(|g| g.body)
        .filter(|&(o, c)| o > open && c < close)
        .collect();
    let mut k = open + 1;
    while k < close {
        if let Some(&(_, nc)) = nested.iter().find(|&&(no, nc)| no <= k && k <= nc) {
            k = nc + 1;
            continue;
        }
        let tok = file.tokens[file.code[k]];
        if file.is_test_line(tok.line) {
            k += 1;
            continue;
        }
        let text = file.code_tok(k);
        let prev = k.checked_sub(1).map_or("", |p| file.code_tok(p));
        let next = file.code.get(k + 1).map_or("", |_| file.code_tok(k + 1));

        if (text == "unwrap" || text == "expect") && prev == "." && next == "(" {
            sinks.push(Sink {
                line: tok.line,
                col: tok.col,
                desc: format!("`.{text}()`"),
                hint: "return the error/Option to the caller or use `.get()`; provably \
                       unreachable cases may waive with \
                       `// lint: allow(panic-reachability) \u{2014} <why unreachable>`",
            });
            k += 1;
            continue;
        }
        if next == "!" && prev != "." {
            if PANIC_MACROS.contains(&text) {
                sinks.push(Sink {
                    line: tok.line,
                    col: tok.col,
                    desc: format!("`{text}!`"),
                    hint: "hot paths must be panic-free; encode the failure in the return type",
                });
                k += 1;
                continue;
            }
            if ASSERT_MACROS.contains(&text) {
                sinks.push(Sink {
                    line: tok.line,
                    col: tok.col,
                    desc: format!("`{text}!`"),
                    hint: "release asserts abort under load; use `debug_assert!` (checked in \
                           debug, elided in release) or return an error",
                });
                k += 1;
                continue;
            }
        }
        if text == "["
            && (prev == ")"
                || prev == "]"
                || (k > 0
                    && file.tokens[file.code[k - 1]].kind == TokenKind::Ident
                    && !NON_INDEX_KEYWORDS.contains(&prev)))
            && !index_is_dispensed(file, k, tok.line)
        {
            sinks.push(Sink {
                line: tok.line,
                col: tok.col,
                desc: "raw `[]` indexing with an unchecked dynamic index".to_owned(),
                hint: "use `.get()`, index with a literal/range, or `debug_assert!` the bound \
                       in the enclosing fn (the SWAR-kernel idiom)",
            });
        }
        k += 1;
    }
    sinks
}

/// The indexing dispensations: literal index, range index, or a
/// `debug_assert` in the enclosing fn.
fn index_is_dispensed(file: &SourceFile, open_k: usize, line: u32) -> bool {
    let close_k = file.matching_close(open_k);
    let inner: Vec<usize> = (open_k + 1..close_k).collect();
    if inner.len() == 1 && file.tokens[file.code[inner[0]]].kind == TokenKind::Number {
        return true;
    }
    if inner
        .windows(2)
        .any(|w| file.code_tok(w[0]) == "." && file.code_tok(w[1]) == ".")
    {
        return true;
    }
    file.enclosing_fn(line).is_some_and(|f| f.has_debug_assert)
}
