//! `format-exhaustiveness`: wire-format enums are handled variant by
//! variant, and decode functions consume every field they read.
//!
//! Two marker-driven checks keep the wire protocol and the snapshot
//! formats honest ahead of the durability tier:
//!
//! * **Enum coverage** — an enum annotated `// lint: wire-format`
//!   (e.g. `OpCode`, `WireError`) must have *every* variant appear in a
//!   pattern position somewhere in non-test crate source, and any
//!   `match` whose arm patterns name the enum must not hide behind a
//!   `_` arm. Adding a variant then forces every consumer match to be
//!   updated in the same change — the compiler only enforces this for
//!   matches without wildcards, so the lint bans the wildcards.
//!   Construction-side matches (e.g. `from_u8` matching integer
//!   patterns and *building* variants) are untouched: only arm
//!   *patterns* count.
//! * **Decode field use** — a function annotated
//!   `// lint: wire-format(decode)` reads header fields through the
//!   workspace's `reader` cursor convention. Every `let field =
//!   …reader…;` binding must be used later in the function; a read
//!   bound to `_` or never referenced again is an unvalidated header
//!   field (the classic "parsed but not checked" format bug).

use super::{is_crate_src, Rule};
use crate::diag::Diagnostic;
use crate::parser::FnInfo;
use crate::source::SourceFile;
use crate::LintContext;
use std::collections::{HashMap, HashSet};

/// One `match` arm: full code-token range of the pattern (guard
/// included) plus the pattern's depth-0 token indices.
struct Arm {
    range: (usize, usize),
    top: Vec<usize>,
}

/// Enforces variant coverage for wire enums and field use in decode fns.
pub struct FormatExhaustiveness;

impl Rule for FormatExhaustiveness {
    fn id(&self) -> &'static str {
        "format-exhaustiveness"
    }

    fn summary(&self) -> &'static str {
        "wire-format enum variants are all matched (no `_` arms); decode fns use every field they read"
    }

    fn check_workspace(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        let a = &ctx.analysis;
        for d in &a.dangling {
            if d.marker.starts_with("wire-format") {
                out.push(Diagnostic {
                    rule: self.id(),
                    file: ctx.files[d.file].rel.clone(),
                    line: d.line,
                    col: 1,
                    message: format!("dangling `// lint: {}` marker binds to no item", d.marker),
                    hint: "place `wire-format` directly above an enum and \
                           `wire-format(decode)` directly above a fn"
                        .to_owned(),
                });
            }
        }

        // Wire enum name → variant set (name-level, like call resolution).
        let mut wire: HashMap<&str, Vec<(&str, usize)>> = HashMap::new();
        for (ei, e) in a.enums.iter().enumerate() {
            if e.wire {
                let entry = wire.entry(e.name.as_str()).or_default();
                for (v, _) in &e.variants {
                    entry.push((v.as_str(), ei));
                }
            }
        }

        let mut matched: HashSet<(String, String)> = HashSet::new();
        if !wire.is_empty() {
            for file in &ctx.files {
                if !is_crate_src(&file.rel) {
                    continue;
                }
                self.scan_file(file, &wire, &mut matched, out);
            }
            for (ename, variants) in &wire {
                for &(vname, ei) in variants {
                    if matched.contains(&((*ename).to_owned(), (*vname).to_owned())) {
                        continue;
                    }
                    let e = &a.enums[ei];
                    let line = e
                        .variants
                        .iter()
                        .find(|(v, _)| v == vname)
                        .map_or(e.line, |&(_, l)| l);
                    out.push(Diagnostic {
                        rule: self.id(),
                        file: ctx.files[e.file].rel.clone(),
                        line,
                        col: 1,
                        message: format!(
                            "wire-format variant `{ename}::{vname}` is never matched anywhere \
                             in crate source"
                        ),
                        hint: "handle the variant in the consuming match (frame loop, status \
                               mapping, …) \u{2014} unreferenced wire states rot silently"
                            .to_owned(),
                    });
                }
            }
        }

        for f in &a.fns {
            if f.wire_decode && !f.test {
                self.check_decode_fn(&ctx.files[f.file], f, out);
            }
        }
    }
}

impl FormatExhaustiveness {
    /// Collects matched variants and flags `_` arms in wire matches.
    fn scan_file(
        &self,
        file: &SourceFile,
        wire: &HashMap<&str, Vec<(&str, usize)>>,
        matched: &mut HashSet<(String, String)>,
        out: &mut Vec<Diagnostic>,
    ) {
        let mut regions: Vec<(usize, usize)> = Vec::new();
        for k in 0..file.code.len() {
            let text = file.code_tok(k);
            let line = file.tokens[file.code[k]].line;
            if file.is_test_line(line) {
                continue;
            }
            let prev = k.checked_sub(1).map_or("", |p| file.code_tok(p));
            match text {
                "match" if prev != "." => {
                    if let Some(arms) = match_arms(file, k) {
                        let wire_match = arms.iter().find_map(|arm| {
                            (arm.range.0..arm.range.1).find_map(|j| {
                                let t = file.code_tok(j);
                                (wire.contains_key(t)
                                    && file.code.get(j + 1).is_some_and(|_| {
                                        file.code_tok(j + 1) == ":"
                                            && j + 2 < file.code.len()
                                            && file.code_tok(j + 2) == ":"
                                    }))
                                .then(|| t.to_owned())
                            })
                        });
                        for arm in &arms {
                            regions.push(arm.range);
                            if let Some(ename) = &wire_match {
                                for &j in &arm.top {
                                    if file.code_tok(j) == "_" {
                                        let tok = file.tokens[file.code[j]];
                                        out.push(Diagnostic {
                                            rule: self.id(),
                                            file: file.rel.clone(),
                                            line: tok.line,
                                            col: tok.col,
                                            message: format!(
                                                "`_` arm in a match over wire-format enum \
                                                 `{ename}`"
                                            ),
                                            hint: "name every variant so adding one forces \
                                                   this match to be revisited"
                                                .to_owned(),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
                // `if let` / `while let` / `let … else` patterns.
                "let" => {
                    let mut j = k + 1;
                    while j < file.code.len() {
                        match file.code_tok(j) {
                            "(" | "[" | "{" => j = file.matching_close(j) + 1,
                            "=" | ";" => break,
                            _ => j += 1,
                        }
                    }
                    regions.push((k + 1, j));
                }
                // `matches!(expr, pattern)` — the second argument.
                "matches"
                    if file
                        .code
                        .get(k + 1)
                        .is_some_and(|_| file.code_tok(k + 1) == "!")
                        && file
                            .code
                            .get(k + 2)
                            .is_some_and(|_| file.code_tok(k + 2) == "(") =>
                {
                    let gc = file.matching_close(k + 2);
                    let mut j = k + 3;
                    while j < gc {
                        match file.code_tok(j) {
                            "(" | "[" | "{" => j = file.matching_close(j) + 1,
                            "," => break,
                            _ => j += 1,
                        }
                    }
                    regions.push((j + 1, gc));
                }
                _ => {}
            }
        }
        for (s, e) in regions {
            let mut j = s;
            while j + 2 < e {
                let t = file.code_tok(j);
                if wire.contains_key(t)
                    && file.code_tok(j + 1) == ":"
                    && file.code_tok(j + 2) == ":"
                    && j + 3 < e
                {
                    matched.insert((t.to_owned(), file.code_tok(j + 3).to_owned()));
                    j += 4;
                } else {
                    j += 1;
                }
            }
        }
    }

    /// Every `let field = …reader…;` in a decode fn must be used later.
    fn check_decode_fn(&self, file: &SourceFile, f: &FnInfo, out: &mut Vec<Diagnostic>) {
        let Some((open, close)) = f.body else {
            return;
        };
        let mut j = open + 1;
        while j < close {
            if file.code_tok(j) != "let" {
                j += 1;
                continue;
            }
            let mut b = j + 1;
            if file.code_tok(b) == "mut" {
                b += 1;
            }
            let name = file.code_tok(b);
            let is_simple = (name == "_"
                || name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_'))
                && b + 1 < close
                && file.code_tok(b + 1) == "="
                && file.code_tok(b + 2) != "=";
            if !is_simple {
                j += 1;
                continue;
            }
            // Statement end at this depth.
            let mut s = b + 2;
            while s < close {
                match file.code_tok(s) {
                    "(" | "[" | "{" => s = file.matching_close(s) + 1,
                    ";" => break,
                    _ => s += 1,
                }
            }
            let reads_cursor = (b + 2..s).any(|i| file.code_tok(i) == "reader") && name != "reader";
            if reads_cursor {
                let tok = file.tokens[file.code[b]];
                if name == "_" {
                    out.push(Diagnostic {
                        rule: self.id(),
                        file: file.rel.clone(),
                        line: tok.line,
                        col: tok.col,
                        message: "decoded field discarded with `let _ =`".to_owned(),
                        hint: "validate the field or document the skip by consuming it \
                               explicitly (e.g. compare against the expected constant)"
                            .to_owned(),
                    });
                } else if !(s + 1..close).any(|i| file.code_tok(i) == name) {
                    out.push(Diagnostic {
                        rule: self.id(),
                        file: file.rel.clone(),
                        line: tok.line,
                        col: tok.col,
                        message: format!("decoded field `{name}` is read but never used"),
                        hint: "every header field must be validated or consumed; unread \
                               fields hide format drift"
                            .to_owned(),
                    });
                }
            }
            j = s + 1;
        }
    }
}

/// Parses the arms of the `match` whose keyword is at code index `k`.
fn match_arms(file: &SourceFile, k: usize) -> Option<Vec<Arm>> {
    // Scrutinee: scan to the body `{` at top level (groups skipped).
    let mut j = k + 1;
    let body_open = loop {
        if j >= file.code.len() {
            return None;
        }
        match file.code_tok(j) {
            "(" | "[" => j = file.matching_close(j) + 1,
            "{" => break j,
            ";" => return None,
            _ => j += 1,
        }
    };
    let body_close = file.matching_close(body_open);
    let mut arms = Vec::new();
    let mut j = body_open + 1;
    while j < body_close {
        // Pattern mode: up to `=>` at depth 0.
        let start = j;
        let mut top = Vec::new();
        let end = loop {
            if j >= body_close {
                break j;
            }
            match file.code_tok(j) {
                "(" | "[" | "{" => j = file.matching_close(j) + 1,
                "=" if file
                    .code
                    .get(j + 1)
                    .is_some_and(|_| file.code_tok(j + 1) == ">") =>
                {
                    break j;
                }
                _ => {
                    top.push(j);
                    j += 1;
                }
            }
        };
        if end > start {
            arms.push(Arm {
                range: (start, end),
                top,
            });
        }
        if j >= body_close {
            break;
        }
        j += 2; // past `=>`
                // Value mode: a block, or an expression up to `,` at depth 0.
        if j < body_close && file.code_tok(j) == "{" {
            j = file.matching_close(j) + 1;
            if j < body_close && file.code_tok(j) == "," {
                j += 1;
            }
        } else {
            while j < body_close {
                match file.code_tok(j) {
                    "(" | "[" | "{" => j = file.matching_close(j) + 1,
                    "," => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
        }
    }
    Some(arms)
}
