//! `no-panic-hot-path`: lookup/insert hot paths must not panic.
//!
//! The filter's selling point is bounded, predictable latency; an
//! `unwrap` in `bucket.rs` turns a logic error into an abort in the
//! middle of a query storm. Raw `[]` indexing is allowed only when it
//! provably (well, reviewably) cannot panic:
//!
//! * the index is a literal (`steps[0]`) — fixed-size array, checked by
//!   the compiler when the length is known;
//! * the index is a range (`steps[1..]`) — slicing idiom, bounds still
//!   checked but used for windows whose bounds come straight from
//!   `len()`;
//! * the enclosing function carries a `debug_assert!` — the workspace's
//!   established SWAR-kernel idiom: assert the bound in debug, elide in
//!   release.
//!
//! Anything else needs `.get()` or a waiver with a written bound.

use super::{Rule, HOT_PATH_MODULES};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Identifier-shaped keywords that may precede `[` without it being an
/// index expression (`let [a, b] = …`, `match [x, y] { … }`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "match", "if", "else", "return", "break", "continue", "move", "box",
    "dyn", "impl", "for", "where", "as", "const", "static", "use",
];

/// Panic-family macros (besides `.unwrap()`/`.expect()`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Flags panicking constructs in [`HOT_PATH_MODULES`] outside
/// `#[cfg(test)]`.
pub struct NoPanicHotPath;

impl Rule for NoPanicHotPath {
    fn id(&self) -> &'static str {
        "no-panic-hot-path"
    }

    fn summary(&self) -> &'static str {
        "no unwrap/expect/panic!/raw indexing in hot-path modules (debug_assert idiom excepted)"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !HOT_PATH_MODULES.contains(&file.rel.as_str()) {
            return;
        }
        for k in 0..file.code.len() {
            let tok = file.tokens[file.code[k]];
            if file.is_test_line(tok.line) {
                continue;
            }
            let text = file.tok(file.code[k]);
            let prev = k.checked_sub(1).map_or("", |p| file.code_tok(p));
            let next = file
                .code
                .get(k + 1)
                .map_or("", |&j| file.tokens[j].text(&file.text));

            // `.unwrap()` / `.expect(…)`
            if (text == "unwrap" || text == "expect") && prev == "." && next == "(" {
                out.push(self.diag(
                    file,
                    tok.line,
                    tok.col,
                    format!("`.{text}()` in a hot-path module"),
                    "return the error/Option to the caller or use `.get()`; cold paths may \
                     waive with `// lint: allow(no-panic-hot-path) \u{2014} <why unreachable>`",
                ));
                continue;
            }

            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
            if PANIC_MACROS.contains(&text) && next == "!" {
                out.push(self.diag(
                    file,
                    tok.line,
                    tok.col,
                    format!("`{text}!` in a hot-path module"),
                    "hot paths must be panic-free; encode the failure in the return type",
                ));
                continue;
            }

            // Raw indexing: `expr[…]` where expr ends in an identifier,
            // `)`, or `]`.
            if text == "["
                && (prev == ")"
                    || prev == "]"
                    || (k > 0
                        && file.tokens[file.code[k - 1]].kind == TokenKind::Ident
                        && !NON_INDEX_KEYWORDS.contains(&prev)))
                && !self.index_is_dispensed(file, k, tok.line)
            {
                out.push(self.diag(
                    file,
                    tok.line,
                    tok.col,
                    "raw `[]` indexing with an unchecked dynamic index".to_owned(),
                    "use `.get()`, index with a literal/range, or `debug_assert!` the bound \
                     in the enclosing fn (the SWAR-kernel idiom)",
                ));
            }
        }
    }
}

impl NoPanicHotPath {
    fn diag(
        &self,
        file: &SourceFile,
        line: u32,
        col: u32,
        message: String,
        hint: &str,
    ) -> Diagnostic {
        Diagnostic {
            rule: self.id(),
            file: file.rel.clone(),
            line,
            col,
            message,
            hint: hint.to_owned(),
        }
    }

    /// The dispensations: literal index, range index, or a
    /// `debug_assert` in the enclosing fn.
    fn index_is_dispensed(&self, file: &SourceFile, open_k: usize, line: u32) -> bool {
        let close_k = file.matching_close(open_k);
        let inner: Vec<usize> = (open_k + 1..close_k).collect();
        // Single numeric literal.
        if inner.len() == 1 && file.tokens[file.code[inner[0]]].kind == TokenKind::Number {
            return true;
        }
        // Contains a `..` range.
        if inner
            .windows(2)
            .any(|w| file.code_tok(w[0]) == "." && file.code_tok(w[1]) == ".")
        {
            return true;
        }
        file.enclosing_fn(line).is_some_and(|f| f.has_debug_assert)
    }
}
