//! `tsan-suppressions`: the TSan suppressions file cannot rot.
//!
//! A suppression that outlives the symbol it silences hides *new*
//! races that happen to land in a matching frame. Each entry's last
//! concrete path segment must still exist as an identifier somewhere
//! in the workspace sources.

use super::Rule;
use crate::diag::Diagnostic;
use crate::LintContext;

/// Suppression kinds TSan understands; anything else is a typo that
/// TSan would silently ignore.
const KINDS: &[&str] = &[
    "race",
    "race_top",
    "thread",
    "mutex",
    "signal",
    "deadlock",
    "called_from_lib",
];

/// Validates `.github/tsan-suppressions.txt` against the sources.
pub struct TsanSuppressions;

impl Rule for TsanSuppressions {
    fn id(&self) -> &'static str {
        "tsan-suppressions"
    }

    fn summary(&self) -> &'static str {
        "TSan suppressions are well-formed and still name symbols that exist in the sources"
    }

    fn check_workspace(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        let Some((rel, content)) = &ctx.suppressions else {
            return;
        };
        for (idx, raw) in content.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = (idx + 1) as u32;
            let Some((kind, pattern)) = line.split_once(':') else {
                out.push(self.diag(
                    rel,
                    lineno,
                    format!("malformed suppression `{line}` (expected `kind:pattern`)"),
                    "use e.g. `race:vcf_core::concurrent::some_fn`",
                ));
                continue;
            };
            if !KINDS.contains(&kind.trim()) {
                out.push(self.diag(
                    rel,
                    lineno,
                    format!("unknown suppression kind `{}`", kind.trim()),
                    "TSan silently ignores unknown kinds; use race/race_top/thread/mutex/\
                     signal/deadlock/called_from_lib",
                ));
                continue;
            }
            // Last concrete (wildcard-free) segment of the pattern.
            let Some(symbol) = pattern
                .split(':')
                .rev()
                .flat_map(|seg| seg.split('*'))
                .find(|seg| {
                    !seg.is_empty() && seg.chars().all(|c| c.is_alphanumeric() || c == '_')
                })
            else {
                continue; // pure-wildcard pattern: nothing to verify
            };
            let exists = ctx.files.iter().any(|f| f.text.contains(symbol));
            if !exists {
                out.push(self.diag(
                    rel,
                    lineno,
                    format!(
                        "stale suppression: symbol `{symbol}` no longer exists in the workspace"
                    ),
                    "delete the entry (or update it to the renamed symbol)",
                ));
            }
        }
    }
}

impl TsanSuppressions {
    fn diag(&self, rel: &str, line: u32, message: String, hint: &str) -> Diagnostic {
        Diagnostic {
            rule: self.id(),
            file: rel.to_owned(),
            line,
            col: 1,
            message,
            hint: hint.to_owned(),
        }
    }
}
