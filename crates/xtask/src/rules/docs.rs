//! `missing-docs-public`: every `pub` item in the API crates carries a
//! doc comment.
//!
//! This duplicates rustc's `missing_docs` on purpose: the compiler lint
//! is per-crate opt-in and silently vanishes when a crate root forgets
//! the attribute, whereas this rule is pinned to the crate list in
//! [`super::DOCS_CRATES`] and fails CI.

use super::{Rule, DOCS_CRATES};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Item keywords a `pub` can introduce.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "mod", "type", "static", "const", "union", "macro",
];

/// Flags undocumented `pub` items (and fields) in the API crates.
pub struct MissingDocsPublic;

impl Rule for MissingDocsPublic {
    fn id(&self) -> &'static str {
        "missing-docs-public"
    }

    fn summary(&self) -> &'static str {
        "every public item in vcf-core / vcf-table / vcf-traits has a doc comment"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !DOCS_CRATES.iter().any(|p| file.rel.starts_with(p)) {
            return;
        }
        let macro_spans = macro_rules_spans(file);
        for k in 0..file.code.len() {
            if file.code_tok(k) != "pub" {
                continue;
            }
            let tok = file.tokens[file.code[k]];
            if file.is_test_line(tok.line)
                || macro_spans
                    .iter()
                    .any(|&(a, z)| a <= tok.line && tok.line <= z)
            {
                continue;
            }
            // `pub(crate)` / `pub(super)` / `pub(in …)` are not public API.
            if file
                .code
                .get(k + 1)
                .is_some_and(|&j| file.tokens[j].text(&file.text) == "(")
            {
                continue;
            }
            // Skip modifiers to find what the `pub` introduces.
            let mut m = k + 1;
            loop {
                match file.code.get(m).map(|&j| file.tokens[j]) {
                    Some(t) if t.kind == TokenKind::Str => m += 1, // extern "C"
                    Some(t) if t.kind == TokenKind::Ident => {
                        let text = file.tok(file.code[m]);
                        let is_const_fn = text == "const"
                            && file
                                .code
                                .get(m + 1)
                                .is_some_and(|&j| file.tokens[j].text(&file.text) == "fn");
                        if matches!(text, "unsafe" | "async" | "extern") || is_const_fn {
                            m += 1;
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            let Some(&intro_j) = file.code.get(m) else {
                continue;
            };
            let intro = file.tokens[intro_j].text(&file.text);
            // Re-exports are documented at the definition site.
            if intro == "use" || intro == "extern" {
                continue;
            }
            let what = if ITEM_KEYWORDS.contains(&intro) {
                let name = file
                    .code
                    .get(m + 1)
                    .map_or("_", |&j| file.tokens[j].text(&file.text));
                format!("{intro} `{name}`")
            } else if file.tokens[intro_j].kind == TokenKind::Ident {
                format!("field `{intro}`")
            } else {
                continue;
            };
            if has_doc(file, file.code[k]) {
                continue;
            }
            out.push(Diagnostic {
                rule: self.id(),
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: format!("public {what} has no doc comment"),
                hint: "add a `///` comment saying what it is and any invariants callers rely on"
                    .to_owned(),
            });
        }
    }
}

/// Walks backwards from the `pub` token across attributes and plain
/// comments, looking for an outer doc comment (or a `#[doc = …]`
/// attribute).
fn has_doc(file: &SourceFile, pub_tok_idx: usize) -> bool {
    let mut j = pub_tok_idx;
    while j > 0 {
        j -= 1;
        let tok = file.tokens[j];
        let text = tok.text(&file.text);
        match tok.kind {
            TokenKind::LineComment => {
                if text.starts_with("///") {
                    return true;
                }
                // Plain `//` comment between docs and item: keep looking.
            }
            TokenKind::BlockComment => {
                if text.starts_with("/**") {
                    return true;
                }
            }
            TokenKind::Punct if text == "]" => {
                // Skip the attribute backwards; `#[doc = "…"]` counts.
                let mut depth = 1usize;
                let mut saw_doc = false;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match file.tokens[j].text(&file.text) {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        "doc" => saw_doc = true,
                        _ => {}
                    }
                }
                if saw_doc {
                    return true;
                }
                if j > 0 && file.tokens[j - 1].text(&file.text) == "#" {
                    j -= 1;
                }
            }
            _ => return false,
        }
    }
    false
}

/// Line spans of `macro_rules!` definitions — `pub` tokens inside a
/// macro body are expansion templates, not items.
fn macro_rules_spans(file: &SourceFile) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    for k in 0..file.code.len() {
        if file.code_tok(k) != "macro_rules" {
            continue;
        }
        // macro_rules ! name { … }
        let mut j = k + 1;
        while j < file.code.len() && file.code_tok(j) != "{" {
            j += 1;
        }
        if j >= file.code.len() {
            continue;
        }
        let close = file.matching_close(j);
        spans.push((
            file.tokens[file.code[k]].line,
            file.tokens[file.code[close]].line,
        ));
    }
    spans
}
