//! `seqlock-protocol`: structural verification of the optimistic-read
//! discipline in the seqlock modules.
//!
//! v1's `seqlock-relaxed` rule demanded a hand-written waiver on every
//! `Relaxed` load — documentation, not proof. v2 replaces it with a
//! state machine over each function body that checks the orderings
//! actually compose into one of the two sound shapes:
//!
//! * **CAS pre-read** — a `Relaxed` load whose value feeds a
//!   `compare_exchange*` later in the same function. The CAS's success
//!   ordering synchronizes; the pre-read only picks the expected value.
//! * **Optimistic read (Boehm's seqlock pattern)** — an `Acquire` load
//!   of the version word, the data reads, a `fence(Acquire)`, then a
//!   re-load compared (`==`) against the first read. The re-load may be
//!   `Relaxed` *because* the fence orders the data loads before it.
//!
//! Rule A: every `Relaxed` load must be one of the two (a CAS follows
//! it, or a fence preceded by an `Acquire`-or-stronger load precedes it
//! and an `==` comparison follows it). Rule B: every `Acquire` load in
//! a CAS-free function is an optimistic begin and must be *completed* —
//! fence, re-load, `==` — before the function ends. Anything else is a
//! hole in the protocol, reported structurally instead of waived.

use super::{Rule, SEQLOCK_MODULES};
use crate::diag::Diagnostic;
use crate::parser::FnInfo;
use crate::source::SourceFile;
use crate::LintContext;

/// One ordering-relevant event in a function body, in token order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// `.load(Ordering::Relaxed)`
    LoadRelaxed,
    /// `.load(Ordering::Acquire)` or stronger (`SeqCst`)
    LoadAcquire,
    /// `fence(Ordering::Acquire)` / `fence(Ordering::SeqCst)`
    Fence,
    /// `compare_exchange` / `compare_exchange_weak`
    Cas,
    /// An `==` comparison
    Eq,
}

/// Verifies the load-seq → read-data → fence/re-load → compare-retry
/// order in [`SEQLOCK_MODULES`].
pub struct SeqlockProtocol;

impl Rule for SeqlockProtocol {
    fn id(&self) -> &'static str {
        "seqlock-protocol"
    }

    fn summary(&self) -> &'static str {
        "seqlock reads follow load-seq \u{2192} read-data \u{2192} fence/re-load \u{2192} compare-retry (CAS pre-reads exempt)"
    }

    fn check_workspace(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        for f in &ctx.analysis.fns {
            let file = &ctx.files[f.file];
            if !SEQLOCK_MODULES.contains(&file.rel.as_str()) || f.test {
                continue;
            }
            self.check_fn(file, f, out);
        }
    }
}

impl SeqlockProtocol {
    fn check_fn(&self, file: &SourceFile, f: &FnInfo, out: &mut Vec<Diagnostic>) {
        let Some((open, close)) = f.body else {
            return;
        };
        let events = scan_events(file, open, close);
        let has_cas = events.iter().any(|(e, ..)| *e == Event::Cas);

        for (i, &(event, line, col)) in events.iter().enumerate() {
            match event {
                Event::LoadRelaxed => {
                    // Sound shape 1: CAS pre-read.
                    let cas_after = events[i + 1..].iter().any(|(e, ..)| *e == Event::Cas);
                    // Sound shape 2: fence-paired validation re-read.
                    let begin_then_fence = events[..i]
                        .iter()
                        .position(|(e, ..)| *e == Event::Fence)
                        .is_some_and(|fence_at| {
                            events[..fence_at]
                                .iter()
                                .any(|(e, ..)| *e == Event::LoadAcquire)
                        });
                    let compared = events[i + 1..].iter().any(|(e, ..)| *e == Event::Eq);
                    if !(cas_after || (begin_then_fence && compared)) {
                        out.push(self.diag(
                            file,
                            line,
                            col,
                            "`Relaxed` load is neither a CAS pre-read nor a fence-paired \
                             validation re-read"
                                .to_owned(),
                            "sound shapes: load feeds a later compare_exchange, or \
                             Acquire-load \u{2192} fence(Acquire) \u{2192} this re-load \u{2192} `==` compare",
                        ));
                    }
                }
                Event::LoadAcquire if !has_cas => {
                    // Optimistic begin: must complete with fence → re-load → ==.
                    let completed = events[i + 1..]
                        .iter()
                        .position(|(e, ..)| *e == Event::Fence)
                        .is_some_and(|rel| {
                            let after_fence = &events[i + 1 + rel + 1..];
                            after_fence
                                .iter()
                                .position(|(e, ..)| {
                                    matches!(*e, Event::LoadRelaxed | Event::LoadAcquire)
                                })
                                .is_some_and(|rl| {
                                    after_fence[rl + 1..].iter().any(|(e, ..)| *e == Event::Eq)
                                })
                        });
                    if !completed {
                        out.push(
                            self.diag(
                                file,
                                line,
                                col,
                                "optimistic `Acquire` load of a version word is never validated"
                                    .to_owned(),
                                "complete the seqlock read: fence(Acquire) after the data reads, \
                             re-load the version, `==`-compare against this value and retry",
                            ),
                        );
                    }
                }
                _ => {}
            }
        }
    }

    fn diag(
        &self,
        file: &SourceFile,
        line: u32,
        col: u32,
        message: String,
        hint: &str,
    ) -> Diagnostic {
        Diagnostic {
            rule: self.id(),
            file: file.rel.clone(),
            line,
            col,
            message,
            hint: hint.to_owned(),
        }
    }
}

/// Harvests ordering events from the code tokens of one body, in order.
fn scan_events(file: &SourceFile, open: usize, close: usize) -> Vec<(Event, u32, u32)> {
    let mut events = Vec::new();
    let mut k = open + 1;
    while k < close {
        let tok = file.tokens[file.code[k]];
        if file.is_test_line(tok.line) {
            k += 1;
            continue;
        }
        let text = file.code_tok(k);
        let prev = k.checked_sub(1).map_or("", |p| file.code_tok(p));
        let next = file.code.get(k + 1).map_or("", |_| file.code_tok(k + 1));
        match text {
            "load" if prev == "." && next == "(" => {
                if let Some(ord) = ordering_arg(file, k + 1, close) {
                    let event = match ord {
                        "Relaxed" => Some(Event::LoadRelaxed),
                        "Acquire" | "SeqCst" => Some(Event::LoadAcquire),
                        _ => None,
                    };
                    if let Some(e) = event {
                        events.push((e, tok.line, tok.col));
                    }
                }
            }
            "fence" if prev != "." && next == "(" => {
                if let Some("Acquire" | "SeqCst" | "AcqRel") = ordering_arg(file, k + 1, close) {
                    events.push((Event::Fence, tok.line, tok.col));
                }
            }
            "compare_exchange" | "compare_exchange_weak" if prev == "." && next == "(" => {
                events.push((Event::Cas, tok.line, tok.col));
            }
            "=" if next == "=" && !matches!(prev, "=" | "!" | "<" | ">") => {
                events.push((Event::Eq, tok.line, tok.col));
                k += 1; // consume both `=`s
            }
            _ => {}
        }
        k += 1;
    }
    events
}

/// The `Ordering::X` variant named inside the paren group opening at
/// code index `open_paren` (bounded by `close`).
fn ordering_arg(file: &SourceFile, open_paren: usize, close: usize) -> Option<&str> {
    let end = file.matching_close(open_paren).min(close);
    for k in open_paren + 1..end {
        if k + 3 < end
            && file.code_tok(k) == "Ordering"
            && file.code_tok(k + 1) == ":"
            && file.code_tok(k + 2) == ":"
        {
            return Some(file.code_tok(k + 3));
        }
    }
    None
}
