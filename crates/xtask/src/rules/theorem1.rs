//! `theorem1-confinement`: candidate-bucket XOR arithmetic lives only
//! in `core/vertical.rs` and `core/bitmask.rs`.
//!
//! The paper's Theorem 1 (and Theorem 2 for the generalized k-VCF)
//! guarantees relocatability *only because* every candidate bucket is
//! derived by XOR-ing masked fingerprint hash bits, so the four
//! candidates form a closed coset. A stray `b ^ mask` expression
//! elsewhere can silently break that closure — the filter still
//! "works" but deletes and relocations corrupt. The rule is a
//! heuristic: any `^` whose six-code-token neighbourhood mentions a
//! bucket- or mask-flavoured identifier is presumed to be candidate
//! arithmetic and must move behind the `vertical` helpers.

use super::{Rule, THEOREM1_MODULES};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Identifiers that smell like bucket indices (exact match — generic
/// names like `seed` or `shard_mask` deliberately excluded).
const BUCKETISH: &[&str] = &[
    "b1",
    "b2",
    "b3",
    "b4",
    "bg",
    "bucket",
    "buckets",
    "cur_bucket",
    "current",
    "alt",
    "alts",
    "alt_bucket",
    "candidate",
    "candidates",
];

/// Identifiers that smell like vertical-hashing masks or fingerprint
/// hashes.
const MASKISH: &[&str] = &[
    "bm",
    "bm1",
    "bm2",
    "mask1",
    "mask2",
    "masks",
    "index_mask",
    "fingerprint_hash",
    "hfp",
    "vh",
    "victim_hash",
];

/// How many code tokens on each side of `^` form the neighbourhood.
const WINDOW: usize = 6;

/// Flags suspected candidate-bucket XORs outside [`THEOREM1_MODULES`].
pub struct TheoremOneConfinement;

impl Rule for TheoremOneConfinement {
    fn id(&self) -> &'static str {
        "theorem1-confinement"
    }

    fn summary(&self) -> &'static str {
        "candidate-bucket XOR/mask arithmetic appears only in core/vertical.rs and core/bitmask.rs"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !file.rel.starts_with("crates/core/src/")
            || THEOREM1_MODULES.contains(&file.rel.as_str())
        {
            return;
        }
        for k in 0..file.code.len() {
            if file.code_tok(k) != "^" {
                continue;
            }
            let tok = file.tokens[file.code[k]];
            if file.is_test_line(tok.line) {
                continue;
            }
            let lo = k.saturating_sub(WINDOW);
            let hi = (k + WINDOW + 1).min(file.code.len());
            let suspicious = (lo..hi).any(|j| {
                let t = file.code_tok(j);
                BUCKETISH.contains(&t) || MASKISH.contains(&t)
            });
            if !suspicious {
                continue;
            }
            out.push(Diagnostic {
                rule: self.id(),
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: "bucket/mask XOR outside the Theorem-1 modules".to_owned(),
                hint: "derive candidates via vcf_core::vertical (masked_candidate / \
                       masked_relocate / VerticalParams) so coset closure stays provable in one place"
                    .to_owned(),
            });
        }
    }
}
