//! `crate-unsafe-attr`: every crate root pins its unsafe-code policy.
//!
//! A crate either forbids unsafe outright, or — when it legitimately
//! needs it (the prefetch intrinsic in `vcf-table`) — denies it by
//! default and denies `unsafe_op_in_unsafe_fn` so each unsafe
//! operation is individually scoped and justified.

use super::Rule;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Flags crate roots (`src/lib.rs`, `src/main.rs`) missing the unsafe
/// policy attributes.
pub struct CrateUnsafeAttr;

impl Rule for CrateUnsafeAttr {
    fn id(&self) -> &'static str {
        "crate-unsafe-attr"
    }

    fn summary(&self) -> &'static str {
        "crate roots carry #![forbid(unsafe_code)] or deny(unsafe_code) + deny(unsafe_op_in_unsafe_fn)"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let is_root = file.rel.ends_with("/src/lib.rs")
            || file.rel.ends_with("/src/main.rs")
            || file.rel == "src/lib.rs"
            || file.rel == "src/main.rs";
        if !is_root {
            return;
        }
        let mut forbid_unsafe = false;
        let mut deny_unsafe = false;
        let mut deny_unsafe_op = false;
        for (level, args) in inner_lint_attrs(file) {
            let strict = level == "forbid" || level == "deny";
            if !strict {
                continue;
            }
            if args.iter().any(|a| a == "unsafe_code") {
                if level == "forbid" {
                    forbid_unsafe = true;
                } else {
                    deny_unsafe = true;
                }
            }
            if args.iter().any(|a| a == "unsafe_op_in_unsafe_fn") {
                deny_unsafe_op = true;
            }
        }
        if forbid_unsafe || (deny_unsafe && deny_unsafe_op) {
            return;
        }
        let (message, hint) = if deny_unsafe {
            (
                "crate denies unsafe_code but not unsafe_op_in_unsafe_fn".to_owned(),
                "add `#![deny(unsafe_op_in_unsafe_fn)]` so unsafe fns scope each unsafe op",
            )
        } else {
            (
                "crate root does not pin an unsafe-code policy".to_owned(),
                "add `#![forbid(unsafe_code)]` (or, for a crate that needs unsafe, \
                 `#![deny(unsafe_code)]` + `#![deny(unsafe_op_in_unsafe_fn)]`)",
            )
        };
        out.push(Diagnostic {
            rule: self.id(),
            file: file.rel.clone(),
            line: 1,
            col: 1,
            message,
            hint: hint.to_owned(),
        });
    }
}

/// Collects inner attributes of the form `#![level(arg, …)]`, returning
/// `(level, args)` pairs.
fn inner_lint_attrs(file: &SourceFile) -> Vec<(String, Vec<String>)> {
    let mut attrs = Vec::new();
    let mut k = 0usize;
    while k + 2 < file.code.len() {
        if !(file.code_tok(k) == "#" && file.code_tok(k + 1) == "!" && file.code_tok(k + 2) == "[")
        {
            k += 1;
            continue;
        }
        let close = file.matching_close(k + 2);
        let inner: Vec<String> = (k + 3..close)
            .map(|j| file.code_tok(j).to_owned())
            .collect();
        if inner.len() >= 2 && inner[1] == "(" {
            attrs.push((inner[0].clone(), inner[2..].to_vec()));
        }
        k = close + 1;
    }
    attrs
}
