//! The rule registry and the path allowlists every rule scopes itself
//! with.
//!
//! Allowlists are deliberately *path-based and explicit*: the point of
//! the linter is that concurrency primitives, panic paths, and the
//! Theorem-1 bucket arithmetic live only where a reviewer expects them.
//! Moving such code to a new module is supposed to fail the lint until
//! the allowlist (and DESIGN.md §10) is updated in the same commit.

pub mod atomics;
pub mod crate_attrs;
pub mod docs;
pub mod panic_reach;
pub mod safety;
pub mod seqlock;
pub mod simd;
pub mod suppressions;
pub mod theorem1;
pub mod wire;

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::LintContext;

/// Modules allowed to name `Ordering::*` atomic orderings. Everything
/// else must go through these modules' APIs instead of hand-rolling
/// atomics.
pub const ATOMIC_MODULES: &[&str] = &[
    "crates/table/src/atomic_bucket.rs",
    "crates/core/src/concurrent.rs",
    "crates/traits/src/counters.rs",
    "crates/server/src/metrics.rs",
];

/// Modules holding seqlock version words, where `Relaxed` loads need a
/// written justification.
pub const SEQLOCK_MODULES: &[&str] = &["crates/core/src/concurrent.rs"];

/// The only directory allowed to contain `#[target_feature]`-gated SIMD
/// code; the safe `KernelKind` dispatch wrappers live at its root.
pub const SIMD_KERNEL_DIR: &str = "crates/table/src/kernels/";

/// The only modules allowed to XOR bucket indices with fingerprint
/// masks — the Theorem-1 / Theorem-2 coset arithmetic.
pub const THEOREM1_MODULES: &[&str] =
    &["crates/core/src/vertical.rs", "crates/core/src/bitmask.rs"];

/// Crates whose public API must be fully documented.
pub const DOCS_CRATES: &[&str] = &[
    "crates/core/src/",
    "crates/table/src/",
    "crates/traits/src/",
];

/// One invariant check. A rule inspects single files, the whole
/// workspace, or both.
pub trait Rule {
    /// Stable id used in output, `--rule` filters, and waivers.
    fn id(&self) -> &'static str;
    /// One-line description for `vcf-xtask rules`.
    fn summary(&self) -> &'static str;
    /// Per-file check. Default: nothing.
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let _ = (file, out);
    }
    /// Workspace-level check (cross-file facts). Default: nothing.
    fn check_workspace(&self, ctx: &LintContext, out: &mut Vec<Diagnostic>) {
        let _ = (ctx, out);
    }
}

/// Every registered rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(safety::SafetyComment),
        Box::new(atomics::AtomicOrdering),
        Box::new(seqlock::SeqlockProtocol),
        Box::new(panic_reach::PanicReachability),
        Box::new(wire::FormatExhaustiveness),
        Box::new(theorem1::TheoremOneConfinement),
        Box::new(docs::MissingDocsPublic),
        Box::new(crate_attrs::CrateUnsafeAttr),
        Box::new(suppressions::TsanSuppressions),
        Box::new(simd::SimdConfinement),
    ]
}

/// Whether `rel` is compiled non-test crate source (`crates/*/src/…`).
pub fn is_crate_src(rel: &str) -> bool {
    rel.starts_with("crates/") && rel.contains("/src/")
}
