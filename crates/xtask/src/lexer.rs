//! A hand-rolled Rust tokenizer — just enough lexical structure for the
//! invariant rules, with no external dependencies (the workspace builds
//! offline, so `syn`/`proc-macro2` are not an option).
//!
//! The lexer is lossless about *placement* (every token carries its byte
//! span, line, and column) and deliberately sloppy about *semantics*: it
//! distinguishes identifiers, literals, comments, and single-character
//! punctuation, which is all the pattern rules need. Multi-character
//! operators appear as adjacent `Punct` tokens (`^=` is `^` then `=`),
//! so rules match token *sequences* rather than operator kinds.
//!
//! What it gets right, because the rules depend on it:
//!
//! * comments and string/char literals never leak into code tokens — a
//!   rule matching `Ordering` cannot be fooled by `"Ordering::Relaxed"`
//!   in a string or a doc comment;
//! * raw strings (`r#"…"#`, any hash depth, `b`/`br` prefixes) and
//!   nested block comments are consumed whole;
//! * lifetimes (`'a`) are not confused with char literals (`'a'`).

/// Lexical class of a [`Token`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not separate the two).
    Ident,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// Numeric literal (integer or float, any base).
    Number,
    /// String literal of any flavour: `"…"`, `r"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// Character or byte-character literal: `'x'`, `b'\n'`.
    CharLit,
    /// A single punctuation character.
    Punct,
    /// `// …` comment, plain (`//`), outer doc (`///`), or inner (`//!`).
    LineComment,
    /// `/* … */` comment, plain or doc, nesting handled.
    BlockComment,
}

/// One lexed token with its source placement.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based *character* (Unicode scalar) column of the first byte —
    /// what editors and SARIF's `unicodeCodePoints` column kind expect,
    /// so a multi-byte string on the line cannot skew later columns.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Consumes a raw-string body starting at the opening quote position,
/// given the number of `#`s in the opener. Returns the end offset
/// (past the closing quote and hashes).
fn raw_string_end(b: &[u8], open_quote: usize, hashes: usize) -> usize {
    let mut i = open_quote + 1;
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&c| c == b'#')
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    b.len()
}

/// Tokenizes `src`. Never fails: unrecognized bytes become `Punct`.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    // A UTF-8 byte-order mark would otherwise glue onto the first
    // identifier (BOM bytes are ≥ 0x80, which `is_ident_start` accepts
    // for multi-byte idents) and break keyword matching on token 0.
    let mut i = if src.starts_with('\u{feff}') { 3 } else { 0 };
    let mut line = 1u32;
    let mut col = 1u32;

    while i < b.len() {
        let start = i;
        let (tline, tcol) = (line, col);
        let c = b[i];

        let kind = if c.is_ascii_whitespace() {
            i += 1;
            advance(b, start, i, &mut line, &mut col);
            continue;
        } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            TokenKind::LineComment
        } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokenKind::BlockComment
        } else if c == b'"' {
            i = string_end(b, i);
            TokenKind::Str
        } else if (c == b'b' || c == b'r' || c == b'c')
            && i + 1 < b.len()
            && literal_prefix(b, i).is_some()
        {
            let (end, kind) = literal_prefix(b, i).unwrap_or((i + 1, TokenKind::Ident));
            i = end;
            kind
        } else if is_ident_start(c) {
            i += 1;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            TokenKind::Ident
        } else if c.is_ascii_digit() {
            i += 1;
            let mut seen_dot = false;
            while i < b.len() {
                if is_ident_continue(b[i]) {
                    i += 1;
                } else if b[i] == b'.' && !seen_dot && i + 1 < b.len() && b[i + 1].is_ascii_digit()
                {
                    seen_dot = true;
                    i += 1;
                } else {
                    break;
                }
            }
            TokenKind::Number
        } else if c == b'\'' {
            let (end, kind) = char_or_lifetime(b, i);
            i = end;
            kind
        } else {
            i += 1;
            TokenKind::Punct
        };

        advance(b, start, i, &mut line, &mut col);
        tokens.push(Token {
            kind,
            start,
            end: i,
            line: tline,
            col: tcol,
        });
    }
    tokens
}

fn advance(b: &[u8], from: usize, to: usize, line: &mut u32, col: &mut u32) {
    for &c in &b[from..to] {
        if c == b'\n' {
            *line += 1;
            *col = 1;
        } else if c & 0xC0 != 0x80 {
            // UTF-8 continuation bytes don't advance the column: `col`
            // counts characters, so multi-byte text in strings or
            // comments cannot skew the columns of later tokens.
            *col += 1;
        }
    }
}

/// End offset of a conventional (escapable) string literal whose opening
/// quote is at `open`.
fn string_end(b: &[u8], open: usize) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// Handles `b`/`r`/`c`-prefixed literals and raw identifiers starting at
/// `i`. Returns `(end, kind)` when position `i` starts such a literal,
/// `None` when it is a plain identifier beginning with that letter.
fn literal_prefix(b: &[u8], i: usize) -> Option<(usize, TokenKind)> {
    let c = b[i];
    // b'x' — byte character.
    if c == b'b' && b.get(i + 1) == Some(&b'\'') {
        let (end, _) = char_or_lifetime(b, i + 1);
        return Some((end, TokenKind::CharLit));
    }
    // b"…" / c"…" — byte / C string.
    if (c == b'b' || c == b'c') && b.get(i + 1) == Some(&b'"') {
        return Some((string_end(b, i + 1), TokenKind::Str));
    }
    // br#…"…"#… — raw byte string.
    if c == b'b' && b.get(i + 1) == Some(&b'r') {
        let mut j = i + 2;
        while b.get(j) == Some(&b'#') {
            j += 1;
        }
        if b.get(j) == Some(&b'"') {
            return Some((raw_string_end(b, j, j - (i + 2)), TokenKind::Str));
        }
        return None;
    }
    if c == b'r' {
        // r#…"…"#… — raw string; r#ident — raw identifier.
        let mut j = i + 1;
        while b.get(j) == Some(&b'#') {
            j += 1;
        }
        if b.get(j) == Some(&b'"') {
            return Some((raw_string_end(b, j, j - (i + 1)), TokenKind::Str));
        }
        if j > i + 1 && b.get(j).copied().is_some_and(is_ident_start) {
            let mut k = j + 1;
            while k < b.len() && is_ident_continue(b[k]) {
                k += 1;
            }
            return Some((k, TokenKind::Ident));
        }
    }
    None
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) at a `'` byte.
fn char_or_lifetime(b: &[u8], i: usize) -> (usize, TokenKind) {
    match b.get(i + 1) {
        // '\n', '\'', '\u{1F600}' — escaped char literal.
        Some(b'\\') => {
            let mut j = i + 2;
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'\'' => return (j + 1, TokenKind::CharLit),
                    _ => j += 1,
                }
            }
            (b.len(), TokenKind::CharLit)
        }
        Some(&n) if is_ident_continue(n) => {
            let mut j = i + 2;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            if b.get(j) == Some(&b'\'') {
                (j + 1, TokenKind::CharLit)
            } else {
                (j, TokenKind::Lifetime)
            }
        }
        // Unusual char like '(' — only valid as '(', consume to close.
        Some(_) if b.get(i + 2) == Some(&b'\'') => (i + 3, TokenKind::CharLit),
        _ => (i + 1, TokenKind::Punct),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_owned()))
            .collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let toks = kinds("let x = a1 ^ 0xff;");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "a1", "^", "0xff", ";"]);
        assert_eq!(toks[4].0, TokenKind::Punct);
        assert_eq!(toks[5].0, TokenKind::Number);
    }

    #[test]
    fn strings_do_not_leak_code() {
        let toks = kinds(r#"call("Ordering::Relaxed ^ bucket") ^ x"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("Relaxed")));
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["call", "x"]);
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = "let s = r##\"quote \"# inside\"##; done";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("inside")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "done"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count();
        let chars = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still */ b");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["a", "b"]);
    }

    #[test]
    fn lines_and_columns_are_one_based() {
        let src = "ab\n  cd";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn doc_and_plain_comments_keep_text() {
        let src = "/// outer doc\n//! inner\n// SAFETY: fine\nfn x() {}";
        let toks = lex(src);
        let comments: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::LineComment)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(comments.len(), 3);
        assert!(comments[2].contains("SAFETY:"));
    }

    #[test]
    fn byte_and_raw_identifiers() {
        let toks = kinds("r#type b'\\n' br#\"raw\"# b\"bytes\"");
        assert_eq!(toks[0].0, TokenKind::Ident);
        assert_eq!(toks[1].0, TokenKind::CharLit);
        assert_eq!(toks[2].0, TokenKind::Str);
        assert_eq!(toks[3].0, TokenKind::Str);
    }

    #[test]
    fn leading_bom_is_skipped() {
        let toks = kinds("\u{feff}fn main() {}");
        assert_eq!(toks[0], (TokenKind::Ident, "fn".to_owned()));
        // The BOM also doesn't occupy a column.
        assert_eq!(lex("\u{feff}fn main() {}")[0].col, 1);
    }

    #[test]
    fn columns_count_chars_not_bytes() {
        // "héllo" is 6 bytes but 5 chars; the token after it must sit
        // at the visual column an editor (or SARIF consumer) expects.
        let src = "let s = \"héllo\"; x";
        let toks = lex(src);
        let x = toks.last().unwrap();
        assert_eq!(x.text(src), "x");
        assert_eq!(x.col, 18);
    }

    #[test]
    fn crlf_line_endings_track_lines() {
        let src = "ab\r\ncd\r\nef";
        let toks = lex(src);
        assert_eq!((toks[1].line, toks[1].col), (2, 1));
        assert_eq!((toks[2].line, toks[2].col), (3, 1));
    }

    #[test]
    fn unterminated_raw_string_consumes_to_eof() {
        // Must not panic or loop; everything after the opener is Str.
        let toks = kinds("let s = r##\"never closed");
        assert_eq!(toks.last().unwrap().0, TokenKind::Str);
        let toks = kinds("let r_alone = r");
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "r".to_owned()));
    }

    #[test]
    fn byte_string_with_escaped_quote_does_not_leak() {
        let toks = kinds(r#"f(b"a\"b") ^ x"#);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["f", "x"]);
    }

    #[test]
    fn unterminated_nested_block_comment_consumes_to_eof() {
        let toks = kinds("a /* outer /* inner */ not closed");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
    }
}
