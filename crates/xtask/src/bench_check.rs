//! `vcf-xtask bench-check`: schema validation for the committed bench
//! baselines.
//!
//! The perf trajectory lives in `BENCH_insert.json` and
//! `BENCH_server.json` as flat `"group/sub/name" → mean ns` maps. Two
//! failure modes have bitten bench baselines in other repos: a harness
//! change silently *dropping* groups (the file shrinks and nobody
//! notices the lost coverage), and a serialization bug committing
//! zero/negative/NaN timings. This check pins both: every key must
//! live under a known group prefix, every value must be a positive
//! finite ns figure, and the entry count must stay monotone against
//! the committed baseline floor (the count at the time the floor was
//! last ratcheted — raise it when benches are added, never lower it).

use crate::json::{self, Value};
use std::fs;
use std::path::Path;

/// One bench baseline file's schema: name, allowed top-level groups,
/// and the committed entry-count floor.
pub struct BenchSchema {
    /// Workspace-relative file name.
    pub rel: &'static str,
    /// Allowed `group/` prefixes (first path segment of every key).
    pub groups: &'static [&'static str],
    /// Minimum entry count — the committed baseline, ratcheted only up.
    pub min_entries: usize,
}

/// The committed baselines and their schemas. Floors match the files
/// as of PR 9 (45 insert-side entries, 12 server sweep points).
pub const SCHEMAS: &[BenchSchema] = &[
    BenchSchema {
        rel: "BENCH_insert.json",
        groups: &["insert", "churn", "tiered"],
        min_entries: 45,
    },
    BenchSchema {
        rel: "BENCH_server.json",
        groups: &["server"],
        min_entries: 12,
    },
];

/// Validates one bench document against its schema. Returns
/// human-readable problem strings (empty ⇒ valid).
pub fn check_doc(schema: &BenchSchema, text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let doc = match json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            problems.push(format!("{}: not valid JSON: {e}", schema.rel));
            return problems;
        }
    };
    let Value::Obj(pairs) = &doc else {
        problems.push(format!("{}: top level must be an object", schema.rel));
        return problems;
    };
    for (key, value) in pairs {
        let group = key.split('/').next().unwrap_or_default();
        if !schema.groups.contains(&group) {
            problems.push(format!(
                "{}: key `{key}` has unknown group `{group}` (expected one of {})",
                schema.rel,
                schema.groups.join(", ")
            ));
        }
        if key.split('/').count() < 2 {
            problems.push(format!(
                "{}: key `{key}` is not of the form `group/…/name`",
                schema.rel
            ));
        }
        match value {
            Value::Num(ns) if ns.is_finite() && *ns > 0.0 => {}
            Value::Num(ns) => problems.push(format!(
                "{}: `{key}` = {ns} is not a positive finite ns value",
                schema.rel
            )),
            _ => problems.push(format!(
                "{}: `{key}` must be a number of nanoseconds",
                schema.rel
            )),
        }
    }
    if pairs.len() < schema.min_entries {
        problems.push(format!(
            "{}: {} entries, below the committed baseline of {} \u{2014} bench coverage \
             regressed (if a group was intentionally retired, lower the floor in \
             bench_check.rs in the same PR)",
            schema.rel,
            pairs.len(),
            schema.min_entries
        ));
    }
    problems
}

/// Runs the check over every committed baseline under `root`. A missing
/// file is a failure — the baselines are part of the repo contract.
pub fn run(root: &Path) -> Vec<String> {
    let mut problems = Vec::new();
    for schema in SCHEMAS {
        match fs::read_to_string(root.join(schema.rel)) {
            Ok(text) => problems.extend(check_doc(schema, &text)),
            Err(e) => problems.push(format!("{}: unreadable: {e}", schema.rel)),
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_schema() -> BenchSchema {
        BenchSchema {
            rel: "BENCH_test.json",
            groups: &["insert"],
            min_entries: 2,
        }
    }

    #[test]
    fn valid_doc_passes() {
        let doc = r#"{"insert/a/b": 12.5, "insert/c": 3.0}"#;
        assert!(check_doc(&tiny_schema(), doc).is_empty());
    }

    #[test]
    fn unknown_group_flagged() {
        let doc = r#"{"insert/a": 1.0, "mystery/b": 2.0}"#;
        let problems = check_doc(&tiny_schema(), doc);
        assert!(problems
            .iter()
            .any(|p| p.contains("unknown group `mystery`")));
    }

    #[test]
    fn non_positive_values_flagged() {
        let doc = r#"{"insert/a": 0, "insert/b": -4.0}"#;
        let problems = check_doc(&tiny_schema(), doc);
        assert_eq!(
            problems
                .iter()
                .filter(|p| p.contains("positive finite"))
                .count(),
            2
        );
    }

    #[test]
    fn entry_count_below_floor_flagged() {
        let doc = r#"{"insert/a": 1.0}"#;
        let problems = check_doc(&tiny_schema(), doc);
        assert!(problems
            .iter()
            .any(|p| p.contains("below the committed baseline")));
    }

    #[test]
    fn malformed_json_reported_not_panicking() {
        let problems = check_doc(&tiny_schema(), "{nope");
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("not valid JSON"));
    }

    #[test]
    fn flat_key_without_group_path_flagged() {
        let doc = r#"{"insert": 1.0, "insert/x": 2.0}"#;
        let problems = check_doc(&tiny_schema(), doc);
        assert!(problems.iter().any(|p| p.contains("not of the form")));
    }

    #[test]
    fn committed_baselines_validate() {
        // The real repo files must satisfy their own schemas; run from
        // the workspace root when available.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap()
            .to_path_buf();
        if root.join("BENCH_insert.json").is_file() {
            let problems = run(&root);
            assert!(problems.is_empty(), "{problems:?}");
        }
    }
}
