//! A minimal JSON value, writer, and parser — the workspace builds
//! offline, so `serde` is not available. The parser exists so the
//! fixture tests can round-trip `--json` output instead of merely
//! substring-matching it.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Pretty-prints with two-space indentation and `\n` line ends.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, val)) in pairs.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, key);
                    out.push_str(": ");
                    val.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }

    /// Member lookup on an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The items, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns `Err` with a byte offset and message
/// on malformed input.
pub fn parse(src: &str) -> Result<Value, String> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let Value::Str(key) = parse_value(b, pos)? else {
                    return Err(format!("non-string object key at offset {pos}"));
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                pairs.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("malformed number at offset {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                let esc = b.get(*pos + 1).copied().ok_or("dangling escape")?;
                *pos += 2;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape '\\{}'", other as char)),
                }
            }
            _ => {
                // Copy the full UTF-8 sequence starting here.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("empty char")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structure() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Num(3.0)),
            (
                "b".into(),
                Value::Arr(vec![Value::Str("x\n\"y\"".into()), Value::Bool(true)]),
            ),
            ("c".into(), Value::Null),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s": "tab\t quote\" uA", "n": -1.5e2}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("tab\t quote\" uA"));
        assert_eq!(v.get("n").and_then(Value::as_num), Some(-150.0));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} extra").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Num(42.0).render(), "42\n");
    }
}
