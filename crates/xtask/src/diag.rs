//! Diagnostics: the one output type every rule produces, with text and
//! JSON renderings.

use crate::json::Value;

/// A single rule violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule id, e.g. `no-panic-hot-path`.
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to waive it, when a waiver is legitimate).
    pub hint: String,
}

impl Diagnostic {
    /// `file:line:col [rule] message` plus an indented hint line.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}:{} [{}] {}\n  hint: {}",
            self.file, self.line, self.col, self.rule, self.message, self.hint
        )
    }

    /// The diagnostic as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("rule".into(), Value::Str(self.rule.into())),
            ("file".into(), Value::Str(self.file.clone())),
            ("line".into(), Value::Num(f64::from(self.line))),
            ("col".into(), Value::Num(f64::from(self.col))),
            ("message".into(), Value::Str(self.message.clone())),
            ("hint".into(), Value::Str(self.hint.clone())),
        ])
    }
}

/// Renders the machine-readable report for `--json` mode.
pub fn report_json(diags: &[Diagnostic], checked_files: usize, rules: &[&str]) -> String {
    Value::Obj(vec![
        ("version".into(), Value::Num(1.0)),
        ("checked_files".into(), Value::Num(checked_files as f64)),
        (
            "rules".into(),
            Value::Arr(rules.iter().map(|r| Value::Str((*r).into())).collect()),
        ),
        (
            "diagnostics".into(),
            Value::Arr(diags.iter().map(Diagnostic::to_json).collect()),
        ),
    ])
    .render()
}

/// Orders diagnostics for stable output: by file, line, column, rule.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}
