//! The item parser: per-function body extraction, call-site harvesting,
//! enum layouts, and `// lint: <marker>` item annotations — the semantic
//! layer between the token stream ([`crate::lexer`]) and the dataflow
//! rules ([`crate::callgraph`] and `rules/{panic_reach,format}`).
//!
//! The parser is *name-level*, not type-level: it knows which `fn`s
//! exist, which `impl`/`trait` block owns them, what they call (method,
//! path, bare, or macro call sites), and which enums declare which
//! variants. It deliberately does not attempt type inference; the call
//! graph compensates by resolving names to the union of candidates and
//! scoping that union by crate dependencies (see `callgraph.rs`).
//!
//! # Item annotations
//!
//! Besides waivers (`// lint: allow(…)`, parsed in [`crate::source`]),
//! items can carry *markers* that opt them into a rule's scope:
//!
//! ```text
//! // lint: hot-path
//! pub fn contains(&self, item: u64) -> bool { … }
//!
//! // lint: wire-format
//! pub enum OpCode { … }
//!
//! // lint: wire-format(decode)
//! pub fn decode(buffer: &[u8]) -> Result<Self, Error> { … }
//! ```
//!
//! A marker binds to the next `fn`/`enum` item, looking through doc
//! comments, attributes, and visibility qualifiers. A marker that binds
//! to nothing is a diagnostic (the owning rule reports it), so stale
//! annotations cannot rot in place.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// How a call site names its callee.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CallKind {
    /// `receiver.name(…)` — resolves against methods only.
    Method,
    /// `path::name(…)` or a `Path::name` value reference.
    Path,
    /// `name(…)` with no qualifier — resolves against free functions.
    Bare,
    /// `name!(…)` — macro invocation (panic/assert family matter).
    Macro,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Callee name (last path segment).
    pub name: String,
    /// Qualification shape, which picks the resolution candidate set.
    pub kind: CallKind,
    /// For [`CallKind::Path`]: the path segment immediately before the
    /// callee (`Error` in `io::Error::new`, `bulk` in
    /// `bulk::build_from_iter`). Lets resolution match the owner type
    /// instead of fanning out to every same-named method.
    pub qual: Option<String>,
    /// 1-based line of the callee token.
    pub line: u32,
    /// 1-based column of the callee token.
    pub col: u32,
}

/// One parsed function (or bodyless trait-method declaration).
#[derive(Debug)]
pub struct FnInfo {
    /// Index of the declaring file in the analysis' file list.
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Name of the `impl` target type or `trait` that owns this fn.
    pub owner: Option<String>,
    /// Declared inside an `impl` or `trait` block (a method).
    pub is_method: bool,
    /// Bodyless declaration inside a `trait` block.
    pub trait_decl: bool,
    /// Code-token index range `(open_brace, close_brace)` of the body.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Line of the body's closing brace (= `line` when bodyless).
    pub end_line: u32,
    /// Carries a `// lint: hot-path` marker.
    pub hot_path: bool,
    /// Carries a `// lint: wire-format(decode)` marker.
    pub wire_decode: bool,
    /// Lies inside `#[cfg(test)]` or a non-`src` tree (tests/benches).
    pub test: bool,
    /// Call sites harvested from the body, in source order.
    pub calls: Vec<Call>,
}

impl FnInfo {
    /// `file_stem::owner::name` — the human-readable node label used in
    /// reachability chains.
    pub fn label(&self, files: &[SourceFile]) -> String {
        let stem = files[self.file]
            .rel
            .rsplit('/')
            .next()
            .unwrap_or(&files[self.file].rel)
            .trim_end_matches(".rs");
        match &self.owner {
            Some(owner) => format!("{stem}::{owner}::{}", self.name),
            None => format!("{stem}::{}", self.name),
        }
    }
}

/// One parsed `enum` declaration.
#[derive(Debug)]
pub struct EnumInfo {
    /// Index of the declaring file.
    pub file: usize,
    /// Enum name.
    pub name: String,
    /// Variant names with their declaration lines.
    pub variants: Vec<(String, u32)>,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Code-token index range of the declaration body braces.
    pub body: (usize, usize),
    /// Carries a `// lint: wire-format` marker.
    pub wire: bool,
}

/// A `// lint: <marker>` comment that failed to bind to an item.
#[derive(Debug)]
pub struct DanglingMarker {
    /// Index of the file holding the comment.
    pub file: usize,
    /// The marker text (`hot-path`, `wire-format`, …).
    pub marker: String,
    /// 1-based line of the comment.
    pub line: u32,
}

/// Everything the parser extracted from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Functions in declaration order.
    pub fns: Vec<FnInfo>,
    /// Enums in declaration order.
    pub enums: Vec<EnumInfo>,
}

/// Marker spellings the item annotations accept.
const MARKERS: &[&str] = &["hot-path", "wire-format", "wire-format(decode)"];

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "return", "loop", "in", "let", "mut", "ref", "move",
    "break", "continue", "as", "where", "unsafe", "dyn", "impl", "fn", "pub", "crate", "super",
    "self", "Self", "use", "mod", "const", "static", "type", "struct", "enum", "trait", "extern",
    "async", "await", "box",
];

/// Qualifier tokens that may sit between a marker comment and its item.
const ITEM_QUALIFIERS: &[&str] = &[
    "pub", "crate", "super", "in", "unsafe", "const", "async", "extern", "default", "(", ")",
];

/// Parses `file` (at `file_idx` in the workspace list) into functions,
/// enums, and annotations. `dangling` collects markers that bound to no
/// item.
pub fn parse_file(
    file: &SourceFile,
    file_idx: usize,
    dangling: &mut Vec<DanglingMarker>,
) -> ParsedFile {
    let mut out = ParsedFile::default();
    let is_src = crate::rules::is_crate_src(&file.rel) || file.rel.starts_with("src/");

    // Scope stack of enclosing impl/trait blocks: (owner, kind, close_k).
    let mut scopes: Vec<(String, bool, usize)> = Vec::new(); // (owner, is_trait, close)

    let mut k = 0usize;
    while k < file.code.len() {
        while let Some(&(_, _, close)) = scopes.last() {
            if k > close {
                scopes.pop();
            } else {
                break;
            }
        }
        match file.code_tok(k) {
            "impl" => {
                if let Some((owner, body_open)) = parse_impl_header(file, k) {
                    let close = file.matching_close(body_open);
                    scopes.push((owner, false, close));
                    k = body_open + 1;
                    continue;
                }
            }
            "trait" => {
                if let Some((name, body_open)) = parse_named_block(file, k) {
                    let close = file.matching_close(body_open);
                    scopes.push((name, true, close));
                    k = body_open + 1;
                    continue;
                }
            }
            "enum" => {
                if let Some(info) = parse_enum(file, file_idx, k) {
                    let after = info.body.1 + 1;
                    out.enums.push(info);
                    k = after;
                    continue;
                }
            }
            "fn" => {
                if let Some(info) = parse_fn(file, file_idx, k, scopes.last(), is_src) {
                    // Continue scanning *inside* the body so nested fns
                    // (and nested impls) are found too.
                    out.fns.push(info);
                }
            }
            _ => {}
        }
        k += 1;
    }

    // Markers that no item claimed are stale annotations.
    let claimed: Vec<u32> = claimed_marker_lines(file, &out);
    for (line, marker) in marker_comments(file) {
        if !claimed.contains(&line) {
            dangling.push(DanglingMarker {
                file: file_idx,
                marker,
                line,
            });
        }
    }

    attach_calls(file, &mut out.fns);
    out
}

/// All `// lint: <marker>` comments in `file` as `(line, marker)`.
fn marker_comments(file: &SourceFile) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, tok) in file.tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = file.tok(i).trim_start_matches('/').trim();
        if let Some(marker) = body.strip_prefix("lint: ") {
            let marker = marker.trim();
            if MARKERS.contains(&marker) {
                out.push((tok.line, marker.to_owned()));
            }
        }
    }
    out
}

/// Lines of marker comments that bound to a parsed item.
fn claimed_marker_lines(file: &SourceFile, parsed: &ParsedFile) -> Vec<u32> {
    let mut lines = Vec::new();
    for f in &parsed.fns {
        if f.hot_path || f.wire_decode {
            lines.extend(item_marker_lines(file, f.line));
        }
    }
    for e in &parsed.enums {
        if e.wire {
            lines.extend(item_marker_lines(file, e.line));
        }
    }
    lines
}

/// Finds the marker bound to the item whose keyword sits on
/// `item_line`, if any. Returns the markers' comment lines.
fn item_marker_lines(file: &SourceFile, item_line: u32) -> Vec<u32> {
    markers_above(file, item_line)
        .into_iter()
        .map(|(line, _)| line)
        .collect()
}

/// Markers directly above the item whose first keyword token is on
/// `item_line`, looking through attributes, doc comments, and
/// qualifiers. Returns `(comment_line, marker)` pairs.
fn markers_above(file: &SourceFile, item_line: u32) -> Vec<(u32, String)> {
    // Token index of the item keyword: first token on `item_line` that
    // is a code token. Walk backwards from there.
    let Some(start) = file.tokens.iter().position(|t| {
        t.line == item_line && !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut i = start;
    let mut budget = 256usize;
    while i > 0 && budget > 0 {
        budget -= 1;
        i -= 1;
        let tok = file.tokens[i];
        match tok.kind {
            TokenKind::LineComment | TokenKind::BlockComment => {
                let body = file.tok(i).trim_start_matches('/').trim();
                if let Some(marker) = body.strip_prefix("lint: ") {
                    let marker = marker.trim();
                    if MARKERS.contains(&marker) {
                        out.push((tok.line, marker.to_owned()));
                    }
                }
            }
            TokenKind::Str => {} // `extern "C"` ABI string
            TokenKind::Ident if ITEM_QUALIFIERS.contains(&file.tok(i)) => {}
            TokenKind::Punct if file.tok(i) == "]" => {
                // Skip a `#[…]` attribute group in reverse.
                let mut depth = 1usize;
                while i > 0 && depth > 0 {
                    i -= 1;
                    match file.tok(i) {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
                // Step over the leading `#`.
                if i > 0 && file.tok(i - 1) == "#" {
                    i -= 1;
                }
            }
            TokenKind::Punct if ITEM_QUALIFIERS.contains(&file.tok(i)) => {}
            _ => break,
        }
    }
    out
}

/// Parses an `impl` header starting at code index `k`. Returns the
/// target type name and the code index of the body `{`.
fn parse_impl_header(file: &SourceFile, k: usize) -> Option<(String, usize)> {
    let mut j = k + 1;
    // Skip the generic parameter list `impl<…>`.
    if j < file.code.len() && file.code_tok(j) == "<" {
        j = skip_angles(file, j)?;
    }
    // Collect up to the body `{`, tracking a top-level `for`.
    let mut owner: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut in_generics = 0usize;
    let mut delim = 0usize;
    while j < file.code.len() {
        let t = file.code_tok(j);
        match t {
            "<" => in_generics += 1,
            ">" => in_generics = in_generics.saturating_sub(1),
            "(" | "[" => delim += 1,
            ")" | "]" => delim = delim.saturating_sub(1),
            "{" if in_generics == 0 && delim == 0 => {
                let name = if saw_for { after_for } else { owner };
                return name.map(|n| (n, j));
            }
            ";" if in_generics == 0 && delim == 0 => return None,
            "for" if in_generics == 0 && delim == 0 => saw_for = true,
            "where" if in_generics == 0 && delim == 0 => {
                // The type path is complete; scan on for the `{` only.
                let name = if saw_for {
                    after_for.clone()
                } else {
                    owner.clone()
                };
                let body = find_body_open(file, j)?;
                return name.map(|n| (n, body));
            }
            "mut" | "dyn" | "ref" => {} // `impl T for &mut U` qualifiers
            _ => {
                if in_generics == 0
                    && delim == 0
                    && file.tokens[file.code[j]].kind == TokenKind::Ident
                {
                    if saw_for {
                        if after_for.is_none() || file.code_tok(j - 1) == ":" {
                            after_for = Some(t.to_owned());
                        }
                    } else if owner.is_none() || file.code_tok(j - 1) == ":" {
                        // Keep the *last path segment*: a new segment
                        // follows `::`; the first ident wins otherwise.
                        owner = Some(t.to_owned());
                    }
                }
            }
        }
        j += 1;
    }
    None
}

/// Parses `trait Name … {` / other named blocks: returns the name and
/// the body-`{` code index.
fn parse_named_block(file: &SourceFile, k: usize) -> Option<(String, usize)> {
    let name_k = k + 1;
    if name_k >= file.code.len() || file.tokens[file.code[name_k]].kind != TokenKind::Ident {
        return None;
    }
    let name = file.code_tok(name_k).to_owned();
    let body = find_body_open(file, name_k)?;
    Some((name, body))
}

/// First `{` at top delimiter level after code index `j`.
fn find_body_open(file: &SourceFile, j: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut angles = 0usize;
    for i in j..file.code.len() {
        match file.code_tok(i) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "<" => angles += 1,
            ">" => angles = angles.saturating_sub(1),
            "{" if depth == 0 && angles == 0 => return Some(i),
            ";" if depth == 0 && angles == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Skips a balanced `<…>` group starting at code index `j` (which holds
/// `<`); returns the index just past the closing `>`.
fn skip_angles(file: &SourceFile, j: usize) -> Option<usize> {
    let mut depth = 0usize;
    for i in j..file.code.len() {
        match file.code_tok(i) {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            // `->` inside `Fn() -> T` bounds: the `>` above would
            // misbalance; treat the pair as neutral.
            "-" => {}
            "{" | ";" => return None,
            _ => {}
        }
    }
    None
}

/// Parses an `enum` declaration at code index `k`.
fn parse_enum(file: &SourceFile, file_idx: usize, k: usize) -> Option<EnumInfo> {
    let name_k = k + 1;
    if name_k >= file.code.len() || file.tokens[file.code[name_k]].kind != TokenKind::Ident {
        return None;
    }
    let name = file.code_tok(name_k).to_owned();
    let body_open = find_body_open(file, name_k)?;
    let close = file.matching_close(body_open);
    let line = file.tokens[file.code[k]].line;

    let mut variants = Vec::new();
    let mut j = body_open + 1;
    while j < close {
        // Skip attributes on the variant.
        while j + 1 < close && file.code_tok(j) == "#" && file.code_tok(j + 1) == "[" {
            j = file.matching_close(j + 1) + 1;
        }
        if j >= close {
            break;
        }
        if file.tokens[file.code[j]].kind == TokenKind::Ident {
            variants.push((file.code_tok(j).to_owned(), file.tokens[file.code[j]].line));
            // Skip the payload and discriminant up to the separating
            // comma at this level.
            let mut depth = 0usize;
            j += 1;
            while j < close {
                match file.code_tok(j) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    "," if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        } else {
            j += 1;
        }
    }

    let wire = markers_above(file, line)
        .iter()
        .any(|(_, m)| m == "wire-format");
    Some(EnumInfo {
        file: file_idx,
        name,
        variants,
        line,
        body: (body_open, close),
        wire,
    })
}

/// Parses the `fn` at code index `k` into an [`FnInfo`] (calls are
/// attached later, once every fn's body range is known).
fn parse_fn(
    file: &SourceFile,
    file_idx: usize,
    k: usize,
    scope: Option<&(String, bool, usize)>,
    is_src: bool,
) -> Option<FnInfo> {
    let name_k = k + 1;
    if name_k >= file.code.len() || file.tokens[file.code[name_k]].kind != TokenKind::Ident {
        return None; // `fn(…)` pointer type
    }
    let name = file.code_tok(name_k).to_owned();
    let tok = file.tokens[file.code[k]];

    // Find the body `{` or terminating `;` at top delimiter level.
    let mut depth = 0usize;
    let mut j = name_k + 1;
    let mut body = None;
    while j < file.code.len() {
        match file.code_tok(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => {
                body = Some((j, file.matching_close(j)));
                break;
            }
            ";" if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }

    let (owner, in_trait) = match scope {
        Some((owner, is_trait, close)) if k < *close => (Some(owner.clone()), *is_trait),
        _ => (None, false),
    };
    let end_line = body.map_or(tok.line, |(_, c)| file.tokens[file.code[c]].line);
    let markers = markers_above(file, tok.line);
    let test = !is_src || file.is_test_line(tok.line);
    Some(FnInfo {
        file: file_idx,
        name,
        is_method: owner.is_some(),
        owner,
        trait_decl: in_trait && body.is_none(),
        body,
        line: tok.line,
        col: tok.col,
        end_line,
        hot_path: markers.iter().any(|(_, m)| m == "hot-path"),
        wire_decode: markers.iter().any(|(_, m)| m == "wire-format(decode)"),
        test,
        calls: Vec::new(),
    })
}

/// Harvests call sites for every fn, attributing tokens to the
/// *innermost* enclosing body so nested fns own their own calls.
fn attach_calls(file: &SourceFile, fns: &mut [FnInfo]) {
    for idx in 0..fns.len() {
        let Some((open, close)) = fns[idx].body else {
            continue;
        };
        // Code-index ranges of strictly nested fn bodies to skip.
        let nested: Vec<(usize, usize)> = fns
            .iter()
            .filter_map(|other| other.body)
            .filter(|&(o, c)| o > open && c < close)
            .collect();
        let mut calls = Vec::new();
        let mut j = open + 1;
        while j < close {
            if let Some(&(_, nc)) = nested.iter().find(|&&(no, nc)| no <= j && j <= nc) {
                j = nc + 1;
                continue;
            }
            let tok = file.tokens[file.code[j]];
            if tok.kind == TokenKind::Ident {
                let text = file.code_tok(j);
                let next = file
                    .code
                    .get(j + 1)
                    .map_or("", |&n| file.tokens[n].text(&file.text));
                let prev = j.checked_sub(1).map_or("", |p| file.code_tok(p));
                let prev2 = j.checked_sub(2).map_or("", |p| file.code_tok(p));
                if prev == "fn" {
                    // A nested fn's *name* token, not a call.
                    j += 1;
                    continue;
                }
                if next == "!" && !NON_CALL_KEYWORDS.contains(&text) {
                    // Macro invocation `name!(…)` / `name![…]` / `name!{…}`.
                    let after = file
                        .code
                        .get(j + 2)
                        .map_or("", |&n| file.tokens[n].text(&file.text));
                    if matches!(after, "(" | "[" | "{") {
                        calls.push(Call {
                            name: text.to_owned(),
                            kind: CallKind::Macro,
                            qual: None,
                            line: tok.line,
                            col: tok.col,
                        });
                    }
                } else if !NON_CALL_KEYWORDS.contains(&text) {
                    let qualified = prev == ":" && prev2 == ":";
                    // The path segment before `::name` (j-3 in code
                    // order), when it is an identifier.
                    let qual = if qualified {
                        j.checked_sub(3)
                            .filter(|&p| file.tokens[file.code[p]].kind == TokenKind::Ident)
                            .map(|p| file.code_tok(p).to_owned())
                    } else {
                        None
                    };
                    if next == "(" {
                        let kind = if prev == "." {
                            CallKind::Method
                        } else if qualified {
                            CallKind::Path
                        } else {
                            CallKind::Bare
                        };
                        calls.push(Call {
                            name: text.to_owned(),
                            kind,
                            qual,
                            line: tok.line,
                            col: tok.col,
                        });
                    } else if qualified && next != ":" {
                        // `Type::helper` passed as a value (no call
                        // parens): still an edge — the callee runs.
                        calls.push(Call {
                            name: text.to_owned(),
                            kind: CallKind::Path,
                            qual,
                            line: tok.line,
                            col: tok.col,
                        });
                    }
                }
            }
            j += 1;
        }
        fns[idx].calls = calls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> (ParsedFile, Vec<DanglingMarker>) {
        let file = SourceFile::new("crates/demo/src/lib.rs", src);
        let mut dangling = Vec::new();
        let parsed = parse_file(&file, 0, &mut dangling);
        (parsed, dangling)
    }

    #[test]
    fn free_and_method_fns_with_owners() {
        let (p, _) = parse(
            "fn free() {}\n\
             struct S;\n\
             impl S {\n    fn method(&self) {}\n}\n\
             impl Clone for S {\n    fn clone(&self) -> S { S }\n}\n\
             trait T {\n    fn decl(&self);\n    fn with_default(&self) {}\n}\n",
        );
        let names: Vec<(&str, Option<&str>, bool)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref(), f.trait_decl))
            .collect();
        assert_eq!(
            names,
            [
                ("free", None, false),
                ("method", Some("S"), false),
                ("clone", Some("S"), false),
                ("decl", Some("T"), true),
                ("with_default", Some("T"), false),
            ]
        );
    }

    #[test]
    fn generic_impl_headers_resolve_owner() {
        let (p, _) = parse(
            "impl<G: FrozenSet> TieredFilter<G> {\n    fn rotate(&mut self) {}\n}\n\
             impl<T> core::fmt::Display for Wrapper<T> where T: Copy {\n    fn fmt(&self) {}\n}\n",
        );
        assert_eq!(p.fns[0].owner.as_deref(), Some("TieredFilter"));
        assert_eq!(p.fns[1].owner.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn call_sites_classified() {
        let (p, _) = parse(
            "fn caller(x: &[u8]) {\n\
             \x20   helper();\n\
             \x20   self.table.probe(x);\n\
             \x20   Vec::with_capacity(4);\n\
             \x20   assert!(x.len() > 1);\n\
             \x20   let f = Self::mapper;\n\
             \x20   if x.is_empty() {}\n\
             }\n",
        );
        let calls: Vec<(&str, CallKind)> = p.fns[0]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.kind))
            .collect();
        assert!(calls.contains(&("helper", CallKind::Bare)));
        assert!(calls.contains(&("probe", CallKind::Method)));
        assert!(calls.contains(&("with_capacity", CallKind::Path)));
        assert!(calls.contains(&("assert", CallKind::Macro)));
        assert!(calls.contains(&("mapper", CallKind::Path)));
        assert!(calls.contains(&("is_empty", CallKind::Method)));
        // Keywords are not calls.
        assert!(!calls.iter().any(|(n, _)| *n == "if"));
    }

    #[test]
    fn nested_fn_owns_its_calls() {
        let (p, _) = parse("fn outer() {\n    fn inner() { deep(); }\n    shallow();\n}\n");
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.calls.iter().any(|c| c.name == "shallow"));
        assert!(!outer.calls.iter().any(|c| c.name == "deep"));
        assert!(inner.calls.iter().any(|c| c.name == "deep"));
    }

    #[test]
    fn hot_path_marker_binds_through_attrs_and_docs() {
        let (p, dangling) = parse(
            "// lint: hot-path\n\
             /// Probes the bucket.\n\
             #[inline]\n\
             #[must_use]\n\
             pub fn contains(&self) -> bool { true }\n\
             pub fn cold() {}\n",
        );
        assert!(p.fns[0].hot_path);
        assert!(!p.fns[1].hot_path);
        assert!(dangling.is_empty());
    }

    #[test]
    fn dangling_marker_is_reported() {
        let (_, dangling) = parse("// lint: hot-path\nconst X: u32 = 4;\n");
        assert_eq!(dangling.len(), 1);
        assert_eq!(dangling[0].marker, "hot-path");
    }

    #[test]
    fn enum_variants_with_payloads_and_markers() {
        let (p, _) = parse(
            "// lint: wire-format\n\
             pub enum WireError {\n\
             \x20   #[doc(hidden)]\n\
             \x20   BadMagic { got: u16 },\n\
             \x20   BadOpcode(u8, u32),\n\
             \x20   Empty = 3,\n\
             }\n\
             enum Plain { A, B }\n",
        );
        assert_eq!(p.enums.len(), 2);
        assert!(p.enums[0].wire);
        let names: Vec<&str> = p.enums[0]
            .variants
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, ["BadMagic", "BadOpcode", "Empty"]);
        assert!(!p.enums[1].wire);
    }

    #[test]
    fn cfg_test_fns_are_marked_test() {
        let (p, _) = parse("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n");
        assert!(!p.fns[0].test);
        assert!(p.fns[1].test);
    }

    #[test]
    fn wire_decode_marker_on_fn() {
        let (p, _) = parse(
            "// lint: wire-format(decode)\n\
             pub fn decode(buffer: &[u8]) -> Result<(), ()> { Ok(()) }\n",
        );
        assert!(p.fns[0].wire_decode);
        assert!(!p.fns[0].hot_path);
    }
}
