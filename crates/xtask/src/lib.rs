//! `vcf-xtask`: the workspace invariant linter.
//!
//! A dependency-free, source-level analysis that enforces the
//! disciplines the compiler cannot: SAFETY justifications on unsafe
//! code, atomic-ordering confinement, panic-free hot paths, Theorem-1
//! coset arithmetic confinement, public-API documentation, crate
//! unsafe-policy attributes, and TSan-suppression freshness. See
//! `DESIGN.md` §10 for the rationale behind each rule.
//!
//! Run it as `cargo run -p vcf-xtask -- lint` (CI runs it as a
//! required job). Violations can be locally waived with
//! `// lint: allow(rule-id) — reason`; unused waivers are themselves
//! violations, so the allow-surface cannot rot.

#![forbid(unsafe_code)]

pub mod bench_check;
pub mod callgraph;
pub mod diag;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod source;

use callgraph::Analysis;
use diag::Diagnostic;
use source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories (under the root and under each crate) that hold lintable
/// Rust sources.
const SOURCE_DIRS: &[&str] = &["src", "tests", "benches", "examples"];

/// Directory names the walker never descends into: build output and the
/// linter's own deliberately-failing fixtures.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// Workspace-relative location of the TSan suppressions file.
const SUPPRESSIONS_REL: &str = ".github/tsan-suppressions.txt";

/// The loaded workspace: every lintable file plus cross-file inputs.
pub struct LintContext {
    /// Workspace root the paths in [`Self::files`] are relative to.
    pub root: PathBuf,
    /// All lexed source files, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// The TSan suppressions file (relative path, contents), if present.
    pub suppressions: Option<(String, String)>,
    /// The semantic front-end: parsed items + resolved call graph.
    pub analysis: Analysis,
}

impl LintContext {
    /// Loads every `.rs` file under the workspace's source directories.
    pub fn load(root: &Path) -> io::Result<Self> {
        if !root.join("Cargo.toml").is_file() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no Cargo.toml at the given root",
            ));
        }
        let mut rels: Vec<String> = Vec::new();
        let mut dirs: Vec<PathBuf> = SOURCE_DIRS.iter().map(PathBuf::from).collect();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut names: Vec<String> = fs::read_dir(&crates_dir)?
                .filter_map(Result::ok)
                .filter(|e| e.path().is_dir())
                .filter_map(|e| e.file_name().into_string().ok())
                .collect();
            names.sort();
            for name in names {
                for d in SOURCE_DIRS {
                    dirs.push(PathBuf::from("crates").join(&name).join(d));
                }
            }
        }
        for dir in dirs {
            collect_rs(root, &dir, &mut rels)?;
        }
        rels.sort();
        let mut files = Vec::with_capacity(rels.len());
        for rel in rels {
            let text = fs::read_to_string(root.join(&rel))?;
            files.push(SourceFile::new(rel, text));
        }
        let suppressions = fs::read_to_string(root.join(SUPPRESSIONS_REL))
            .ok()
            .map(|c| (SUPPRESSIONS_REL.to_owned(), c));
        let analysis = Analysis::build(&files, Some(root));
        Ok(Self {
            root: root.to_path_buf(),
            files,
            suppressions,
            analysis,
        })
    }

    /// Builds a context from in-memory files — the fixture tests' entry
    /// point.
    pub fn from_memory(files: Vec<SourceFile>) -> Self {
        let analysis = Analysis::build(&files, None);
        Self {
            root: PathBuf::new(),
            files,
            suppressions: None,
            analysis,
        }
    }

    /// Runs the rules (all of them, or just `rule_filter`) and returns
    /// the surviving diagnostics, sorted. Waived diagnostics are
    /// dropped; malformed waivers surface as `lint-waiver` and unused
    /// ones as `stale-waiver` (the latter only on full runs, since
    /// filtering rules leaves other rules' waivers legitimately
    /// unused).
    pub fn run(&self, rule_filter: Option<&str>) -> Result<Vec<Diagnostic>, String> {
        let rules = rules::all_rules();
        if let Some(f) = rule_filter {
            let known =
                rules.iter().any(|r| r.id() == f) || f == "lint-waiver" || f == "stale-waiver";
            if !known {
                return Err(format!(
                    "unknown rule `{f}` (run `vcf-xtask rules` for the list)"
                ));
            }
        }
        let mut raw = Vec::new();
        for rule in &rules {
            if rule_filter.is_some_and(|f| f != rule.id()) {
                continue;
            }
            for file in &self.files {
                rule.check_file(file, &mut raw);
            }
            rule.check_workspace(self, &mut raw);
        }
        let mut kept = Vec::new();
        for d in raw {
            let waiver = self.files.iter().find(|f| f.rel == d.file).and_then(|f| {
                f.waivers.iter().find(|w| {
                    !w.malformed && w.rule == d.rule && w.line <= d.line && d.line <= w.last_line
                })
            });
            match waiver {
                Some(w) => w.used.set(true),
                None => kept.push(d),
            }
        }
        for f in &self.files {
            for w in &f.waivers {
                if w.malformed {
                    if rule_filter.is_none_or(|r| r == "lint-waiver") {
                        kept.push(Diagnostic {
                            rule: "lint-waiver",
                            file: f.rel.clone(),
                            line: w.line,
                            col: 1,
                            message: format!("malformed waiver `{}`", w.reason),
                            hint: "write `// lint: allow(rule-id) \u{2014} reason` \
                                   (the reason is mandatory)"
                                .to_owned(),
                        });
                    }
                } else if !w.used.get() && rule_filter.is_none() {
                    kept.push(Diagnostic {
                        rule: "stale-waiver",
                        file: f.rel.clone(),
                        line: w.line,
                        col: 1,
                        message: format!("waiver for `{}` no longer suppresses anything", w.rule),
                        hint: "delete the stale waiver (or restore whatever it was covering)"
                            .to_owned(),
                    });
                }
            }
        }
        diag::sort(&mut kept);
        Ok(kept)
    }
}

/// Recursively collects `.rs` files under `root/rel_dir` as
/// `/`-separated root-relative paths.
fn collect_rs(root: &Path, rel_dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let abs = root.join(rel_dir);
    if !abs.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(&abs)?.filter_map(Result::ok).collect();
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        let path = entry.path();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs(root, &rel_dir.join(&name), out)?;
        } else if name.ends_with(".rs") {
            let mut rel = String::new();
            for comp in rel_dir.components() {
                rel.push_str(&comp.as_os_str().to_string_lossy());
                rel.push('/');
            }
            rel.push_str(&name);
            out.push(rel);
        }
    }
    Ok(())
}
