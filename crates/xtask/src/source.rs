//! A lexed source file plus the derived structure the rules share:
//! `#[cfg(test)]` line spans, function spans (with their `debug_assert`
//! usage), and inline lint waivers.
//!
//! # Waivers
//!
//! A rule violation can be locally allowed with a comment of the form:
//!
//! ```text
//! // lint: allow(rule-id) — reason the invariant still holds
//! // lint: allow(rule-id, item) — reason; covers the whole next item
//! ```
//!
//! The reason is mandatory: a waiver without one is itself a violation
//! (`lint-waiver`), and a waiver that suppresses nothing is flagged as
//! stale (`stale-waiver`) so allowlists cannot rot. The plain form covers
//! the waiver's own line and the next code line; the `item` form covers
//! the next item's entire body (through its closing brace).

use crate::lexer::{lex, Token, TokenKind};
use std::cell::Cell;

/// Line span of one `fn` body, with the facts the hot-path rule needs.
#[derive(Debug, Clone, Copy)]
pub struct FnSpan {
    /// Line of the `fn` keyword.
    pub first_line: u32,
    /// Line of the body's closing brace.
    pub last_line: u32,
    /// Whether the body calls any `debug_assert…` macro.
    pub has_debug_assert: bool,
}

/// One parsed `// lint: allow(…)` comment.
#[derive(Debug)]
pub struct Waiver {
    /// Rule id being waived.
    pub rule: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// Last line (inclusive) the waiver covers.
    pub last_line: u32,
    /// Justification text (mandatory).
    pub reason: String,
    /// Set when the waiver suppressed at least one diagnostic.
    pub used: Cell<bool>,
    /// True when the comment was malformed (e.g. missing reason).
    pub malformed: bool,
}

/// A lexed workspace file with derived rule context.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Full file contents.
    pub text: String,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    pub code: Vec<usize>,
    /// Parsed lint waivers.
    pub waivers: Vec<Waiver>,
    test_lines: Vec<bool>,
    fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Lexes `text` and derives spans and waivers.
    pub fn new(rel: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let tokens = lex(&text);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| {
                !matches!(
                    tokens[i].kind,
                    TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .collect();
        let line_count = text.lines().count() + 2;
        let mut file = Self {
            rel: rel.into(),
            text,
            tokens,
            code,
            waivers: Vec::new(),
            test_lines: vec![false; line_count],
            fns: Vec::new(),
        };
        file.compute_test_lines();
        file.compute_fn_spans();
        file.compute_waivers();
        file
    }

    /// Text of token `i` (an index into [`Self::tokens`]).
    pub fn tok(&self, i: usize) -> &str {
        self.tokens[i].text(&self.text)
    }

    /// Text of the `k`-th *code* token.
    pub fn code_tok(&self, k: usize) -> &str {
        self.tok(self.code[k])
    }

    /// Whether `line` lies inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// The innermost `fn` span containing `line`, if any.
    pub fn enclosing_fn(&self, line: u32) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.first_line <= line && line <= f.last_line)
            .min_by_key(|f| f.last_line - f.first_line)
    }

    /// Starting at code index `k` (an opening delimiter `(`/`[`/`{`),
    /// returns the code index of its matching closing delimiter.
    pub fn matching_close(&self, k: usize) -> usize {
        let open = self.code_tok(k);
        let close = match open {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return k,
        };
        let mut depth = 0usize;
        let mut j = k;
        while j < self.code.len() {
            let t = self.code_tok(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        self.code.len() - 1
    }

    /// Marks the line spans of items annotated `#[cfg(test)]` (or any
    /// `cfg` whose arguments mention `test` without a `not(..)`).
    fn compute_test_lines(&mut self) {
        let mut spans: Vec<(u32, u32)> = Vec::new();
        let mut k = 0usize;
        while k + 1 < self.code.len() {
            if !(self.code_tok(k) == "#" && self.code_tok(k + 1) == "[") {
                k += 1;
                continue;
            }
            let close = self.matching_close(k + 1);
            let inner: Vec<&str> = (k + 2..close).map(|j| self.code_tok(j)).collect();
            let is_cfg_test =
                inner.first() == Some(&"cfg") && inner.contains(&"test") && !inner.contains(&"not");
            if !is_cfg_test {
                k = close + 1;
                continue;
            }
            // Skip any further attributes between the cfg and the item.
            let mut j = close + 1;
            while j + 1 < self.code.len() && self.code_tok(j) == "#" && self.code_tok(j + 1) == "["
            {
                j = self.matching_close(j + 1) + 1;
            }
            // The item body is the first top-level `{ … }`; an item that
            // ends with `;` first (e.g. `use`) spans up to that line.
            let start_line = self.tokens[self.code[k]].line;
            let mut depth = 0usize;
            let mut end_line = start_line;
            while j < self.code.len() {
                match self.code_tok(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "{" if depth == 0 => {
                        let body_close = self.matching_close(j);
                        end_line = self.tokens[self.code[body_close]].line;
                        break;
                    }
                    ";" if depth == 0 => {
                        end_line = self.tokens[self.code[j]].line;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            spans.push((start_line, end_line));
            k = close + 1;
        }
        for (a, z) in spans {
            for line in a..=z {
                if let Some(slot) = self.test_lines.get_mut(line as usize) {
                    *slot = true;
                }
            }
        }
    }

    /// Records every `fn` body span and whether it debug-asserts.
    fn compute_fn_spans(&mut self) {
        let mut fns = Vec::new();
        for k in 0..self.code.len() {
            if self.code_tok(k) != "fn" {
                continue;
            }
            // `fn(` is a function-pointer type, not a definition.
            let Some(name_k) = self.code.get(k + 1) else {
                continue;
            };
            if self.tokens[*name_k].kind != TokenKind::Ident {
                continue;
            }
            // Find the body `{` (or `;` for a bodyless trait method) at
            // top delimiter level after the signature.
            let mut depth = 0usize;
            let mut j = k + 2;
            let mut body = None;
            while j < self.code.len() {
                match self.code_tok(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "{" if depth == 0 => {
                        body = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(body) = body else { continue };
            let close = self.matching_close(body);
            let has_debug_assert = (body..=close).any(|idx| {
                self.tokens[self.code[idx]].kind == TokenKind::Ident
                    && self.code_tok(idx).starts_with("debug_assert")
            });
            fns.push(FnSpan {
                first_line: self.tokens[self.code[k]].line,
                last_line: self.tokens[self.code[close]].line,
                has_debug_assert,
            });
        }
        self.fns = fns;
    }

    /// Parses `// lint: allow(rule[, item]) — reason` comments.
    fn compute_waivers(&mut self) {
        let mut waivers = Vec::new();
        for (i, tok) in self.tokens.iter().enumerate() {
            if tok.kind != TokenKind::LineComment {
                continue;
            }
            let body = self.tok(i).trim_start_matches('/').trim();
            let Some(args) = body.strip_prefix("lint: allow(") else {
                continue;
            };
            let Some((inside, rest)) = args.split_once(')') else {
                waivers.push(malformed(tok.line, body));
                continue;
            };
            let mut parts = inside.split(',').map(str::trim);
            let rule = parts.next().unwrap_or_default().to_owned();
            let scope_item = match parts.next() {
                None => false,
                Some("item") => true,
                Some(_) => {
                    waivers.push(malformed(tok.line, body));
                    continue;
                }
            };
            let reason = rest
                .trim_start_matches([' ', '\u{2014}', '-', ':'])
                .trim()
                .to_owned();
            if rule.is_empty() || reason.is_empty() {
                waivers.push(malformed(tok.line, body));
                continue;
            }
            let last_line = if scope_item {
                self.item_end_after(tok.line)
            } else {
                self.next_code_line(tok.line)
            };
            waivers.push(Waiver {
                rule,
                line: tok.line,
                last_line,
                reason,
                used: Cell::new(false),
                malformed: false,
            });
        }
        self.waivers = waivers;
    }

    /// Line of the first code token after `line` (the statement a plain
    /// waiver covers); falls back to `line` itself at end of file.
    fn next_code_line(&self, line: u32) -> u32 {
        self.code
            .iter()
            .map(|&i| self.tokens[i].line)
            .find(|&l| l > line)
            .unwrap_or(line)
    }

    /// Closing-brace line of the first item starting after `line` (what
    /// an `item`-scoped waiver covers).
    fn item_end_after(&self, line: u32) -> u32 {
        let Some(first) = self.code.iter().position(|&i| self.tokens[i].line > line) else {
            return line;
        };
        let mut depth = 0usize;
        let mut j = first;
        while j < self.code.len() {
            match self.code_tok(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => {
                    let close = self.matching_close(j);
                    return self.tokens[self.code[close]].line;
                }
                ";" if depth == 0 => return self.tokens[self.code[j]].line,
                _ => {}
            }
            j += 1;
        }
        line
    }
}

fn malformed(line: u32, body: &str) -> Waiver {
    Waiver {
        rule: String::new(),
        line,
        last_line: line,
        reason: body.to_owned(),
        used: Cell::new(true),
        malformed: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_spans_cover_module_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::new("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(not(test))]\nfn live() { body(); }\n";
        let f = SourceFile::new("x.rs", src);
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn fn_spans_track_debug_assert() {
        let src = "fn a(x: usize) {\n    debug_assert!(x < 4);\n    body();\n}\nfn b() {\n    body();\n}\n";
        let f = SourceFile::new("x.rs", src);
        assert!(f.enclosing_fn(3).is_some_and(|s| s.has_debug_assert));
        assert!(f.enclosing_fn(6).is_some_and(|s| !s.has_debug_assert));
        assert!(f.enclosing_fn(20).is_none());
    }

    #[test]
    fn waiver_parses_rule_scope_and_reason() {
        let src = "// lint: allow(panic-reachability) — index bounded by loop condition\nlet x = v[i];\n// lint: allow(safety-comment, item) — whole item justified\nfn f() {\n    body();\n}\n";
        let f = SourceFile::new("x.rs", src);
        assert_eq!(f.waivers.len(), 2);
        assert_eq!(f.waivers[0].rule, "panic-reachability");
        assert_eq!((f.waivers[0].line, f.waivers[0].last_line), (1, 2));
        assert!(f.waivers[0].reason.contains("bounded"));
        assert_eq!(f.waivers[1].rule, "safety-comment");
        assert_eq!((f.waivers[1].line, f.waivers[1].last_line), (3, 6));
    }

    #[test]
    fn waiver_without_reason_is_malformed() {
        let f = SourceFile::new("x.rs", "// lint: allow(some-rule)\nlet x = 1;\n");
        assert_eq!(f.waivers.len(), 1);
        assert!(f.waivers[0].malformed);
    }
}
