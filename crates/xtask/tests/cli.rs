//! End-to-end tests for the `vcf-xtask` binary: exit codes, text and
//! JSON output, argument validation. Synthetic one-crate workspaces are
//! materialised under the Cargo-provided tmpdir.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use vcf_xtask::json;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vcf-xtask"))
}

/// Build a minimal workspace: a root `Cargo.toml`, a `crates/` marker,
/// and one library crate whose root is `lib_src`.
fn make_workspace(name: &str, lib_src: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    let src = root.join("crates/demo/src");
    fs::create_dir_all(&src).unwrap();
    fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    fs::write(src.join("lib.rs"), lib_src).unwrap();
    root
}

fn lint(root: &Path, extra: &[&str]) -> Output {
    bin()
        .arg("lint")
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("binary runs")
}

const CLEAN_LIB: &str = "#![forbid(unsafe_code)]\npub fn f() {}\n";
const DIRTY_LIB: &str = "#![deny(unsafe_code)]\npub fn f() {}\n";

#[test]
fn clean_workspace_exits_zero() {
    let root = make_workspace("cli-clean", CLEAN_LIB);
    let out = lint(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("lint clean"), "stdout: {stdout}");
}

#[test]
fn violating_workspace_exits_one_with_diagnostics() {
    let root = make_workspace("cli-dirty", DIRTY_LIB);
    let out = lint(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("[crate-unsafe-attr]") && stdout.contains("lib.rs:"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("hint:"), "stdout: {stdout}");
}

#[test]
fn json_mode_emits_parseable_report() {
    let root = make_workspace("cli-json", DIRTY_LIB);
    let out = lint(&root, &["--json"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let value = json::parse(&stdout).expect("stdout must be one JSON object");
    let diags = value
        .get("diagnostics")
        .and_then(json::Value::as_arr)
        .expect("diagnostics array");
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].get("rule").and_then(json::Value::as_str),
        Some("crate-unsafe-attr")
    );

    // Clean workspaces still produce a report, just an empty one.
    let root = make_workspace("cli-json-clean", CLEAN_LIB);
    let out = lint(&root, &["--json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let value = json::parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert_eq!(
        value
            .get("diagnostics")
            .and_then(json::Value::as_arr)
            .map(<[_]>::len),
        Some(0)
    );
}

#[test]
fn rule_filter_restricts_the_run() {
    let root = make_workspace("cli-filter", DIRTY_LIB);
    // Filtered to an unrelated rule, the attr violation is not reported.
    let out = lint(&root, &["--rule", "safety-comment"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = lint(&root, &["--rule", "crate-unsafe-attr"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn usage_errors_exit_two() {
    let root = make_workspace("cli-usage", CLEAN_LIB);
    // Unknown rule id.
    let out = lint(&root, &["--rule", "no-such-rule"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // No subcommand.
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Unknown subcommand.
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Nonexistent root.
    let out = lint(&root.join("does-not-exist"), &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn sarif_format_emits_a_valid_log() {
    let root = make_workspace("cli-sarif", DIRTY_LIB);
    let out = lint(&root, &["--format", "sarif"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let value = json::parse(&stdout).expect("stdout must be a SARIF log");
    assert_eq!(
        value.get("version").and_then(json::Value::as_str),
        Some("2.1.0")
    );
    let runs = value.get("runs").and_then(json::Value::as_arr).unwrap();
    let results = runs[0]
        .get("results")
        .and_then(json::Value::as_arr)
        .unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(
        results[0].get("ruleId").and_then(json::Value::as_str),
        Some("crate-unsafe-attr")
    );

    // A clean run is still a structurally complete log (exit 0, empty results).
    let root = make_workspace("cli-sarif-clean", CLEAN_LIB);
    let out = lint(&root, &["--format", "sarif"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let value = json::parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let runs = value.get("runs").and_then(json::Value::as_arr).unwrap();
    assert_eq!(
        runs[0]
            .get("results")
            .and_then(json::Value::as_arr)
            .map(<[_]>::len),
        Some(0)
    );
}

#[test]
fn bench_check_validates_baselines() {
    // Baselines missing entirely: every schema reports a problem.
    let root = make_workspace("cli-bench-missing", CLEAN_LIB);
    let out = bin()
        .args(["bench-check", "--root"])
        .arg(&root)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("BENCH_insert.json"), "stdout: {stdout}");
    assert!(stdout.contains("BENCH_server.json"), "stdout: {stdout}");

    // A malformed value is pinpointed by key.
    let root = make_workspace("cli-bench-bad", CLEAN_LIB);
    fs::write(root.join("BENCH_insert.json"), r#"{"insert/x": -1.0}"#).unwrap();
    fs::write(root.join("BENCH_server.json"), r#"{"server/x": 1.0}"#).unwrap();
    let out = bin()
        .args(["bench-check", "--root"])
        .arg(&root)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("`insert/x` = -1 is not a positive finite"),
        "stdout: {stdout}"
    );
}

#[test]
fn rules_subcommand_lists_every_rule() {
    let out = bin().arg("rules").output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    for rule in [
        "safety-comment",
        "atomic-ordering",
        "seqlock-protocol",
        "panic-reachability",
        "format-exhaustiveness",
        "theorem1-confinement",
        "missing-docs-public",
        "crate-unsafe-attr",
        "tsan-suppressions",
        "simd-confinement",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in: {stdout}");
    }
}
