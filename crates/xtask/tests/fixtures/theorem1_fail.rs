// Failing fixture: candidate-bucket XOR arithmetic outside the
// Theorem-1 modules.
pub fn alt_bucket(bucket: usize, hfp: u64, index_mask: u64) -> usize {
    bucket ^ (hfp & index_mask) as usize
}
