// Passing fixture: documented public items; crate-private items need no
// docs.
/// Does the thing.
pub fn documented() {}

/// Tuning knobs.
pub struct Config {
    /// How many times to retry.
    pub retries: u32,
}

pub(crate) fn internal() {}
