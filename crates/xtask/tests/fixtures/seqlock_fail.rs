// Failing fixture: a Relaxed load in a seqlock module with no waiver.
use std::sync::atomic::{AtomicU32, Ordering};

/// Reads the version word.
pub fn version(v: &AtomicU32) -> u32 {
    v.load(Ordering::Relaxed)
}
