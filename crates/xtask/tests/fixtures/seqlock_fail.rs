// Failing fixture: two protocol holes — a bare `Relaxed` load that
// neither feeds a CAS nor validates a fence-paired read, and an
// optimistic `Acquire` begin that is never completed.

use std::sync::atomic::{AtomicU32, Ordering};

/// A `Relaxed` read used directly as the answer.
pub fn read_version_unsound(v: &AtomicU32) -> u32 {
    v.load(Ordering::Relaxed)
}

/// An optimistic begin with no fence, re-load, or compare after it.
pub fn begin_without_validate(v: &AtomicU32) -> u32 {
    v.load(Ordering::Acquire)
}
