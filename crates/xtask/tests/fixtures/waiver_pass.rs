// Passing fixture: a well-formed waiver that actually suppresses a
// finding — neither `lint-waiver` nor `stale-waiver` fires, and the
// waived diagnostic itself is gone.

/// Slot probe on the hot path.
// lint: hot-path
pub fn probe(slots: &[u64], key: u64) -> u64 {
    let i = (key as usize) % slots.len();
    // lint: allow(panic-reachability) — `i` is bounded by the modulo above
    slots[i]
}
