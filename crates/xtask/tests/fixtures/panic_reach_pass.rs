// Passing fixture: the same call shape with every sink dispensed —
// `.get()`-style fallbacks, a debug_assert carrying the bound (the
// SWAR-kernel idiom), and a panicky fn that is simply unreachable from
// any hot root.

/// Hot entry point.
// lint: hot-path
pub fn insert(keys: &[u64]) -> usize {
    stage_one(keys)
}

/// First hop.
fn stage_one(keys: &[u64]) -> usize {
    stage_two(keys)
}

/// Second hop: bound asserted in debug, graceful in release.
fn stage_two(keys: &[u64]) -> usize {
    debug_assert!(!keys.is_empty(), "callers batch at least one key");
    let Some(&first) = keys.first() else {
        return 0;
    };
    let i = (first as usize) % keys.len();
    usize::from(keys[i] != 0)
}

/// Report-side code, unreachable from the root: free to panic.
pub fn render_report(keys: &[u64]) -> u64 {
    keys.last().copied().unwrap()
}
