// Failing fixture: unwrap, panic!, and unchecked dynamic indexing in a
// hot-path module.
pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn pick(v: &[u64], i: usize) -> u64 {
    if i > v.len() {
        panic!("out of range");
    }
    v[i]
}
