// Passing fixture: both sound shapes the protocol rule admits.

use std::sync::atomic::{fence, AtomicU32, Ordering};

/// Sound shape 1 — CAS pre-read: the `Relaxed` load only picks the
/// expected value; the `compare_exchange` success ordering synchronizes.
pub fn try_lock(v: &AtomicU32) -> bool {
    let seen = v.load(Ordering::Relaxed);
    if seen & 1 != 0 {
        return false;
    }
    v.compare_exchange(seen, seen + 1, Ordering::Acquire, Ordering::Relaxed)
        .is_ok()
}

/// Sound shape 2 — Boehm's optimistic read: Acquire-load the version,
/// read the data, fence, re-load (`Relaxed` is enough past the fence),
/// `==`-compare and retry.
pub fn optimistic_read(v: &AtomicU32, data: &[u32], i: usize) -> Option<u32> {
    loop {
        let begin = v.load(Ordering::Acquire);
        if begin & 1 != 0 {
            continue;
        }
        let word = data.get(i).copied()?;
        fence(Ordering::Acquire);
        let end = v.load(Ordering::Relaxed);
        if begin == end {
            return Some(word);
        }
    }
}
