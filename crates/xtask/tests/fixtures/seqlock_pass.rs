// Passing fixture: the Relaxed load carries a waiver naming the pairing
// fence, so the rule is satisfied (and the waiver is used, not stale).
use std::sync::atomic::{fence, AtomicU32, Ordering};

/// Validates the version word after the data reads.
pub fn validate(v: &AtomicU32, before: u32) -> bool {
    fence(Ordering::Acquire);
    // lint: allow(seqlock-relaxed) — paired with the fence(Acquire) above
    v.load(Ordering::Relaxed) == before
}
