// Failing fixture: names an atomic ordering outside the whitelisted
// concurrency modules (rel path chosen by the test).
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(v: &AtomicU64) {
    v.store(1, Ordering::Release);
}
