// Failing fixture: the hot root is panic-free itself; every sink hides
// two calls down, so only transitive propagation over the call graph
// can find them (v1's per-file scan could not).

/// Hot entry point — clean body, dirty callees.
// lint: hot-path
pub fn insert(keys: &[u64]) -> usize {
    stage_one(keys)
}

/// First hop: still clean.
fn stage_one(keys: &[u64]) -> usize {
    stage_two(keys)
}

/// Second hop: three distinct sinks — unwrap, release assert, dynamic
/// index.
fn stage_two(keys: &[u64]) -> usize {
    let first = keys.first().unwrap();
    assert!(keys.len() < 1024);
    let i = (*first as usize) % keys.len();
    usize::from(keys[i] != 0)
}
