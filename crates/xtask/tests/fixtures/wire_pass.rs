// Passing fixture: every variant named in the consuming match, every
// decoded field validated or returned.

/// Wire magic for the demo header.
pub const MAGIC: u32 = 0x5643_4631;

/// Operation codes as they appear on the wire.
// lint: wire-format
pub enum OpCode {
    /// Insert a key.
    Insert,
    /// Membership probe.
    Lookup,
    /// Remove a key.
    Delete,
}

/// Frame dispatch naming every variant — adding one breaks the build
/// here instead of rotting behind a `_`.
pub fn dispatch(op: OpCode) -> u8 {
    match op {
        OpCode::Insert => 1,
        OpCode::Lookup => 2,
        OpCode::Delete => 3,
    }
}

/// Header decode validating everything it reads.
// lint: wire-format(decode)
pub fn decode_header(reader: &mut Reader<'_>) -> Result<u16, ()> {
    let magic = reader.u32();
    if magic != MAGIC {
        return Err(());
    }
    let version = reader.u16();
    Ok(version)
}

/// Minimal cursor for the fixture.
pub struct Reader<'a>(pub &'a [u8]);

impl Reader<'_> {
    /// Next little-endian u32.
    pub fn u32(&mut self) -> u32 {
        0
    }

    /// Next little-endian u16.
    pub fn u16(&mut self) -> u16 {
        0
    }
}
