// Passing fixture: the block is justified, and the unsafe fn carries a
// `# Safety` doc section.
pub fn read_first(p: *const u64) -> u64 {
    // SAFETY: caller contract (checked at the FFI boundary) guarantees
    // `p` is non-null and aligned.
    unsafe { *p }
}

/// Reads without any checks.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn read_unchecked(p: *const u64) -> u64 {
    // SAFETY: forwarded contract from this fn's own `# Safety` section.
    unsafe { *p }
}
