// Passing fixture: the `# Safety` section names the feature the caller
// must have detected, and the cfg form of target_feature (a compile-time
// check, not a kernel) is never flagged.
/// Sums four words with vector ops.
///
/// # Safety
///
/// Requires AVX2: callers must have observed
/// `is_x86_feature_detected!("avx2")` return true on this host, and
/// `ptr` must point at four readable words.
#[target_feature(enable = "avx2")]
pub unsafe fn sum4(ptr: *const u64) -> u64 {
    // SAFETY: caller promises four readable words.
    unsafe { *ptr + *ptr.add(1) + *ptr.add(2) + *ptr.add(3) }
}

/// A safe helper callable only from AVX2 contexts; safe fns need no
/// feature-naming safety text.
#[target_feature(enable = "avx2")]
#[inline]
fn square(x: u64) -> u64 {
    x * x
}

/// Compile-time gating is out of scope for the rule.
pub fn compiled_with_avx2() -> bool {
    cfg!(target_feature = "avx2")
}
