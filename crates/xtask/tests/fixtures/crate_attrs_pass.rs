//! Passing fixture: a crate root that forbids unsafe code outright.
#![forbid(unsafe_code)]

pub fn noop() {}
