// Failing fixture: one malformed waiver (no reason) and one stale
// waiver (the rule it names never fires on the next line).
// lint: allow(no-panic-hot-path)
pub fn covered() {}

// lint: allow(seqlock-relaxed) — nothing here actually loads Relaxed
pub fn stale() {}
