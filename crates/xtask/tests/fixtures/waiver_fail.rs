// Failing fixture: one malformed waiver (no reason) and one stale
// waiver (the rule it names never fires on the next line).
// lint: allow(panic-reachability)
pub fn covered() {}

// lint: allow(seqlock-protocol) — nothing here touches an atomic
pub fn stale() {}
