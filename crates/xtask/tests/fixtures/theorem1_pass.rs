// Passing fixture: XOR on non-bucket identifiers (seed whitening) is
// not candidate arithmetic.
pub fn whiten(seed: u64) -> u64 {
    seed ^ 0x9e37_79b9_7f4a_7c15
}
