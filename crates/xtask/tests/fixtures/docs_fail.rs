// Failing fixture: undocumented public items in an API crate.
pub fn undocumented() {}

pub struct Config {
    pub retries: u32,
}
