// Failing fixture (in scope): an unsafe target_feature kernel whose
// comments never name the feature callers must detect. Mounted outside
// the kernels directory, the attribute itself is the violation.
/// Sums four words with vector ops.
///
/// # Safety
///
/// `ptr` must point at four readable words.
#[target_feature(enable = "avx2")]
pub unsafe fn sum4(ptr: *const u64) -> u64 {
    // SAFETY: caller promises four readable words.
    unsafe { *ptr + *ptr.add(1) + *ptr.add(2) + *ptr.add(3) }
}
