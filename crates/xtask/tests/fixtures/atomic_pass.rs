// Passing fixture: `cmp::Ordering` variants are not atomic orderings,
// and strings/comments mentioning Ordering::Relaxed don't count.
use std::cmp::Ordering;

pub fn describe(a: u32, b: u32) -> &'static str {
    match a.cmp(&b) {
        Ordering::Less => "less",
        Ordering::Equal => "equal (not Ordering::Relaxed)",
        Ordering::Greater => "greater",
    }
}
