// Failing fixture: a wildcard arm hides wire variants, and the decode
// fn parses header fields it never validates.

/// Operation codes as they appear on the wire.
// lint: wire-format
pub enum OpCode {
    /// Insert a key.
    Insert,
    /// Membership probe.
    Lookup,
    /// Remove a key.
    Delete,
}

/// Frame dispatch hiding behind a wildcard.
pub fn dispatch(op: OpCode) -> u8 {
    match op {
        OpCode::Insert => 1,
        _ => 0,
    }
}

/// Header decode: `magic` parsed but unchecked, one field discarded.
// lint: wire-format(decode)
pub fn decode_header(reader: &mut Reader<'_>) -> u16 {
    let magic = reader.u32();
    let version = reader.u16();
    let _ = reader.u16();
    version
}

/// Minimal cursor for the fixture.
pub struct Reader<'a>(pub &'a [u8]);
