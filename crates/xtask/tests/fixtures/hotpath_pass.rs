// Passing fixture: the three dispensations (literal index, range index,
// debug_assert in the enclosing fn) plus checked access, and tests may
// do whatever they like.
pub fn head_tail(v: &[u64; 4]) -> (u64, &[u64]) {
    (v[0], &v[1..])
}

pub fn pick(v: &[u64], i: usize) -> u64 {
    debug_assert!(i < v.len(), "caller guarantees the bound");
    v[i]
}

pub fn safe_pick(v: &[u64], i: usize) -> Option<u64> {
    v.get(i).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let v = [1u64];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
