//! Failing fixture: a crate root that denies unsafe_code but forgets
//! unsafe_op_in_unsafe_fn.
#![deny(unsafe_code)]

pub fn noop() {}
