//! Fixture-based rule tests: for every rule, one snippet that must fail
//! and one that must pass, plus JSON round-tripping of the report.
//!
//! The snippets live under `tests/fixtures/` — a directory the
//! workspace walker skips, so the deliberately-violating code never
//! reaches a real lint run. Each test mounts a snippet at a relative
//! path inside the rule's scope.

use vcf_xtask::diag::{report_json, Diagnostic};
use vcf_xtask::json;
use vcf_xtask::source::SourceFile;
use vcf_xtask::LintContext;

fn run_rule(rel: &str, src: &str, rule: &str) -> Vec<Diagnostic> {
    let ctx = LintContext::from_memory(vec![SourceFile::new(rel, src)]);
    ctx.run(Some(rule)).expect("rule id must be known")
}

fn assert_fails(rel: &str, src: &str, rule: &'static str) -> Vec<Diagnostic> {
    let diags = run_rule(rel, src, rule);
    assert!(
        !diags.is_empty(),
        "expected `{rule}` to fire on fixture mounted at {rel}"
    );
    assert!(diags.iter().all(|d| d.rule == rule));
    diags
}

fn assert_passes(rel: &str, src: &str, rule: &str) {
    let diags = run_rule(rel, src, rule);
    assert!(
        diags.is_empty(),
        "expected `{rule}` to stay quiet on fixture mounted at {rel}, got:\n{}",
        diags
            .iter()
            .map(Diagnostic::render_text)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn safety_comment_fixtures() {
    let diags = assert_fails(
        "crates/demo/src/raw.rs",
        include_str!("fixtures/safety_fail.rs"),
        "safety-comment",
    );
    assert_eq!(diags.len(), 1, "exactly the one unjustified block");
    assert_passes(
        "crates/demo/src/raw.rs",
        include_str!("fixtures/safety_pass.rs"),
        "safety-comment",
    );
}

#[test]
fn atomic_ordering_fixtures() {
    // Outside the whitelist the store's ordering argument fires…
    assert_fails(
        "crates/demo/src/worker.rs",
        include_str!("fixtures/atomic_fail.rs"),
        "atomic-ordering",
    );
    // …the same code inside a whitelisted module is fine…
    assert_passes(
        "crates/traits/src/counters.rs",
        include_str!("fixtures/atomic_fail.rs"),
        "atomic-ordering",
    );
    // …and cmp::Ordering never counts, wherever it appears.
    assert_passes(
        "crates/demo/src/worker.rs",
        include_str!("fixtures/atomic_pass.rs"),
        "atomic-ordering",
    );
}

#[test]
fn seqlock_protocol_fixtures() {
    let diags = assert_fails(
        "crates/core/src/concurrent.rs",
        include_str!("fixtures/seqlock_fail.rs"),
        "seqlock-protocol",
    );
    // One unsound Relaxed load + one unvalidated optimistic begin.
    assert_eq!(diags.len(), 2, "got:\n{diags:#?}");
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("neither a CAS pre-read")),
        "got:\n{diags:#?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("never validated")),
        "got:\n{diags:#?}"
    );
    // Both sound shapes — CAS pre-read and the completed Boehm read —
    // pass structurally, with no waiver anywhere.
    assert_passes(
        "crates/core/src/concurrent.rs",
        include_str!("fixtures/seqlock_pass.rs"),
        "seqlock-protocol",
    );
    // Outside the seqlock modules the protocol rule is out of scope.
    assert_passes(
        "crates/demo/src/worker.rs",
        include_str!("fixtures/seqlock_fail.rs"),
        "seqlock-protocol",
    );
}

#[test]
fn panic_reachability_fixtures() {
    // The hot root is panic-free; the sinks sit two calls deep, so only
    // transitive propagation over the call graph can find them.
    let diags = assert_fails(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/panic_reach_fail.rs"),
        "panic-reachability",
    );
    // unwrap + release assert + dynamic index = three distinct findings.
    assert_eq!(diags.len(), 3, "got:\n{diags:#?}");
    for d in &diags {
        assert!(
            d.message.contains("reached via")
                && d.message.contains("stage_one")
                && d.message.contains("stage_two"),
            "finding must carry the full call chain, got: {}",
            d.message
        );
    }
    assert_passes(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/panic_reach_pass.rs"),
        "panic-reachability",
    );
    // Without the marker nothing is hot and nothing fires — the rule is
    // annotation-driven, not path-driven like v1.
    let unmarked = include_str!("fixtures/panic_reach_fail.rs").replace("// lint: hot-path", "");
    assert_passes("crates/demo/src/lib.rs", &unmarked, "panic-reachability");
    // A marker that binds to no fn is itself a finding.
    let diags = assert_fails(
        "crates/demo/src/lib.rs",
        "// lint: hot-path\npub struct NotAFn;\n",
        "panic-reachability",
    );
    assert!(diags[0].message.contains("dangling"), "got:\n{diags:#?}");
}

#[test]
fn format_exhaustiveness_fixtures() {
    let diags = assert_fails(
        "crates/demo/src/wire.rs",
        include_str!("fixtures/wire_fail.rs"),
        "format-exhaustiveness",
    );
    // `_` arm + two unmatched variants + unchecked `magic` + `let _ =`.
    assert_eq!(diags.len(), 5, "got:\n{diags:#?}");
    assert!(
        diags.iter().any(|d| d.message.contains("`_` arm")),
        "got:\n{diags:#?}"
    );
    for variant in ["`OpCode::Lookup`", "`OpCode::Delete`"] {
        assert!(
            diags.iter().any(|d| d.message.contains(variant)),
            "expected an unmatched-variant finding for {variant}, got:\n{diags:#?}"
        );
    }
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("`magic` is read but never used")),
        "got:\n{diags:#?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("discarded with `let _ =`")),
        "got:\n{diags:#?}"
    );
    assert_passes(
        "crates/demo/src/wire.rs",
        include_str!("fixtures/wire_pass.rs"),
        "format-exhaustiveness",
    );
    // A marker that binds to no item is itself a finding.
    let diags = assert_fails(
        "crates/demo/src/wire.rs",
        "// lint: wire-format\npub const X: u32 = 0;\n",
        "format-exhaustiveness",
    );
    assert!(diags[0].message.contains("dangling"), "got:\n{diags:#?}");
}

#[test]
fn server_atomics_confinement_fixtures() {
    // Atomics belong in the server's metrics module only…
    assert_passes(
        "crates/server/src/metrics.rs",
        include_str!("fixtures/atomic_fail.rs"),
        "atomic-ordering",
    );
    // …hand-rolled orderings anywhere else in the crate still fire.
    assert_fails(
        "crates/server/src/server.rs",
        include_str!("fixtures/atomic_fail.rs"),
        "atomic-ordering",
    );
    assert_fails(
        "crates/server/src/executor.rs",
        include_str!("fixtures/atomic_fail.rs"),
        "atomic-ordering",
    );
}

#[test]
fn theorem1_confinement_fixtures() {
    assert_fails(
        "crates/core/src/dvcf.rs",
        include_str!("fixtures/theorem1_fail.rs"),
        "theorem1-confinement",
    );
    // The same arithmetic is legal inside the Theorem-1 modules…
    assert_passes(
        "crates/core/src/vertical.rs",
        include_str!("fixtures/theorem1_fail.rs"),
        "theorem1-confinement",
    );
    // …and seed whitening outside them doesn't look like candidates.
    assert_passes(
        "crates/core/src/dvcf.rs",
        include_str!("fixtures/theorem1_pass.rs"),
        "theorem1-confinement",
    );
}

#[test]
fn missing_docs_public_fixtures() {
    let diags = assert_fails(
        "crates/core/src/options.rs",
        include_str!("fixtures/docs_fail.rs"),
        "missing-docs-public",
    );
    // fn + struct + field, all undocumented.
    assert_eq!(diags.len(), 3, "got:\n{diags:#?}");
    assert_passes(
        "crates/core/src/options.rs",
        include_str!("fixtures/docs_pass.rs"),
        "missing-docs-public",
    );
    // Crates outside the API list are not held to the doc standard.
    assert_passes(
        "crates/harness/src/options.rs",
        include_str!("fixtures/docs_fail.rs"),
        "missing-docs-public",
    );
}

#[test]
fn crate_unsafe_attr_fixtures() {
    assert_fails(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/crate_attrs_fail.rs"),
        "crate-unsafe-attr",
    );
    assert_passes(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/crate_attrs_pass.rs"),
        "crate-unsafe-attr",
    );
    // Non-root modules carry no crate attributes and are out of scope.
    assert_passes(
        "crates/demo/src/inner.rs",
        include_str!("fixtures/crate_attrs_fail.rs"),
        "crate-unsafe-attr",
    );
}

#[test]
fn tsan_suppressions_fixtures() {
    let source = SourceFile::new(
        "crates/demo/src/lib.rs",
        "pub fn existing_symbol_for_fixture() {}\n",
    );
    let mut ctx = LintContext::from_memory(vec![source]);
    ctx.suppressions = Some((
        ".github/tsan-suppressions.txt".to_owned(),
        include_str!("fixtures/tsan_fail.txt").to_owned(),
    ));
    let diags = ctx.run(Some("tsan-suppressions")).unwrap();
    // Stale symbol + unknown kind + missing colon.
    assert_eq!(diags.len(), 3, "got:\n{diags:#?}");

    let source = SourceFile::new(
        "crates/demo/src/lib.rs",
        "pub fn existing_symbol_for_fixture() {}\n",
    );
    let mut ctx = LintContext::from_memory(vec![source]);
    ctx.suppressions = Some((
        ".github/tsan-suppressions.txt".to_owned(),
        include_str!("fixtures/tsan_pass.txt").to_owned(),
    ));
    assert!(ctx.run(Some("tsan-suppressions")).unwrap().is_empty());
}

#[test]
fn simd_confinement_fixtures() {
    // Any `#[target_feature]` attribute outside the kernels directory is
    // a confinement violation — even a perfectly documented one.
    assert_fails(
        "crates/demo/src/fast.rs",
        include_str!("fixtures/simd_pass.rs"),
        "simd-confinement",
    );
    // Inside the kernels directory the unsafe kernel still needs safety
    // text naming the feature…
    let diags = assert_fails(
        "crates/table/src/kernels/fast.rs",
        include_str!("fixtures/simd_fail.rs"),
        "simd-confinement",
    );
    assert_eq!(diags.len(), 1, "got:\n{diags:#?}");
    assert!(diags[0].message.contains("avx2"), "got:\n{diags:#?}");
    // …and with the feature named (plus a safe helper and a cfg check,
    // neither of which is in scope) the rule stays quiet.
    assert_passes(
        "crates/table/src/kernels/fast.rs",
        include_str!("fixtures/simd_pass.rs"),
        "simd-confinement",
    );
}

#[test]
fn waiver_fixtures() {
    // Full runs surface malformed and stale waivers.
    let ctx = LintContext::from_memory(vec![SourceFile::new(
        "crates/demo/src/waivers.rs",
        include_str!("fixtures/waiver_fail.rs"),
    )]);
    let diags = ctx.run(None).unwrap();
    let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    assert_eq!(rules, ["lint-waiver", "stale-waiver"], "got:\n{diags:#?}");

    // A used waiver is neither a violation nor stale…
    let ctx = LintContext::from_memory(vec![SourceFile::new(
        "crates/demo/src/waived.rs",
        include_str!("fixtures/waiver_pass.rs"),
    )]);
    let diags = ctx.run(None).unwrap();
    assert!(
        diags
            .iter()
            .all(|d| d.rule != "stale-waiver" && d.rule != "lint-waiver"),
        "got:\n{diags:#?}"
    );
    // …and the waived finding itself is suppressed.
    assert!(
        diags.iter().all(|d| d.rule != "panic-reachability"),
        "got:\n{diags:#?}"
    );
}

#[test]
fn json_report_round_trips() {
    let diags = assert_fails(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/panic_reach_fail.rs"),
        "panic-reachability",
    );
    let rendered = report_json(&diags, 1, &["panic-reachability"]);
    let value = json::parse(&rendered).expect("report must be valid JSON");
    assert_eq!(
        value.get("checked_files").and_then(json::Value::as_num),
        Some(1.0)
    );
    let parsed = value
        .get("diagnostics")
        .and_then(json::Value::as_arr)
        .expect("diagnostics array");
    assert_eq!(parsed.len(), diags.len());
    for (obj, diag) in parsed.iter().zip(&diags) {
        assert_eq!(
            obj.get("rule").and_then(json::Value::as_str),
            Some(diag.rule)
        );
        assert_eq!(
            obj.get("file").and_then(json::Value::as_str),
            Some(diag.file.as_str())
        );
        assert_eq!(
            obj.get("line").and_then(json::Value::as_num),
            Some(f64::from(diag.line))
        );
        assert_eq!(
            obj.get("message").and_then(json::Value::as_str),
            Some(diag.message.as_str())
        );
    }
}

#[test]
fn unknown_rule_filter_is_an_error() {
    let ctx = LintContext::from_memory(vec![]);
    assert!(ctx.run(Some("no-such-rule")).is_err());
}
