//! The workspace itself must lint clean — this is the check CI relies
//! on, run here as an ordinary test so `cargo test --workspace` catches
//! regressions without a separate CI wiring.

use std::path::PathBuf;

use vcf_xtask::diag::Diagnostic;
use vcf_xtask::LintContext;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_lints_clean() {
    let ctx = LintContext::load(&workspace_root()).expect("workspace loads");
    assert!(
        ctx.files.len() > 100,
        "walker found only {} files — scope regression?",
        ctx.files.len()
    );
    let diags = ctx.run(None).expect("full run");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        diags
            .iter()
            .map(Diagnostic::render_text)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_has_tsan_suppressions_file() {
    let ctx = LintContext::load(&workspace_root()).expect("workspace loads");
    assert!(
        ctx.suppressions.is_some(),
        "expected .github/tsan-suppressions.txt to exist so the \
         staleness rule has something to check"
    );
}

#[test]
fn full_lint_run_stays_within_budget() {
    // The linter gates every CI run and pre-commit hook; the semantic
    // front-end (parse + call-graph resolution) must stay interactive.
    let start = std::time::Instant::now();
    let ctx = LintContext::load(&workspace_root()).expect("workspace loads");
    ctx.run(None).expect("full run");
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(3),
        "full lint run took {elapsed:?} — keep the front-end under the 3s budget"
    );
}
