//! Ablation for the paper's Section III-C claim that generalized vertical
//! hashing can replace the `d` independent hash computations of classic
//! sketches: Count-Min update/query cost, classic vs vertical indexing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vcf_baselines::{BloomConfig, BloomFilter};
use vcf_bench::bench_keys;
use vcf_sketches::{ClassicCountMin, CountMin, VerticalBloomFilter, VerticalCountMin};
use vcf_traits::Filter;

const WIDTH: usize = 1 << 14;

fn sketch_benches(c: &mut Criterion) {
    let keys = bench_keys(4096, 7);

    for depth in [4usize, 8] {
        let mut g = c.benchmark_group(format!("sketch/update/d{depth}"));
        g.bench_function(BenchmarkId::from_parameter("classic"), |b| {
            let mut sketch = ClassicCountMin::new(WIDTH, depth, 42).unwrap();
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % keys.len();
                sketch.increment(&keys[i], 1);
            });
        });
        g.bench_function(BenchmarkId::from_parameter("vertical"), |b| {
            let mut sketch = VerticalCountMin::new(WIDTH, depth, 42).unwrap();
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % keys.len();
                sketch.increment(&keys[i], 1);
            });
        });
        g.finish();

        let mut g = c.benchmark_group(format!("sketch/query/d{depth}"));
        let mut classic = ClassicCountMin::new(WIDTH, depth, 42).unwrap();
        let mut vertical = VerticalCountMin::new(WIDTH, depth, 42).unwrap();
        for key in &keys {
            classic.increment(key, 1);
            vertical.increment(key, 1);
        }
        g.bench_function(BenchmarkId::from_parameter("classic"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % keys.len();
                std::hint::black_box(classic.estimate(&keys[i]))
            });
        });
        g.bench_function(BenchmarkId::from_parameter("vertical"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % keys.len();
                std::hint::black_box(vertical.estimate(&keys[i]))
            });
        });
        g.finish();
    }
}

fn bloom_benches(c: &mut Criterion) {
    let n = 1 << 14;
    let keys = bench_keys(n, 7);

    let mut classic = BloomFilter::new(BloomConfig::for_items(n, 1e-3)).unwrap();
    let mut vertical = VerticalBloomFilter::for_items(n, 1e-3, 42).unwrap();
    for key in &keys {
        let _ = classic.insert(key);
        vertical.insert(key);
    }

    let mut g = c.benchmark_group("sketch/bloom_lookup");
    g.bench_function(BenchmarkId::from_parameter("classic(2-hash)"), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % n;
            std::hint::black_box(classic.contains(&keys[i]))
        });
    });
    g.bench_function(BenchmarkId::from_parameter("vertical(1-hash)"), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % n;
            std::hint::black_box(vertical.contains(&keys[i]))
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = sketch_benches, bloom_benches
}
criterion_main!(benches);
