//! Multi-threaded throughput: insert, lookup and mixed churn, swept over
//! 1–16 threads at 50%/75%/95% target load.
//!
//! Contenders (all driven through [`ConcurrentFilter`]):
//!
//! * `ConcurrentVCF`      — one lock-free table, CAS claims + two-bucket
//!   relocation locks,
//! * `ShardedConcurrentVCF[16]` — routing over 16 lock-free shards,
//! * `ShardedVCF[1]`      — the single-`RwLock` baseline every scaling
//!   claim is measured against (`shard_bits = 0`),
//! * `ShardedVCF[16]`     — the PR-1 era coarse-lock design.
//!
//! Each iteration times one whole parallel phase: spawn the thread team,
//! run every thread's disjoint slice of work, join. Thread spawn/join
//! overhead (~tens of µs) is included identically for every contender,
//! so relative numbers are meaningful; absolute ns/op at tiny thread
//! counts slightly overstate cost. On a single-core host the sweep still
//! runs (oversubscribed), but scaling curves are only meaningful with
//! ≥ as many cores as threads.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use vcf_bench::bench_keys;
use vcf_core::{ConcurrentVcf, CuckooConfig, ShardedConcurrentVcf, ShardedVcf};
use vcf_traits::ConcurrentFilter;

/// Total slots: 2^14 keeps one parallel phase in the low milliseconds so
/// the full (workload × load × threads × filter) matrix stays tractable.
const SLOTS_LOG2: u32 = 14;
const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const LOADS: [(u32, f64); 3] = [(50, 0.50), (75, 0.75), (95, 0.95)];
const SHARD_BITS: u32 = 4;

type DynFilter = Arc<dyn ConcurrentFilter>;
/// A named contender: display label plus a fresh-filter constructor.
type Contender = (&'static str, fn() -> DynFilter);

fn config() -> CuckooConfig {
    CuckooConfig::with_total_slots(1 << SLOTS_LOG2).with_seed(42)
}

/// `(label, constructor)` for every contender.
fn contenders() -> Vec<Contender> {
    vec![
        ("ConcurrentVCF", || {
            Arc::new(ConcurrentVcf::new(config()).unwrap())
        }),
        ("ShardedConcurrentVCF[16]", || {
            Arc::new(ShardedConcurrentVcf::new(config(), SHARD_BITS).unwrap())
        }),
        ("ShardedVCF[1]", || {
            Arc::new(ShardedVcf::new(config(), 0).unwrap())
        }),
        ("ShardedVCF[16]", || {
            Arc::new(ShardedVcf::new(config(), SHARD_BITS).unwrap())
        }),
    ]
}

/// Splits `n` items into `threads` near-equal `(start, end)` ranges.
fn slices(n: usize, threads: usize) -> Vec<(usize, usize)> {
    (0..threads)
        .map(|t| (n * t / threads, n * (t + 1) / threads))
        .collect()
}

/// Runs `work(thread_index, start, end)` on `threads` spawned threads
/// over disjoint slices of `n` items and joins them.
fn run_team<W>(filter: &DynFilter, n: usize, threads: usize, keys: &Arc<Vec<Vec<u8>>>, work: W)
where
    W: Fn(&DynFilter, &[Vec<u8>], usize) + Send + Sync + Copy + 'static,
{
    let handles: Vec<_> = slices(n, threads)
        .into_iter()
        .enumerate()
        .map(|(t, (start, end))| {
            let filter = Arc::clone(filter);
            let keys = Arc::clone(keys);
            std::thread::spawn(move || work(&filter, &keys[start..end], t))
        })
        .collect();
    for h in handles {
        h.join().expect("bench worker panicked");
    }
}

fn fill(filter: &DynFilter, keys: &[Vec<u8>]) {
    for key in keys {
        let _ = filter.insert(key);
    }
}

/// Insert throughput: every iteration fills a *fresh* filter to the
/// target load from `threads` writers.
fn bench_insert(c: &mut Criterion) {
    for (load_pct, load) in LOADS {
        let n = ((1usize << SLOTS_LOG2) as f64 * load) as usize;
        let keys = Arc::new(bench_keys(n, 7));
        for threads in THREAD_COUNTS {
            let mut g = c.benchmark_group(format!("concurrent/insert/load{load_pct}/t{threads}"));
            g.throughput(Throughput::Elements(n as u64));
            g.sample_size(10);
            for (label, make) in contenders() {
                let keys = Arc::clone(&keys);
                g.bench_function(BenchmarkId::from_parameter(label), |b| {
                    b.iter_batched(
                        make,
                        |filter| {
                            run_team(&filter, n, threads, &keys, |f, slice, _| {
                                for key in slice {
                                    let _ = f.insert(key);
                                }
                            });
                            filter
                        },
                        BatchSize::LargeInput,
                    );
                });
            }
            g.finish();
        }
    }
}

/// Lookup throughput: `threads` readers probe a pre-loaded filter, half
/// positive, half alien.
fn bench_lookup(c: &mut Criterion) {
    for (load_pct, load) in LOADS {
        let n = ((1usize << SLOTS_LOG2) as f64 * load) as usize;
        let members = Arc::new(bench_keys(n, 7));
        let mut probe_set = bench_keys(n / 2, 7);
        probe_set.extend(bench_keys(n / 2, 0xa11e4));
        let probes = Arc::new(probe_set);
        let probe_count = probes.len();
        for threads in THREAD_COUNTS {
            let mut g = c.benchmark_group(format!("concurrent/lookup/load{load_pct}/t{threads}"));
            g.throughput(Throughput::Elements(probe_count as u64));
            g.sample_size(10);
            for (label, make) in contenders() {
                let filter = make();
                fill(&filter, &members);
                let probes = Arc::clone(&probes);
                g.bench_function(BenchmarkId::from_parameter(label), |b| {
                    b.iter(|| {
                        run_team(&filter, probe_count, threads, &probes, |f, slice, _| {
                            for key in slice {
                                std::hint::black_box(f.contains(key));
                            }
                        });
                    });
                });
            }
            g.finish();
        }
    }
}

/// Mixed churn at steady-state load: each thread loops over its own
/// slice doing lookup / delete+reinsert rounds (50% lookups, 25%
/// deletes, 25% inserts), holding the load factor roughly constant.
fn bench_mixed(c: &mut Criterion) {
    for (load_pct, load) in LOADS {
        let n = ((1usize << SLOTS_LOG2) as f64 * load) as usize;
        let keys = Arc::new(bench_keys(n, 7));
        for threads in THREAD_COUNTS {
            let mut g = c.benchmark_group(format!("concurrent/mixed/load{load_pct}/t{threads}"));
            g.throughput(Throughput::Elements(n as u64));
            g.sample_size(10);
            for (label, make) in contenders() {
                let filter = make();
                fill(&filter, &keys);
                let keys = Arc::clone(&keys);
                g.bench_function(BenchmarkId::from_parameter(label), |b| {
                    b.iter(|| {
                        run_team(&filter, n, threads, &keys, |f, slice, _| {
                            for (i, key) in slice.iter().enumerate() {
                                match i % 4 {
                                    0 => {
                                        // Delete-then-reinsert keeps the
                                        // steady-state load unchanged.
                                        if f.delete(key) {
                                            let _ = f.insert(key);
                                        }
                                    }
                                    _ => {
                                        std::hint::black_box(f.contains(key));
                                    }
                                }
                            }
                        });
                    });
                });
            }
            g.finish();
        }
    }
}

fn benches(c: &mut Criterion) {
    bench_insert(c);
    bench_lookup(c);
    bench_mixed(c);
}

criterion_group!(concurrent_throughput, benches);
criterion_main!(concurrent_throughput);
