//! The marginal insertion near full load — the eviction cascade itself
//! (Fig. 8, Section V-C).
//!
//! Each iteration starts from a pre-filled filter at a given load factor
//! and inserts one batch of fresh keys, so the measured time is dominated
//! by kick cascades. The gap between CF and VCF widens sharply with α,
//! which is exactly Equ. 13's `1/(1 − α^((2r+1)b))` divergence.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use vcf_baselines::CuckooFilter;
use vcf_bench::{bench_keys, BENCH_SLOTS_LOG2};
use vcf_core::{CuckooConfig, VerticalCuckooFilter};
use vcf_traits::Filter;

const BATCH: usize = 256;

fn bench_marginal<F: Filter + Clone>(c: &mut Criterion, label: &str, alpha: f64, filter: F) {
    let slots = 1usize << BENCH_SLOTS_LOG2;
    let warm = (slots as f64 * alpha) as usize;
    let keys = bench_keys(warm + BATCH, 7);
    let mut loaded = filter;
    for key in keys.iter().take(warm) {
        let _ = loaded.insert(key);
    }
    let fresh = &keys[warm..];

    let mut g = c.benchmark_group(format!("eviction/alpha{:02}", (alpha * 100.0) as u32));
    g.throughput(criterion::Throughput::Elements(BATCH as u64));
    g.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            || loaded.clone(),
            |mut filter| {
                for key in fresh {
                    let _ = filter.insert(key);
                }
                filter
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn eviction_benches(c: &mut Criterion) {
    let config = CuckooConfig::with_total_slots(1 << BENCH_SLOTS_LOG2).with_seed(42);
    for alpha in [0.80, 0.90, 0.95] {
        bench_marginal(c, "CF", alpha, CuckooFilter::new(config).unwrap());
        bench_marginal(c, "VCF", alpha, VerticalCuckooFilter::new(config).unwrap());
        bench_marginal(
            c,
            "IVCF3",
            alpha,
            VerticalCuckooFilter::with_mask_ones(config, 3).unwrap(),
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = eviction_benches
}
criterion_main!(benches);
