//! The paper's motivating scenario: a sustained online workload that
//! inserts and deletes at high occupancy (Section I, "online applications
//! wherein the items join and leave frequently").
//!
//! Each iteration replays a fixed churn trace (delete one, insert one,
//! look up two) against a filter pre-filled to 90 %. VCF's advantage here
//! is the headline claim of the paper.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use vcf_baselines::{CuckooFilter, DaryCuckooFilter};
use vcf_bench::BENCH_SLOTS_LOG2;
use vcf_core::{CuckooConfig, Dvcf, EvictionPolicy, VerticalCuckooFilter};
use vcf_traits::Filter;
use vcf_workloads::{ChurnConfig, ChurnTrace, Op};

fn config() -> CuckooConfig {
    CuckooConfig::with_total_slots(1 << BENCH_SLOTS_LOG2).with_seed(42)
}

fn replay<F: Filter>(filter: &mut F, trace: &ChurnTrace) -> usize {
    let mut positives = 0usize;
    for op in trace.iter() {
        match op {
            Op::Insert(key) => {
                let _ = filter.insert(key);
            }
            Op::Delete(key) => {
                filter.delete(key);
            }
            Op::Lookup { key, .. } => {
                if filter.contains(key) {
                    positives += 1;
                }
            }
        }
    }
    positives
}

fn bench_churn<F: Filter + Clone>(c: &mut Criterion, label: &str, base: F, trace: &ChurnTrace) {
    bench_churn_group(c, "churn/steady_state", label, base, trace);
}

fn bench_churn_group<F: Filter + Clone>(
    c: &mut Criterion,
    group: &str,
    label: &str,
    base: F,
    trace: &ChurnTrace,
) {
    // Pre-fill with the trace warm-up once; each iteration replays only
    // the churn rounds against a clone.
    let warmup = trace.config().working_set;
    let mut warm = base;
    for op in trace.ops().iter().take(warmup) {
        if let Op::Insert(key) = op {
            let _ = warm.insert(key);
        }
    }
    let churn_ops = &trace.ops()[warmup..];
    let rounds = trace.config().rounds;

    let mut g = c.benchmark_group(group);
    g.throughput(criterion::Throughput::Elements(churn_ops.len() as u64));
    g.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            || warm.clone(),
            |mut filter| {
                for op in churn_ops {
                    match op {
                        Op::Insert(key) => {
                            let _ = filter.insert(key);
                        }
                        Op::Delete(key) => {
                            filter.delete(key);
                        }
                        Op::Lookup { key, .. } => {
                            std::hint::black_box(filter.contains(key));
                        }
                    }
                }
                filter
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
    let _ = rounds;
}

fn churn_benches(c: &mut Criterion) {
    let slots = 1usize << BENCH_SLOTS_LOG2;
    let trace = ChurnTrace::generate(ChurnConfig {
        working_set: slots * 90 / 100,
        rounds: 4096,
        lookups_per_round: 2,
        positive_fraction: 0.5,
        seed: 0xc4,
    });

    bench_churn(c, "CF", CuckooFilter::new(config()).unwrap(), &trace);
    bench_churn(
        c,
        "VCF",
        VerticalCuckooFilter::new(config()).unwrap(),
        &trace,
    );
    bench_churn(c, "DVCF_r0.5", Dvcf::with_r(config(), 0.5).unwrap(), &trace);
    bench_churn(
        c,
        "DCF",
        DaryCuckooFilter::new(config(), 4).unwrap(),
        &trace,
    );

    // The insertion-intensive regime the BFS policy targets: churn at
    // 95 % occupancy, random walk vs. breadth-first eviction on the
    // same trace (Fig. 8's territory).
    let trace95 = ChurnTrace::generate(ChurnConfig {
        working_set: slots * 95 / 100,
        rounds: 4096,
        lookups_per_round: 2,
        positive_fraction: 0.5,
        seed: 0xc4,
    });
    bench_churn_group(
        c,
        "churn/load95",
        "VCF",
        VerticalCuckooFilter::new(config()).unwrap(),
        &trace95,
    );
    bench_churn_group(
        c,
        "churn/load95",
        "VCF_bfs",
        VerticalCuckooFilter::new(config().with_eviction_policy(EvictionPolicy::Bfs)).unwrap(),
        &trace95,
    );

    // Sanity outside timing: replay must produce every expected positive.
    let mut vcf = VerticalCuckooFilter::new(config()).unwrap();
    let positives = replay(&mut vcf, &trace);
    assert!(positives > 0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = churn_benches
}
criterion_main!(benches);
