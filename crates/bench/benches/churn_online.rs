//! The paper's motivating scenario: a sustained online workload that
//! inserts and deletes at high occupancy (Section I, "online applications
//! wherein the items join and leave frequently").
//!
//! Each iteration replays a fixed churn trace (delete one, insert one,
//! look up two) against a filter pre-filled to 90 %. VCF's advantage here
//! is the headline claim of the paper.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use vcf_baselines::{CuckooFilter, DaryCuckooFilter};
use vcf_bench::{bench_keys, BENCH_SLOTS_LOG2};
use vcf_core::{CuckooConfig, Dvcf, EvictionPolicy, ScalableVcf, VerticalCuckooFilter};
use vcf_traits::{Filter, ScalableFilter};
use vcf_workloads::{ChurnConfig, ChurnTrace, Op};

fn config() -> CuckooConfig {
    CuckooConfig::with_total_slots(1 << BENCH_SLOTS_LOG2).with_seed(42)
}

fn replay<F: Filter>(filter: &mut F, trace: &ChurnTrace) -> usize {
    let mut positives = 0usize;
    for op in trace.iter() {
        match op {
            Op::Insert(key) => {
                let _ = filter.insert(key);
            }
            Op::Delete(key) => {
                filter.delete(key);
            }
            Op::Lookup { key, .. } => {
                if filter.contains(key) {
                    positives += 1;
                }
            }
        }
    }
    positives
}

fn bench_churn<F: Filter + Clone>(c: &mut Criterion, label: &str, base: F, trace: &ChurnTrace) {
    bench_churn_group(c, "churn/steady_state", label, base, trace);
}

fn bench_churn_group<F: Filter + Clone>(
    c: &mut Criterion,
    group: &str,
    label: &str,
    base: F,
    trace: &ChurnTrace,
) {
    // Pre-fill with the trace warm-up once; each iteration replays only
    // the churn rounds against a clone.
    let warmup = trace.config().working_set;
    let mut warm = base;
    for op in trace.ops().iter().take(warmup) {
        if let Op::Insert(key) = op {
            let _ = warm.insert(key);
        }
    }
    let churn_ops = &trace.ops()[warmup..];
    let rounds = trace.config().rounds;

    let mut g = c.benchmark_group(group);
    g.throughput(criterion::Throughput::Elements(churn_ops.len() as u64));
    g.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            || warm.clone(),
            |mut filter| {
                for op in churn_ops {
                    match op {
                        Op::Insert(key) => {
                            let _ = filter.insert(key);
                        }
                        Op::Delete(key) => {
                            filter.delete(key);
                        }
                        Op::Lookup { key, .. } => {
                            std::hint::black_box(filter.contains(key));
                        }
                    }
                }
                filter
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
    let _ = rounds;
}

fn churn_benches(c: &mut Criterion) {
    let slots = 1usize << BENCH_SLOTS_LOG2;
    let trace = ChurnTrace::generate(ChurnConfig {
        working_set: slots * 90 / 100,
        rounds: 4096,
        lookups_per_round: 2,
        positive_fraction: 0.5,
        seed: 0xc4,
    });

    bench_churn(c, "CF", CuckooFilter::new(config()).unwrap(), &trace);
    bench_churn(
        c,
        "VCF",
        VerticalCuckooFilter::new(config()).unwrap(),
        &trace,
    );
    bench_churn(c, "DVCF_r0.5", Dvcf::with_r(config(), 0.5).unwrap(), &trace);
    bench_churn(
        c,
        "DCF",
        DaryCuckooFilter::new(config(), 4).unwrap(),
        &trace,
    );

    // The insertion-intensive regime the BFS policy targets: churn at
    // 95 % occupancy, random walk vs. breadth-first eviction on the
    // same trace (Fig. 8's territory).
    let trace95 = ChurnTrace::generate(ChurnConfig {
        working_set: slots * 95 / 100,
        rounds: 4096,
        lookups_per_round: 2,
        positive_fraction: 0.5,
        seed: 0xc4,
    });
    bench_churn_group(
        c,
        "churn/load95",
        "VCF",
        VerticalCuckooFilter::new(config()).unwrap(),
        &trace95,
    );
    bench_churn_group(
        c,
        "churn/load95",
        "VCF_bfs",
        VerticalCuckooFilter::new(config().with_eviction_policy(EvictionPolicy::Bfs)).unwrap(),
        &trace95,
    );

    // Sanity outside timing: replay must produce every expected positive.
    let mut vcf = VerticalCuckooFilter::new(config()).unwrap();
    let positives = replay(&mut vcf, &trace);
    assert!(positives > 0);
}

/// The elastic filter's growth economics, in three measurements:
///
/// * `grow_2^12_to_2^22` — amortized insert cost over a full sustained
///   growth sweep (every doubling and all migration included; each insert
///   performs at most one bucket-range of drain work).
/// * `insert_quiescent` / `insert_migrating` — the same insert batch
///   against a pre-grown filter with a fully-drained chain vs one with a
///   drain in flight, isolating the per-op migration amortization that
///   the sweep averages away.
fn autoscale_benches(c: &mut Criterion) {
    let base = CuckooConfig::new(1 << 10).with_seed(42); // 2^12 slots

    // Dry run with the *same* key sequence the bench replays, to fix the
    // op count: inserts needed to grow to 2^22 slots.
    let keys = bench_keys(3 << 20, 0xa5);
    let mut probe = ScalableVcf::new(base).unwrap();
    let mut sweep_len = 0usize;
    while probe.capacity() < 1 << 22 {
        probe
            .insert(&keys[sweep_len])
            .expect("growth sweep insert failed");
        sweep_len += 1;
    }
    let sweep = &keys[..sweep_len];

    let mut g = c.benchmark_group("churn/autoscale");
    g.throughput(criterion::Throughput::Elements(sweep_len as u64));
    g.bench_function(BenchmarkId::from_parameter("grow_2^12_to_2^22"), |b| {
        b.iter_batched(
            || ScalableVcf::new(base).unwrap(),
            |mut filter| {
                for key in sweep {
                    let _ = filter.insert(key);
                }
                assert!(filter.capacity() >= 1 << 22, "sweep failed to grow");
                filter
            },
            BatchSize::LargeInput,
        );
    });

    // Pre-grow to 2^18 slots and flatten the chain completely.
    let mut warm = ScalableVcf::new(base).unwrap();
    let mut fill = 0usize;
    while warm.capacity() < 1 << 18 {
        let _ = warm.insert(&keys[fill]);
        fill += 1;
    }
    while warm.migration_backlog() > 0 {
        if warm.migrate_step(64) == 0 && warm.migration_backlog() > 0 {
            warm.grow().expect("grow to unblock a stalled drain");
        }
    }
    // One more doubling puts the whole old active segment on the drain
    // cursor: the "migrating" variant pays one bucket-range per insert.
    let mut draining = warm.clone();
    draining.grow().expect("grow to arm the drain");
    assert!(draining.migration_backlog() > 0);

    let batch = &keys[fill..fill + 4096];
    g.throughput(criterion::Throughput::Elements(batch.len() as u64));
    for (label, filter) in [("insert_quiescent", &warm), ("insert_migrating", &draining)] {
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_batched(
                || filter.clone(),
                |mut filter| {
                    for key in batch {
                        let _ = filter.insert(key);
                    }
                    filter
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = churn_benches, autoscale_benches
}
criterion_main!(benches);
