//! k-VCF candidate-count sweep (Table V): insertion and lookup cost as
//! `k` grows, in the paper's zero-relocation regime.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use vcf_bench::{bench_keys, BENCH_SLOTS_LOG2};
use vcf_core::{CuckooConfig, KVcf};
use vcf_traits::Filter;

fn config() -> CuckooConfig {
    CuckooConfig::with_total_slots(1 << BENCH_SLOTS_LOG2)
        .with_seed(42)
        .with_fingerprint_bits(16)
        .with_max_kicks(0)
}

fn kvcf_benches(c: &mut Criterion) {
    let slots = 1usize << BENCH_SLOTS_LOG2;
    let keys = bench_keys(slots, 7);

    let mut g = c.benchmark_group("kvcf/fill_no_kicks");
    g.throughput(criterion::Throughput::Elements(slots as u64));
    for k in [2usize, 4, 6, 8, 10] {
        g.bench_function(BenchmarkId::from_parameter(k), |b| {
            b.iter_batched(
                || KVcf::new(config(), k).unwrap(),
                |mut filter| {
                    for key in &keys {
                        let _ = filter.insert(key);
                    }
                    filter
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();

    let mut g = c.benchmark_group("kvcf/lookup_positive");
    for k in [2usize, 4, 6, 8, 10] {
        let mut filter = KVcf::new(config(), k).unwrap();
        for key in &keys {
            let _ = filter.insert(key);
        }
        g.bench_function(BenchmarkId::from_parameter(k), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % keys.len();
                std::hint::black_box(filter.contains(&keys[i]))
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = kvcf_benches
}
criterion_main!(benches);
