//! Raw hash-function cost and its effect on filter insertion (Table IV).
//!
//! Two groups: `hash/raw` times each function over typical key sizes;
//! `hash/filter_insert` shows how the per-hash cost propagates into CF vs
//! VCF insertion (the paper's observation that Murmur's higher cost
//! shrinks VCF's relative advantage).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use vcf_baselines::CuckooFilter;
use vcf_bench::{bench_keys, BENCH_SLOTS_LOG2};
use vcf_core::{CuckooConfig, VerticalCuckooFilter};
use vcf_hash::HashKind;
use vcf_traits::Filter;

fn raw_hashes(c: &mut Criterion) {
    for size in [8usize, 16, 64, 256] {
        let data: Vec<u8> = (0..size).map(|i| i as u8).collect();
        let mut g = c.benchmark_group(format!("hash/raw/{size}B"));
        for kind in HashKind::ALL {
            g.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
                b.iter(|| std::hint::black_box(kind.hash64(std::hint::black_box(&data))));
            });
        }
        g.finish();
    }
}

fn filter_inserts_by_hash(c: &mut Criterion) {
    let slots = 1usize << BENCH_SLOTS_LOG2;
    let n = slots * 95 / 100;
    let keys = bench_keys(n, 7);
    for kind in HashKind::ALL {
        let config = CuckooConfig::with_total_slots(slots)
            .with_seed(42)
            .with_hash(kind);
        let mut g = c.benchmark_group(format!("hash/filter_insert/{}", kind.name()));
        g.throughput(criterion::Throughput::Elements(n as u64));
        g.bench_function("CF", |b| {
            b.iter_batched(
                || CuckooFilter::new(config).unwrap(),
                |mut filter| {
                    for key in &keys {
                        let _ = filter.insert(key);
                    }
                    filter
                },
                BatchSize::LargeInput,
            );
        });
        g.bench_function("VCF", |b| {
            b.iter_batched(
                || VerticalCuckooFilter::new(config).unwrap(),
                |mut filter| {
                    for key in &keys {
                        let _ = filter.insert(key);
                    }
                    filter
                },
                BatchSize::LargeInput,
            );
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = raw_hashes, filter_inserts_by_hash
}
criterion_main!(benches);
