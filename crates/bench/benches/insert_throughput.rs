//! Per-insert cost across the filter family (Table III "IT", Fig. 7).
//!
//! Two regimes per filter: a fill from empty to 50 % (cheap, few kicks)
//! and a fill from empty to 95 % (the insertion-intensive regime where
//! VCF's extra candidates pay off).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use vcf_baselines::{BloomConfig, BloomFilter, CuckooFilter, DaryCuckooFilter};
use vcf_bench::{bench_keys, BENCH_SLOTS_LOG2};
use vcf_core::{CuckooConfig, Dvcf, VerticalCuckooFilter};
use vcf_traits::Filter;

fn config() -> CuckooConfig {
    CuckooConfig::with_total_slots(1 << BENCH_SLOTS_LOG2).with_seed(42)
}

fn bench_fill<F: Filter>(
    c: &mut Criterion,
    group: &str,
    label: &str,
    fraction: f64,
    make: impl Fn() -> F,
) {
    let slots = 1usize << BENCH_SLOTS_LOG2;
    let n = (slots as f64 * fraction) as usize;
    let keys = bench_keys(n, 7);
    let mut g = c.benchmark_group(group);
    g.throughput(criterion::Throughput::Elements(n as u64));
    g.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            &make,
            |mut filter| {
                for key in &keys {
                    let _ = filter.insert(key);
                }
                filter
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn insert_benches(c: &mut Criterion) {
    for &(group, fraction) in &[("insert/fill50", 0.5), ("insert/fill95", 0.95)] {
        bench_fill(c, group, "CF", fraction, || {
            CuckooFilter::new(config()).unwrap()
        });
        bench_fill(c, group, "VCF", fraction, || {
            VerticalCuckooFilter::new(config()).unwrap()
        });
        bench_fill(c, group, "IVCF3", fraction, || {
            VerticalCuckooFilter::with_mask_ones(config(), 3).unwrap()
        });
        bench_fill(c, group, "DVCF_r0.5", fraction, || {
            Dvcf::with_r(config(), 0.5).unwrap()
        });
        bench_fill(c, group, "DCF", fraction, || {
            DaryCuckooFilter::new(config(), 4).unwrap()
        });
        bench_fill(c, group, "BF", fraction, || {
            BloomFilter::new(BloomConfig::for_items(1 << BENCH_SLOTS_LOG2, 5e-4)).unwrap()
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = insert_benches
}
criterion_main!(benches);
