//! Per-insert cost across the filter family (Table III "IT", Fig. 7).
//!
//! Three fill regimes per filter — 50 % (cheap, few kicks), 75 %, and
//! 95 % (the insertion-intensive regime where VCF's extra candidates pay
//! off) — plus an `insert/batch` group that pits the pipelined
//! [`Filter::insert_batch`] path (hash + prefetch a window up front)
//! against the plain serial loop on the same key set. `VCF_bfs` rows run
//! the same fill under [`EvictionPolicy::Bfs`].

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use vcf_baselines::{BloomConfig, BloomFilter, CuckooFilter, DaryCuckooFilter};
use vcf_bench::{bench_keys, BATCH_SLOTS_LOG2, BENCH_SLOTS_LOG2};
use vcf_core::{CuckooConfig, Dvcf, EvictionPolicy, KVcf, VerticalCuckooFilter};
use vcf_traits::Filter;

fn config() -> CuckooConfig {
    CuckooConfig::with_total_slots(1 << BENCH_SLOTS_LOG2).with_seed(42)
}

fn bfs_config() -> CuckooConfig {
    config().with_eviction_policy(EvictionPolicy::Bfs)
}

fn bench_fill<F: Filter>(
    c: &mut Criterion,
    group: &str,
    label: &str,
    fraction: f64,
    make: impl Fn() -> F,
) {
    let slots = 1usize << BENCH_SLOTS_LOG2;
    let n = (slots as f64 * fraction) as usize;
    let keys = bench_keys(n, 7);
    let mut g = c.benchmark_group(group);
    g.throughput(criterion::Throughput::Elements(n as u64));
    g.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            &make,
            |mut filter| {
                for key in &keys {
                    let _ = filter.insert(key);
                }
                filter
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

/// Pipelined batch insert vs. the serial loop, same keys, same filter.
/// The `_loop` rows are the baseline the prefetching path must beat.
/// Runs on a [`BATCH_SLOTS_LOG2`] table (larger than LLC) at 50 % fill:
/// memory-bound direct placements, where hiding DRAM latency is the
/// whole game.
fn bench_batch<F: Filter>(c: &mut Criterion, label: &str, fraction: f64, make: impl Fn() -> F) {
    let slots = 1usize << BATCH_SLOTS_LOG2;
    let n = (slots as f64 * fraction) as usize;
    let keys = bench_keys(n, 7);
    let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
    let mut g = c.benchmark_group("insert/batch");
    g.throughput(criterion::Throughput::Elements(n as u64));
    g.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            &make,
            |mut filter| {
                std::hint::black_box(filter.insert_batch(&refs));
                filter
            },
            BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::from_parameter(format!("{label}_loop")), |b| {
        b.iter_batched(
            &make,
            |mut filter| {
                for key in &refs {
                    let _ = filter.insert(key);
                }
                filter
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

/// Table size for the `insert/bulk_build` group: `2^20` slots is big
/// enough that the sort-by-bucket sweep's sequential bucket walk beats
/// the pointer-chasing batch path, small enough to fill to 95 % many
/// times per sample.
const BULK_SLOTS_LOG2: u32 = 20;

/// Sort-by-bucket bulk construction against the pipelined batch insert
/// on the same keys at 95 % fill — the insertion-intensive regime the
/// paper targets. `VCF_batch` is the baseline [`Filter::build_from_iter`]
/// must beat (acceptance: ≥2x).
fn bench_bulk_build(c: &mut Criterion) {
    let slots = 1usize << BULK_SLOTS_LOG2;
    let n = (slots as f64 * 0.95) as usize;
    let keys = bench_keys(n, 7);
    let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
    let make = || {
        VerticalCuckooFilter::new(
            CuckooConfig::with_total_slots(1 << BULK_SLOTS_LOG2).with_seed(42),
        )
        .unwrap()
    };
    let mut g = c.benchmark_group("insert/bulk_build");
    g.throughput(criterion::Throughput::Elements(n as u64));
    g.bench_function(BenchmarkId::from_parameter("VCF_bulk"), |b| {
        b.iter_batched(
            make,
            |mut filter| {
                std::hint::black_box(filter.build_from_iter(&mut refs.iter().copied()));
                filter
            },
            BatchSize::LargeInput,
        );
    });
    g.bench_function(BenchmarkId::from_parameter("VCF_batch"), |b| {
        b.iter_batched(
            make,
            |mut filter| {
                std::hint::black_box(filter.insert_batch(&refs));
                filter
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn insert_benches(c: &mut Criterion) {
    for &(group, fraction) in &[
        ("insert/fill50", 0.5),
        ("insert/fill75", 0.75),
        ("insert/fill95", 0.95),
    ] {
        bench_fill(c, group, "CF", fraction, || {
            CuckooFilter::new(config()).unwrap()
        });
        bench_fill(c, group, "VCF", fraction, || {
            VerticalCuckooFilter::new(config()).unwrap()
        });
        bench_fill(c, group, "VCF_bfs", fraction, || {
            VerticalCuckooFilter::new(bfs_config()).unwrap()
        });
        bench_fill(c, group, "IVCF3", fraction, || {
            VerticalCuckooFilter::with_mask_ones(config(), 3).unwrap()
        });
        bench_fill(c, group, "DVCF_r0.5", fraction, || {
            Dvcf::with_r(config(), 0.5).unwrap()
        });
        bench_fill(c, group, "DCF", fraction, || {
            DaryCuckooFilter::new(config(), 4).unwrap()
        });
        bench_fill(c, group, "BF", fraction, || {
            BloomFilter::new(BloomConfig::for_items(1 << BENCH_SLOTS_LOG2, 5e-4)).unwrap()
        });
    }

    let batch_config = || CuckooConfig::with_total_slots(1 << BATCH_SLOTS_LOG2).with_seed(42);
    bench_batch(c, "CF", 0.5, move || {
        CuckooFilter::new(batch_config()).unwrap()
    });
    bench_batch(c, "VCF", 0.5, move || {
        VerticalCuckooFilter::new(batch_config()).unwrap()
    });
    bench_batch(c, "DVCF_r0.5", 0.5, move || {
        Dvcf::with_r(batch_config(), 0.5).unwrap()
    });
    bench_batch(c, "KVCF_k4", 0.5, move || {
        KVcf::new(batch_config(), 4).unwrap()
    });

    bench_bulk_build(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = insert_benches
}
criterion_main!(benches);
