//! The hot/cold tiered lifecycle: what frozen generations cost at
//! lookup time, and what a rotation costs to build.
//!
//! * `tiered/lookup/hot_only` vs `tiered/lookup/hot_plus_2frozen` —
//!   the same mixed batch probed against a filter with no frozen
//!   generations and one carrying two, isolating the per-generation
//!   fan-out cost of `contains_batch`.
//! * `tiered/lookup/fuse8_positive` vs `tiered/lookup/vcf_positive` —
//!   the acceptance-bar comparison: a positive probe of the frozen
//!   fuse tier against the VCF's single-probe positive lookup, on the
//!   same stored population.
//! * `tiered/rotate/build_2^20` — the full drain of one rotation at
//!   2^20 items: bucket collection, peeling construction and install.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use vcf_bench::{bench_keys, BENCH_SLOTS_LOG2, LOADED_FRACTION};
use vcf_core::{CuckooConfig, ScalableVcf, TieredFilter, VerticalCuckooFilter};
use vcf_sketches::BinaryFuse8;
use vcf_traits::{Filter, LifecycleFilter};

type Tiered = TieredFilter<BinaryFuse8>;

fn config() -> CuckooConfig {
    CuckooConfig::with_total_slots(1 << BENCH_SLOTS_LOG2).with_seed(42)
}

/// Keys per generation: the loaded fraction of one hot tier.
fn generation_len() -> usize {
    ((1usize << BENCH_SLOTS_LOG2) as f64 * LOADED_FRACTION) as usize
}

fn drain(filter: &mut Tiered) {
    while filter.rotation_backlog() > 0 {
        filter.rotate_step(usize::MAX);
    }
}

/// A tiered filter with `generations` frozen generations plus a loaded
/// hot tier, and the key population of every tier.
fn tiered_with_generations(generations: usize) -> (Tiered, Vec<Vec<u8>>) {
    let mut filter = Tiered::new(config()).expect("bench config must be valid");
    let per_gen = generation_len();
    let keys = bench_keys(per_gen * (generations + 1), 0x7e);
    for (round, chunk) in keys.chunks(per_gen).enumerate() {
        for key in chunk {
            filter.insert(key).expect("bench fill must fit");
        }
        if round < generations {
            assert!(filter.rotate(), "rotation must start");
            drain(&mut filter);
        }
    }
    assert_eq!(filter.generations(), generations);
    (filter, keys)
}

/// Mixed probe batch: half stored keys (spread across every tier), half
/// absent — the steady-state read mix a tiered deployment serves.
fn probe_batch(keys: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let total = 4096usize;
    let stride = (keys.len() / (total / 2)).max(1);
    let mut probes: Vec<Vec<u8>> = keys
        .iter()
        .step_by(stride)
        .take(total / 2)
        .cloned()
        .collect();
    let absent = bench_keys(total - probes.len(), 0xab5e);
    probes.extend(absent);
    probes
}

fn lookup_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("tiered/lookup");

    for (label, generations) in [("hot_only", 0usize), ("hot_plus_2frozen", 2)] {
        let (filter, keys) = tiered_with_generations(generations);
        let probes = probe_batch(&keys);
        let refs: Vec<&[u8]> = probes.iter().map(Vec::as_slice).collect();
        g.throughput(criterion::Throughput::Elements(refs.len() as u64));
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| std::hint::black_box(filter.contains_batch(&refs)));
        });
    }

    // Positive-lookup latency, frozen fuse vs VCF single probe, on the
    // same stored population at the same load.
    let per_gen = generation_len();
    let keys = bench_keys(per_gen, 0x7e);
    let mut vcf = VerticalCuckooFilter::new(config()).expect("bench config must be valid");
    let mut source = ScalableVcf::new(config()).expect("bench config must be valid");
    for key in &keys {
        vcf.insert(key).expect("bench fill must fit");
        source.insert(key).expect("bench fill must fit");
    }
    let canonical: Vec<u64> = source.canonical_keys().collect();
    let fuse = BinaryFuse8::from_keys(&canonical, 42).expect("fuse build must converge");

    g.throughput(criterion::Throughput::Elements(canonical.len() as u64));
    g.bench_function(BenchmarkId::from_parameter("fuse8_positive"), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &key in &canonical {
                hits += usize::from(fuse.contains_key(key));
            }
            std::hint::black_box(hits)
        });
    });
    g.throughput(criterion::Throughput::Elements(keys.len() as u64));
    g.bench_function(BenchmarkId::from_parameter("vcf_positive"), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for key in &keys {
                hits += usize::from(vcf.contains(key));
            }
            std::hint::black_box(hits)
        });
    });
    g.finish();
}

/// One full rotation at 2^20 items: collection of every bucket's
/// canonical keys, the peeling construction, and the install. The fill
/// and the `rotate()` arming (fresh hot allocation) happen in setup;
/// only the drain is timed.
fn rotate_benches(c: &mut Criterion) {
    let items = 1usize << 20;
    let keys = bench_keys(items, 0xf0);
    let config = CuckooConfig::with_total_slots(1 << 21).with_seed(42);

    let mut g = c.benchmark_group("tiered/rotate");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(items as u64));
    g.bench_function(BenchmarkId::from_parameter("build_2^20"), |b| {
        b.iter_batched(
            || {
                let mut filter =
                    TieredFilter::<BinaryFuse8>::new(config).expect("bench config must be valid");
                for key in &keys {
                    filter.insert(key).expect("bench fill must fit");
                }
                assert!(filter.rotate(), "rotation must start");
                filter
            },
            |mut filter| {
                drain(&mut filter);
                assert_eq!(filter.generations(), 1);
                filter
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = lookup_benches, rotate_benches
}
criterion_main!(benches);
