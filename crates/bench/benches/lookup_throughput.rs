//! Per-lookup cost: positive hits and negative (alien) probes, at 90 %
//! load (Table III "QT", Fig. 6), plus the batched-lookup comparison at
//! 95 % load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vcf_baselines::{
    BloomConfig, BloomFilter, CuckooFilter, DaryCuckooFilter, QuotientFilter, VacuumFilter,
};
use vcf_bench::{bench_keys, BENCH_SLOTS_LOG2, LOADED_FRACTION};
use vcf_core::{CuckooConfig, Dvcf, KVcf, KernelKind, VerticalCuckooFilter};
use vcf_traits::Filter;

fn config() -> CuckooConfig {
    CuckooConfig::with_total_slots(1 << BENCH_SLOTS_LOG2).with_seed(42)
}

fn loaded<F: Filter>(mut filter: F, keys: &[Vec<u8>]) -> F {
    for key in keys {
        let _ = filter.insert(key);
    }
    filter
}

fn bench_lookups<F: Filter>(c: &mut Criterion, label: &str, filter: F) {
    let slots = 1usize << BENCH_SLOTS_LOG2;
    let n = (slots as f64 * LOADED_FRACTION) as usize;
    let keys = bench_keys(n, 7);
    let aliens = bench_keys(n, 0xa11e4);
    let filter = loaded(filter, &keys);

    let mut g = c.benchmark_group("lookup/positive");
    g.bench_function(BenchmarkId::from_parameter(label), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % n;
            std::hint::black_box(filter.contains(&keys[i]))
        });
    });
    g.finish();

    let mut g = c.benchmark_group("lookup/negative");
    g.bench_function(BenchmarkId::from_parameter(label), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % n;
            std::hint::black_box(filter.contains(&aliens[i]))
        });
    });
    g.finish();
}

/// Slot count for the batch benches. 2^24 slots make a ~32 MiB
/// fingerprint table — past the cache hierarchy — so the early-touch
/// pass in `contains_batch` has real misses to overlap. The
/// single-lookup benches above keep the smaller, cache-resident table.
const BATCH_SLOTS_LOG2: u32 = 24;

fn batch_config() -> CuckooConfig {
    CuckooConfig::with_total_slots(1 << BATCH_SLOTS_LOG2).with_seed(42)
}

/// Batched vs one-at-a-time lookups over a 50/50 hit/miss mix at 95 %
/// load: `lookup/batch` drives `contains_batch`, `lookup/batch_loop` the
/// same batch through single `contains` calls.
fn bench_batch<F: Filter>(c: &mut Criterion, label: &str, filter: F) {
    const BATCH: usize = 256;
    let slots = 1usize << BATCH_SLOTS_LOG2;
    let n = (slots as f64 * 0.95) as usize;
    let keys = bench_keys(n, 7);
    let aliens = bench_keys(n, 0xa11e4);
    let filter = loaded(filter, &keys);

    // Interleave hits and misses so each batch is a 50/50 mix.
    let mixed: Vec<&[u8]> = keys
        .iter()
        .zip(aliens.iter())
        .flat_map(|(hit, miss)| [hit.as_slice(), miss.as_slice()])
        .collect();
    let batches: Vec<&[&[u8]]> = mixed.chunks_exact(BATCH).collect();

    let mut g = c.benchmark_group("lookup/batch");
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function(BenchmarkId::from_parameter(label), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % batches.len();
            std::hint::black_box(filter.contains_batch(batches[i]))
        });
    });
    g.finish();

    let mut g = c.benchmark_group("lookup/batch_loop");
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function(BenchmarkId::from_parameter(label), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % batches.len();
            let mut hits = 0usize;
            for item in batches[i] {
                hits += usize::from(filter.contains(item));
            }
            std::hint::black_box(hits)
        });
    });
    g.finish();
}

/// The batched-lookup workload with the bucket kernel pinned per row:
/// `VCF_swar` forces the portable fallback, while a `VCF_avx2` /
/// `VCF_neon` row appears only where runtime detection grants the
/// vector kernel — the pair isolates the SIMD speedup on identical
/// tables.
fn bench_batch_simd(c: &mut Criterion) {
    const BATCH: usize = 256;
    let slots = 1usize << BATCH_SLOTS_LOG2;
    let n = (slots as f64 * 0.95) as usize;
    let keys = bench_keys(n, 7);
    let aliens = bench_keys(n, 0xa11e4);
    let mut filter = loaded(VerticalCuckooFilter::new(batch_config()).unwrap(), &keys);

    let mixed: Vec<&[u8]> = keys
        .iter()
        .zip(aliens.iter())
        .flat_map(|(hit, miss)| [hit.as_slice(), miss.as_slice()])
        .collect();
    let batches: Vec<&[&[u8]]> = mixed.chunks_exact(BATCH).collect();

    for kind in [KernelKind::Swar, KernelKind::Avx2, KernelKind::Neon] {
        if filter.set_kernel(kind) != kind {
            continue;
        }
        let mut g = c.benchmark_group("lookup/batch_simd");
        g.throughput(Throughput::Elements(BATCH as u64));
        g.bench_function(BenchmarkId::from_parameter(format!("VCF_{kind}")), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % batches.len();
                std::hint::black_box(filter.contains_batch(batches[i]))
            });
        });
        g.finish();
    }
}

fn lookup_benches(c: &mut Criterion) {
    bench_lookups(c, "CF", CuckooFilter::new(config()).unwrap());
    bench_lookups(c, "VCF", VerticalCuckooFilter::new(config()).unwrap());
    bench_lookups(
        c,
        "IVCF3",
        VerticalCuckooFilter::with_mask_ones(config(), 3).unwrap(),
    );
    bench_lookups(c, "DVCF_r0.5", Dvcf::with_r(config(), 0.5).unwrap());
    bench_lookups(c, "DCF", DaryCuckooFilter::new(config(), 4).unwrap());
    bench_lookups(
        c,
        "8-VCF",
        KVcf::new(config().with_fingerprint_bits(16), 8).unwrap(),
    );
    bench_lookups(
        c,
        "BF",
        BloomFilter::new(BloomConfig::for_items(1 << BENCH_SLOTS_LOG2, 5e-4)).unwrap(),
    );
    bench_lookups(c, "QF", QuotientFilter::new(BENCH_SLOTS_LOG2, 13).unwrap());
    bench_lookups(
        c,
        "VF",
        VacuumFilter::new((1 << (BENCH_SLOTS_LOG2 - 2)) + 192, 64, 4, 14, 500, 42).unwrap(),
    );

    bench_batch(c, "CF", CuckooFilter::new(batch_config()).unwrap());
    bench_batch(c, "VCF", VerticalCuckooFilter::new(batch_config()).unwrap());
    bench_batch(c, "DVCF_r0.5", Dvcf::with_r(batch_config(), 0.5).unwrap());
    bench_batch(c, "DCF", DaryCuckooFilter::new(batch_config(), 4).unwrap());
    bench_batch(
        c,
        "8-VCF",
        KVcf::new(batch_config().with_fingerprint_bits(16), 8).unwrap(),
    );
    bench_batch(
        c,
        "ShardedVCF",
        vcf_core::ShardedVcf::new(batch_config(), 3).unwrap(),
    );

    bench_batch_simd(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = lookup_benches
}
criterion_main!(benches);
