//! Per-delete cost at high load across the deletable structures.
//!
//! Deletion is the operation Bloom filters cannot do at all and the reason
//! the cuckoo family exists; this bench shows it costs roughly the same as
//! a positive lookup for every cuckoo variant.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use vcf_baselines::{BloomConfig, CountingBloomFilter, CuckooFilter, DaryCuckooFilter};
use vcf_bench::{bench_keys, BENCH_SLOTS_LOG2, LOADED_FRACTION};
use vcf_core::{CuckooConfig, Dvcf, KVcf, VerticalCuckooFilter};
use vcf_traits::Filter;

fn config() -> CuckooConfig {
    CuckooConfig::with_total_slots(1 << BENCH_SLOTS_LOG2).with_seed(42)
}

fn bench_delete<F: Filter + Clone>(c: &mut Criterion, label: &str, filter: F) {
    let slots = 1usize << BENCH_SLOTS_LOG2;
    let n = (slots as f64 * LOADED_FRACTION) as usize;
    let keys = bench_keys(n, 7);
    let mut loaded = filter;
    for key in &keys {
        let _ = loaded.insert(key);
    }

    let mut g = c.benchmark_group("delete/loaded");
    g.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_batched(
            || loaded.clone(),
            |mut filter| {
                // Delete a block of keys; batch keeps setup out of timing.
                for key in keys.iter().take(1024) {
                    std::hint::black_box(filter.delete(key));
                }
                filter
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn delete_benches(c: &mut Criterion) {
    bench_delete(c, "CF", CuckooFilter::new(config()).unwrap());
    bench_delete(c, "VCF", VerticalCuckooFilter::new(config()).unwrap());
    bench_delete(c, "DVCF_r0.5", Dvcf::with_r(config(), 0.5).unwrap());
    bench_delete(c, "DCF", DaryCuckooFilter::new(config(), 4).unwrap());
    bench_delete(
        c,
        "8-VCF",
        KVcf::new(config().with_fingerprint_bits(16), 8).unwrap(),
    );
    bench_delete(
        c,
        "CBF",
        CountingBloomFilter::new(BloomConfig::for_items(1 << BENCH_SLOTS_LOG2, 5e-4)).unwrap(),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = delete_benches
}
criterion_main!(benches);
