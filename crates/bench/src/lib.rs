//! Shared helpers for the Criterion benchmark suite.
//!
//! The benches complement the `vcf-repro` harness: the harness regenerates
//! the paper's tables and figures end-to-end (whole fills, averaged wall
//! clock), while these Criterion benches measure individual operations
//! with statistical rigor and concrete (non-`dyn`) types, one bench target
//! per table/figure family:
//!
//! * `insert_throughput` — Table III "IT" / Fig. 7 per-insert cost.
//! * `lookup_throughput` — Table III "QT" / Fig. 6 positive & negative.
//! * `delete_throughput` — deletion cost across the family.
//! * `hash_functions`   — Table IV's FNV / Murmur3 / DJB2 comparison.
//! * `eviction_cost`    — Fig. 8's kick cascades near full load.
//! * `kvcf_scaling`     — Table V's k sweep.
//! * `churn_online`     — the paper's motivating online insert/delete mix.
//!
//! The [`summary`] module (and its `bench_summary` binary) condenses the
//! harness's report lines into the committed `BENCH_insert.json`.

#![forbid(unsafe_code)]

pub mod summary;

use vcf_workloads::KeyStream;

/// Default bench filter size: `2^14` slots keeps each iteration fast while
/// still being large enough to exercise eviction cascades.
pub const BENCH_SLOTS_LOG2: u32 = 14;

/// Generates `n` deterministic unique keys for benchmarking.
pub fn bench_keys(n: usize, seed: u64) -> Vec<Vec<u8>> {
    KeyStream::new(seed).take_vec(n)
}

/// Fill fraction used for "loaded filter" benches (high enough that
/// cuckoo relocations matter, low enough that every insert succeeds).
pub const LOADED_FRACTION: f64 = 0.90;

/// Table size for the `insert/batch` group: `2^23` slots (~12 MB of
/// fingerprints) so bucket reads miss the last-level cache — the regime
/// software prefetching targets. At [`BENCH_SLOTS_LOG2`] the whole
/// table is cache-resident and prefetch hints cannot help.
pub const BATCH_SLOTS_LOG2: u32 = 23;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_and_unique() {
        let a = bench_keys(1000, 1);
        let b = bench_keys(1000, 1);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 1000);
    }
}
