//! Parses the benchmark harness's one-line reports into a committable
//! `BENCH_insert.json` summary (benchmark id → median ns per iteration).
//!
//! The harness prints one line per benchmark:
//!
//! ```text
//! insert/fill95/VCF        time: [12.3456 ms] thrpt: [1.2602 Melem/s]
//! ```
//!
//! [`parse_report`] extracts `(id, median_ns)` pairs from such output and
//! [`to_json`] renders them as a stable, sorted, pretty-printed JSON
//! object — hand-rolled because the offline workspace carries no serde.

/// One parsed benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchLine {
    /// Full benchmark id, e.g. `insert/fill95/VCF`.
    pub id: String,
    /// Median wall-clock time per iteration, in nanoseconds.
    pub median_ns: f64,
}

/// Extracts every `… time: [<value> <unit>]` line from harness output.
///
/// Lines that don't match the report shape (compiler noise, test output,
/// blank lines) are ignored. The id is whatever precedes ` time:`, with
/// the alignment padding trimmed.
#[must_use]
pub fn parse_report(output: &str) -> Vec<BenchLine> {
    let mut lines = Vec::new();
    for line in output.lines() {
        let Some((id_part, rest)) = line.split_once(" time: [") else {
            continue;
        };
        let Some((measure, _)) = rest.split_once(']') else {
            continue;
        };
        let Some(ns) = parse_time_ns(measure) else {
            continue;
        };
        let id = id_part.trim();
        if id.is_empty() {
            continue;
        }
        lines.push(BenchLine {
            id: id.to_owned(),
            median_ns: ns,
        });
    }
    lines
}

/// Parses `"12.3456 ms"` (or ns/µs/us/s) into nanoseconds.
fn parse_time_ns(measure: &str) -> Option<f64> {
    let mut parts = measure.split_whitespace();
    let value: f64 = parts.next()?.parse().ok()?;
    let scale = match parts.next()? {
        "ns" => 1.0,
        "µs" | "us" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        _ => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some(value * scale)
}

/// Renders results as a sorted JSON object, `{"id": median_ns, ...}`.
///
/// Keys are sorted so the committed file diffs cleanly run-to-run; later
/// duplicates of an id win (a rerun supersedes its earlier line).
#[must_use]
pub fn to_json(results: &[BenchLine]) -> String {
    let mut map: Vec<(&str, f64)> = Vec::new();
    for line in results {
        match map.iter_mut().find(|(id, _)| *id == line.id) {
            Some(entry) => entry.1 = line.median_ns,
            None => map.push((&line.id, line.median_ns)),
        }
    }
    map.sort_by(|a, b| a.0.cmp(b.0));

    let mut out = String::from("{\n");
    for (i, (id, ns)) in map.iter().enumerate() {
        use std::fmt::Write as _;
        let comma = if i + 1 < map.len() { "," } else { "" };
        let _ = writeln!(out, "  {}: {ns:.1}{comma}", json_string(id));
    }
    out.push_str("}\n");
    out
}

/// Minimal JSON string escaping (bench ids are plain ASCII, but be safe).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_harness_lines_and_skips_noise() {
        let output = "\
   Compiling vcf-bench v0.1.0\n\
insert/fill50/CF                       time: [1.2345 ms] thrpt: [6.6363 Melem/s]\n\
insert/fill95/VCF_bfs                  time: [987.6540 µs]\n\
random chatter without a time bracket\n\
insert/batch/KVCF_k4_loop              time: [2.0000 s]\n";
        let lines = parse_report(output);
        assert_eq!(
            lines,
            vec![
                BenchLine {
                    id: "insert/fill50/CF".into(),
                    median_ns: 1.2345e6
                },
                BenchLine {
                    id: "insert/fill95/VCF_bfs".into(),
                    median_ns: 987.654e3
                },
                BenchLine {
                    id: "insert/batch/KVCF_k4_loop".into(),
                    median_ns: 2e9
                },
            ]
        );
    }

    #[test]
    fn parses_every_unit() {
        for (text, ns) in [
            ("x time: [5.0000 ns]", 5.0),
            ("x time: [5.0000 µs]", 5e3),
            ("x time: [5.0000 us]", 5e3),
            ("x time: [5.0000 ms]", 5e6),
            ("x time: [5.0000 s]", 5e9),
        ] {
            let lines = parse_report(text);
            assert_eq!(lines.len(), 1, "failed on {text:?}");
            assert!((lines[0].median_ns - ns).abs() < 1e-9);
        }
    }

    #[test]
    fn json_is_sorted_and_deduplicated() {
        let lines = vec![
            BenchLine {
                id: "b/second".into(),
                median_ns: 2.0,
            },
            BenchLine {
                id: "a/first".into(),
                median_ns: 1.0,
            },
            BenchLine {
                id: "b/second".into(),
                median_ns: 3.0,
            },
        ];
        let json = to_json(&lines);
        assert_eq!(json, "{\n  \"a/first\": 1.0,\n  \"b/second\": 3.0\n}\n");
    }

    #[test]
    fn empty_report_yields_empty_object() {
        assert_eq!(to_json(&parse_report("no benches here")), "{\n}\n");
    }

    #[test]
    fn escapes_hostile_ids() {
        let lines = vec![BenchLine {
            id: "quote\"back\\slash".into(),
            median_ns: 1.0,
        }];
        assert_eq!(to_json(&lines), "{\n  \"quote\\\"back\\\\slash\": 1.0\n}\n");
    }
}
