//! Turns benchmark harness output into a committable JSON summary.
//!
//! Usage:
//!
//! ```text
//! cargo bench -p vcf-bench --bench insert_throughput | \
//!     cargo run -p vcf-bench --bin bench_summary -- --out BENCH_insert.json
//! ```
//!
//! Reads harness output from stdin (or from files given as positional
//! arguments), keeps lines whose benchmark id starts with one of the
//! `--prefix` filters (default: `insert/`), and writes the id → median-ns
//! map as sorted JSON to `--out` (default: stdout).

use std::io::Read;
use std::process::ExitCode;

use vcf_bench::summary::{parse_report, to_json};

fn main() -> ExitCode {
    let mut prefixes: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--prefix" => match argv.next() {
                Some(p) => prefixes.push(p),
                None => return usage("--prefix needs a value"),
            },
            "--out" => match argv.next() {
                Some(p) => out_path = Some(p),
                None => return usage("--out needs a value"),
            },
            "--help" | "-h" => return usage(""),
            _ if arg.starts_with('-') => return usage(&format!("unknown flag {arg}")),
            _ => inputs.push(arg),
        }
    }
    if prefixes.is_empty() {
        prefixes.push("insert/".to_owned());
    }

    let mut raw = String::new();
    if inputs.is_empty() {
        if let Err(err) = std::io::stdin().read_to_string(&mut raw) {
            eprintln!("bench_summary: reading stdin: {err}");
            return ExitCode::FAILURE;
        }
    } else {
        for path in &inputs {
            match std::fs::read_to_string(path) {
                Ok(text) => raw.push_str(&text),
                Err(err) => {
                    eprintln!("bench_summary: reading {path}: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let results: Vec<_> = parse_report(&raw)
        .into_iter()
        .filter(|line| prefixes.iter().any(|p| line.id.starts_with(p.as_str())))
        .collect();
    if results.is_empty() {
        eprintln!(
            "bench_summary: no benchmark lines matched prefixes {prefixes:?}; \
             was the harness output piped in?"
        );
        return ExitCode::FAILURE;
    }

    let json = to_json(&results);
    match out_path {
        Some(path) => {
            if let Err(err) = std::fs::write(&path, json) {
                eprintln!("bench_summary: writing {path}: {err}");
                return ExitCode::FAILURE;
            }
            eprintln!("bench_summary: wrote {} entries to {path}", results.len());
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("bench_summary: {problem}");
    }
    eprintln!(
        "usage: bench_summary [--prefix <id-prefix>]... [--out <file>] [input-file]...\n\
         Reads benchmark harness output (stdin by default) and writes an\n\
         id -> median-ns JSON map. Default prefix filter: insert/"
    );
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
