//! Deterministic wire-traffic generation and the benchmark sweep.
//!
//! Traces are generated *before* the clock starts, per connection, from
//! the run seed alone — so a run is reproducible, the server cost being
//! measured is frames (not key generation), and a capture of the same
//! trace can be replayed against an in-process oracle for differential
//! checking.
//!
//! Key ids embed the connection index in the top byte, so concurrent
//! connections never operate on each other's keys and per-connection
//! live/dead bookkeeping stays exact even under interleaving.

use std::io;
use std::time::Instant;

use vcf_hash::{fnv1a_64, mix64, SplitMix64};
use vcf_workloads::{ChurnConfig, ChurnTrace, HiggsDataset, Op, Zipf};

use crate::codec::{Client, Endpoint};
use crate::protocol::OpCode;

/// Which traffic shape a run generates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Uniform-random lookups over the live window.
    Uniform,
    /// Zipf-distributed lookups (skew `s`) over the live window.
    Zipf {
        /// Zipf skew parameter.
        s: f64,
    },
    /// The paper's insert/delete churn trace, packed into frames.
    Churn,
    /// HIGGS-derived keys (feature records hashed to 8 bytes).
    Higgs,
}

impl WorkloadKind {
    /// Parses a CLI name: `uniform`, `zipf[:s]`, `churn`, `higgs`.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown names or a bad skew value.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "uniform" => Ok(WorkloadKind::Uniform),
            "churn" => Ok(WorkloadKind::Churn),
            "higgs" => Ok(WorkloadKind::Higgs),
            "zipf" => Ok(WorkloadKind::Zipf { s: 0.99 }),
            other => match other.strip_prefix("zipf:") {
                Some(skew) => skew
                    .parse::<f64>()
                    .map(|s| WorkloadKind::Zipf { s })
                    .map_err(|e| format!("bad zipf skew {skew:?}: {e}")),
                None => Err(format!(
                    "workload {other:?} is not uniform|zipf[:s]|churn|higgs"
                )),
            },
        }
    }
}

/// Parameters of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server to connect to.
    pub endpoint: Endpoint,
    /// Concurrent connections (each on its own thread).
    pub connections: usize,
    /// Keys per data frame.
    pub batch: usize,
    /// Total data-plane ops across all connections (rounded up to whole
    /// frames).
    pub total_ops: usize,
    /// Fraction of frames that are lookups (the rest alternate between
    /// inserts and window-trimming deletes).
    pub read_fraction: f64,
    /// Per-connection live-window cap; deletes kick in above it.
    pub keyspace: usize,
    /// Traffic shape.
    pub workload: WorkloadKind,
    /// Run seed; everything derives from it deterministically.
    pub seed: u64,
    /// Keep each connection's frames and reply bitmaps for differential
    /// checking (costs memory; off for throughput runs).
    pub capture: bool,
}

impl LoadgenConfig {
    /// A small mixed run against `endpoint`: 2 connections, 256-key
    /// frames, 50% reads.
    #[must_use]
    pub fn new(endpoint: Endpoint) -> Self {
        Self {
            endpoint,
            connections: 2,
            batch: 256,
            total_ops: 100_000,
            read_fraction: 0.5,
            keyspace: 1 << 16,
            workload: WorkloadKind::Uniform,
            seed: 0x10ad_6e40,
            capture: false,
        }
    }
}

/// One connection's captured traffic: the frames sent and the outcome
/// bitmap of each reply, in order.
#[derive(Debug, Clone)]
pub struct ConnCapture {
    /// `(opcode, keys)` per data frame sent.
    pub frames: Vec<(OpCode, Vec<u64>)>,
    /// The reply's outcome bitmap per frame.
    pub bitmaps: Vec<Vec<u8>>,
}

/// What a run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Wall-clock seconds from first frame to last reply.
    pub elapsed_secs: f64,
    /// Data-plane keys executed.
    pub data_ops: u64,
    /// `data_ops / elapsed_secs`.
    pub ops_per_sec: f64,
    /// Per-connection captures (empty unless `capture`).
    pub captures: Vec<ConnCapture>,
}

/// Builds connection `conn`'s deterministic frame sequence.
#[must_use]
pub fn connection_trace(config: &LoadgenConfig, conn: usize) -> Vec<(OpCode, Vec<u64>)> {
    let trace = match config.workload {
        WorkloadKind::Churn => churn_trace(config, conn),
        WorkloadKind::Higgs => higgs_trace(config, conn),
        WorkloadKind::Uniform | WorkloadKind::Zipf { .. } => mixed_trace(config, conn),
    };
    // The churn/HIGGS generators derive their op counts from workload
    // structure (rounds, dataset splits) and overshoot; hold every
    // workload to the `total_ops` contract, whole frames kept.
    let per_conn = config.total_ops.div_ceil(config.connections.max(1));
    let mut kept = 0usize;
    let mut out = trace;
    out.retain(|(_, keys)| {
        let take = kept < per_conn;
        kept += keys.len();
        take
    });
    out
}

/// A connection-unique 8-byte key id: connection index in the top byte,
/// the rest a mixed counter.
fn conn_key(conn: usize, counter: u64) -> u64 {
    let body = mix64(counter.wrapping_add(0x9e37_79b9_7f4a_7c15)) >> 8;
    ((conn as u64) << 56) | body
}

fn unit_float(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform/Zipf mixed traffic: lookup frames sample the live window,
/// insert frames mint fresh keys, delete frames trim the oldest keys
/// once the window exceeds `keyspace`.
fn mixed_trace(config: &LoadgenConfig, conn: usize) -> Vec<(OpCode, Vec<u64>)> {
    let per_conn = config.total_ops.div_ceil(config.connections.max(1));
    let frames = per_conn.div_ceil(config.batch.max(1)).max(1);
    let mut rng = SplitMix64::new(config.seed ^ mix64(conn as u64 + 1));
    let mut zipf = match config.workload {
        WorkloadKind::Zipf { s } => Zipf::new(config.keyspace.max(2), s, config.seed ^ 0x21f).ok(),
        _ => None,
    };
    let mut live: Vec<u64> = Vec::new();
    let mut window_start = 0usize; // live[window_start..] is the current window
    let mut counter = 0u64;
    let mut out = Vec::with_capacity(frames);
    for _ in 0..frames {
        let window = live.len() - window_start;
        let want_read = unit_float(&mut rng) < config.read_fraction && window > 0;
        if want_read {
            let keys: Vec<u64> = (0..config.batch)
                .map(|_| {
                    let idx = match zipf.as_mut() {
                        Some(z) => z.sample() % window,
                        None => rng.next_below(window as u64) as usize,
                    };
                    live.get(window_start + idx).copied().unwrap_or(0)
                })
                .collect();
            out.push((OpCode::Lookup, keys));
        } else if window >= config.keyspace.max(config.batch) {
            let keys: Vec<u64> = live
                .get(window_start..window_start + config.batch)
                .map(<[u64]>::to_vec)
                .unwrap_or_default();
            window_start += keys.len();
            out.push((OpCode::Delete, keys));
        } else {
            let keys: Vec<u64> = (0..config.batch)
                .map(|_| {
                    counter += 1;
                    conn_key(conn, counter)
                })
                .collect();
            live.extend_from_slice(&keys);
            out.push((OpCode::Insert, keys));
        }
    }
    out
}

/// The paper's churn trace, re-keyed per connection and packed into
/// same-opcode frames of at most `batch` keys.
fn churn_trace(config: &LoadgenConfig, conn: usize) -> Vec<(OpCode, Vec<u64>)> {
    let per_conn = config.total_ops.div_ceil(config.connections.max(1));
    let trace = ChurnTrace::generate(ChurnConfig {
        working_set: config.keyspace.min(per_conn.max(16)),
        rounds: 4,
        lookups_per_round: per_conn / 4,
        positive_fraction: config.read_fraction.clamp(0.0, 1.0),
        seed: config.seed ^ mix64(conn as u64 + 0x6368),
    });
    let rekey = |key: &[u8]| ((conn as u64) << 56) | (fnv1a_64(key) >> 8);
    let mut out: Vec<(OpCode, Vec<u64>)> = Vec::new();
    let mut pending: Option<(OpCode, Vec<u64>)> = None;
    for op in trace.iter() {
        let (opcode, key) = match op {
            Op::Insert(key) => (OpCode::Insert, rekey(key)),
            Op::Delete(key) => (OpCode::Delete, rekey(key)),
            Op::Lookup { key, .. } => (OpCode::Lookup, rekey(key)),
        };
        match &mut pending {
            Some((code, keys)) if *code == opcode && keys.len() < config.batch => keys.push(key),
            _ => {
                out.extend(pending.take());
                pending = Some((opcode, vec![key]));
            }
        }
    }
    out.extend(pending);
    out
}

/// HIGGS-derived traffic: insert the stored split, then look up a mix
/// of stored and alien records.
fn higgs_trace(config: &LoadgenConfig, conn: usize) -> Vec<(OpCode, Vec<u64>)> {
    let per_conn = config.total_ops.div_ceil(config.connections.max(1));
    let dataset = HiggsDataset::generate(per_conn.max(16), config.seed ^ mix64(conn as u64));
    let stored_n = (dataset.len() / 2).max(1);
    let (stored, alien) = dataset.split(stored_n);
    let rekey = |key: &[u8]| ((conn as u64) << 56) | (fnv1a_64(key) >> 8);
    let stored_keys: Vec<u64> = stored.iter().map(|k| rekey(k)).collect();
    let mut out: Vec<(OpCode, Vec<u64>)> = stored_keys
        .chunks(config.batch.max(1))
        .map(|chunk| (OpCode::Insert, chunk.to_vec()))
        .collect();
    let mut rng = SplitMix64::new(config.seed ^ 0x0048_4947_4753);
    let lookups: Vec<u64> = (0..stored_n)
        .map(|_| {
            if unit_float(&mut rng) < config.read_fraction {
                let i = rng.next_below(stored_keys.len() as u64) as usize;
                stored_keys.get(i).copied().unwrap_or(0)
            } else {
                let i = rng.next_below(alien.len().max(1) as u64) as usize;
                alien.get(i).map_or(1, |k| rekey(k))
            }
        })
        .collect();
    out.extend(
        lookups
            .chunks(config.batch.max(1))
            .map(|chunk| (OpCode::Lookup, chunk.to_vec())),
    );
    out
}

/// Runs the configured traffic against a live server and reports
/// throughput (plus captures when requested).
///
/// # Errors
///
/// Any connection's transport or protocol error aborts the run.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let traces: Vec<Vec<(OpCode, Vec<u64>)>> = (0..config.connections.max(1))
        .map(|conn| connection_trace(config, conn))
        .collect();
    let data_ops: u64 = traces
        .iter()
        .flatten()
        .map(|(_, keys)| keys.len() as u64)
        .sum();

    let started = Instant::now();
    let mut joins = Vec::new();
    for trace in traces {
        let endpoint = config.endpoint.clone();
        let capture = config.capture;
        joins.push(std::thread::spawn(move || -> io::Result<ConnCapture> {
            let mut client = Client::connect(&endpoint)?;
            let mut bitmaps = Vec::new();
            for (opcode, keys) in &trace {
                let reply = client.data_op(*opcode, keys)?;
                if capture {
                    bitmaps.push(reply.payload);
                }
            }
            Ok(ConnCapture {
                frames: if capture { trace } else { Vec::new() },
                bitmaps,
            })
        }));
    }
    let mut captures = Vec::new();
    for join in joins {
        let capture = join
            .join()
            .map_err(|_| io::Error::other("loadgen thread panicked"))??;
        if config.capture {
            captures.push(capture);
        }
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    Ok(LoadgenReport {
        elapsed_secs: elapsed,
        data_ops,
        ops_per_sec: data_ops as f64 / elapsed,
        captures,
    })
}

/// One benchmark sweep point.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Server worker threads.
    pub workers: usize,
    /// Keys per frame.
    pub batch: usize,
    /// Measured server-side throughput.
    pub ops_per_sec: f64,
}

/// Renders sweep points as the repo's flat `BENCH_*.json` map
/// (`id → ops/sec`, keys sorted).
#[must_use]
pub fn sweep_json(transport: &str, points: &[SweepPoint]) -> String {
    let mut entries: Vec<(String, f64)> = points
        .iter()
        .map(|p| {
            (
                format!("server/{transport}/mixed/t{}/b{}", p.workers, p.batch),
                p.ops_per_sec,
            )
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(out, "  \"{key}\": {value:.1}{comma}");
    }
    out.push('}');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(workload: WorkloadKind) -> LoadgenConfig {
        let mut config = LoadgenConfig::new(Endpoint::Tcp("unused".into()));
        config.connections = 2;
        config.batch = 64;
        config.total_ops = 4096;
        config.keyspace = 512;
        config.workload = workload;
        config
    }

    #[test]
    fn traces_are_deterministic_and_conn_disjoint() {
        for workload in [
            WorkloadKind::Uniform,
            WorkloadKind::Zipf { s: 0.99 },
            WorkloadKind::Churn,
            WorkloadKind::Higgs,
        ] {
            let config = test_config(workload);
            let a = connection_trace(&config, 0);
            let b = connection_trace(&config, 0);
            assert_eq!(a, b, "{workload:?} trace not deterministic");
            let other = connection_trace(&config, 1);
            let tag = |trace: &[(OpCode, Vec<u64>)]| -> Vec<u64> {
                trace
                    .iter()
                    .flat_map(|(_, keys)| keys.iter().map(|k| k >> 56))
                    .collect()
            };
            assert!(tag(&a).iter().all(|&t| t == 0));
            assert!(tag(&other).iter().all(|&t| t == 1));
            assert!(!other.is_empty());
        }
    }

    #[test]
    fn mixed_trace_respects_frame_shape() {
        let config = test_config(WorkloadKind::Uniform);
        let trace = connection_trace(&config, 0);
        let ops: usize = trace.iter().map(|(_, keys)| keys.len()).sum();
        assert!(ops >= config.total_ops / config.connections);
        for (opcode, keys) in &trace {
            assert!(opcode.is_data());
            assert!(!keys.is_empty() && keys.len() <= config.batch);
        }
        // First frame must be an insert (window starts empty).
        assert_eq!(trace.first().map(|(op, _)| *op), Some(OpCode::Insert));
    }

    #[test]
    fn churn_trace_packs_same_opcode_runs() {
        let config = test_config(WorkloadKind::Churn);
        let trace = connection_trace(&config, 0);
        assert!(trace.iter().any(|(op, _)| *op == OpCode::Delete));
        for (_, keys) in &trace {
            assert!(keys.len() <= config.batch);
        }
    }

    #[test]
    fn workload_kind_parses() {
        assert_eq!(WorkloadKind::parse("uniform"), Ok(WorkloadKind::Uniform));
        assert_eq!(WorkloadKind::parse("churn"), Ok(WorkloadKind::Churn));
        assert_eq!(WorkloadKind::parse("higgs"), Ok(WorkloadKind::Higgs));
        assert_eq!(
            WorkloadKind::parse("zipf:1.2"),
            Ok(WorkloadKind::Zipf { s: 1.2 })
        );
        assert!(WorkloadKind::parse("nope").is_err());
    }

    #[test]
    fn sweep_json_is_flat_and_sorted() {
        let json = sweep_json(
            "uds",
            &[
                SweepPoint {
                    workers: 2,
                    batch: 256,
                    ops_per_sec: 1000.5,
                },
                SweepPoint {
                    workers: 1,
                    batch: 1,
                    ops_per_sec: 10.25,
                },
            ],
        );
        let first = json.find("server/uds/mixed/t1/b1").unwrap();
        let second = json.find("server/uds/mixed/t2/b256").unwrap();
        assert!(first < second);
        assert!(json.ends_with("}\n"));
    }
}
