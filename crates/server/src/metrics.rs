//! Server counters and control flags — the one module in `vcf-server`
//! allowed to touch atomics directly (enforced by `vcf-xtask lint`'s
//! `atomic-ordering` allowlist).
//!
//! All counters are monotonically increasing `Relaxed` adds: they are
//! observability, not synchronization, so no ordering stronger than
//! atomicity is needed, and a torn read is impossible on `AtomicU64`.
//! Everything else in the crate goes through this module's methods and
//! never names an `Ordering` itself.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use vcf_traits::BatchOpKind;

/// Data-plane and protocol counters, shared by every connection thread.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    connections: AtomicU64,
    frames: AtomicU64,
    insert_keys: AtomicU64,
    lookup_keys: AtomicU64,
    delete_keys: AtomicU64,
    proto_errors: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

/// A point-in-time copy of [`ServerMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Connections accepted since start.
    pub connections: u64,
    /// Well-formed frames processed (data + control).
    pub frames: u64,
    /// Keys carried by insert frames.
    pub insert_keys: u64,
    /// Keys carried by lookup frames.
    pub lookup_keys: u64,
    /// Keys carried by delete frames.
    pub delete_keys: u64,
    /// Malformed frames rejected.
    pub proto_errors: u64,
    /// Request bytes received (headers + payloads).
    pub bytes_in: u64,
    /// Response bytes sent.
    pub bytes_out: u64,
}

impl MetricsSnapshot {
    /// Total data-plane keys across the three op kinds.
    #[must_use]
    pub fn data_keys(&self) -> u64 {
        self.insert_keys + self.lookup_keys + self.delete_keys
    }
}

impl ServerMetrics {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one well-formed data frame of `keys` keys.
    pub fn record_data_frame(&self, op: BatchOpKind, keys: u64) {
        self.frames.fetch_add(1, Ordering::Relaxed);
        let counter = match op {
            BatchOpKind::Insert => &self.insert_keys,
            BatchOpKind::Lookup => &self.lookup_keys,
            BatchOpKind::Delete => &self.delete_keys,
        };
        counter.fetch_add(keys, Ordering::Relaxed);
    }

    /// Records one well-formed control frame (ping/stats).
    pub fn record_control_frame(&self) {
        self.frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one rejected malformed frame.
    pub fn record_proto_error(&self) {
        self.proto_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts request bytes.
    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Accounts response bytes.
    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// A consistent-enough copy for reporting (individually atomic
    /// reads; the counters only ever grow).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            insert_keys: self.insert_keys.load(Ordering::Relaxed),
            lookup_keys: self.lookup_keys.load(Ordering::Relaxed),
            delete_keys: self.delete_keys.load(Ordering::Relaxed),
            proto_errors: self.proto_errors.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// A one-way shutdown latch shared between the accept loop and
/// [`crate::server::ServerHandle::shutdown`]. `Relaxed` suffices: the
/// flag gates no data, and the unblocking dummy connection provides the
/// cross-thread rendezvous.
#[derive(Debug, Default)]
pub struct StopFlag(AtomicBool);

impl StopFlag {
    /// A fresh, unset flag.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Latches the flag.
    pub fn set(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been latched.
    #[must_use]
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_kind() {
        let metrics = ServerMetrics::new();
        metrics.record_connection();
        metrics.record_data_frame(BatchOpKind::Insert, 256);
        metrics.record_data_frame(BatchOpKind::Lookup, 100);
        metrics.record_data_frame(BatchOpKind::Delete, 10);
        metrics.record_control_frame();
        metrics.record_proto_error();
        metrics.add_bytes_in(2048);
        metrics.add_bytes_out(40);
        let snap = metrics.snapshot();
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.frames, 4);
        assert_eq!(snap.insert_keys, 256);
        assert_eq!(snap.lookup_keys, 100);
        assert_eq!(snap.delete_keys, 10);
        assert_eq!(snap.data_keys(), 366);
        assert_eq!(snap.proto_errors, 1);
        assert_eq!(snap.bytes_in, 2048);
        assert_eq!(snap.bytes_out, 40);
    }

    #[test]
    fn stop_flag_latches() {
        let flag = StopFlag::new();
        assert!(!flag.is_set());
        flag.set();
        assert!(flag.is_set());
        flag.set();
        assert!(flag.is_set());
    }
}
