//! Thread-per-core shard-affinity executor.
//!
//! The server owns one [`ShardExecutor`] shared by every connection.
//! Worker thread `w` exclusively executes operations for the shard
//! group `{s : s % workers == w}` — a key's ops always land on the
//! thread owning its shard, so shard-local cache lines stay hot on one
//! core and two workers never contend on the same shard's buckets.
//! (The offline workspace has no CPU-affinity syscall access, so the
//! pinning is *data* affinity: the OS may migrate the thread, but the
//! shard→thread ownership never changes.)
//!
//! A connection thread routes each frame's keys by
//! [`ShardEngine::shard_of`], dispatches one [`Job`] per involved
//! worker, then reassembles the per-key outcome bits into the response
//! bitmap in input order. Per-key ordering is preserved end to end:
//! a key always maps to one shard and hence one worker, workers keep a
//! frame's per-shard runs in input order (stable sort), and frames on a
//! connection are strictly serialized by the one-in-flight protocol.
//!
//! This module is on the server hot path and is written panic-free
//! (checked by `vcf-xtask lint`'s no-panic rule).

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use vcf_core::ShardRouter;
use vcf_traits::{BatchOpKind, ConcurrentFilter, FilterService};

use crate::protocol::{bitmap_set, KEY_LEN};

/// A sharded batched-op engine the executor can route over: shard
/// resolution plus per-shard batch execution, object-safe so the server
/// can hold `Arc<dyn ShardEngine>` regardless of the concrete filter.
pub trait ShardEngine: Send + Sync {
    /// Number of shards (a power of two).
    fn shard_count(&self) -> usize;

    /// Shard owning `key` — the same routing the filter itself uses.
    fn shard_of(&self, key: &[u8]) -> usize;

    /// Executes one single-kind batch entirely within `shard`,
    /// returning one outcome bit per key in input order. Out-of-range
    /// shards (impossible via [`Self::shard_of`]) yield all-false.
    fn shard_execute(&self, shard: usize, op: BatchOpKind, keys: &[&[u8]]) -> Vec<bool>;

    /// Entries stored across all shards.
    fn total_len(&self) -> usize;

    /// Entry capacity across all shards.
    fn total_capacity(&self) -> usize;

    /// Display name for logs and stats replies.
    fn engine_name(&self) -> String;
}

impl<F: ConcurrentFilter> ShardEngine for ShardRouter<F> {
    fn shard_count(&self) -> usize {
        ShardRouter::shard_count(self)
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        ShardRouter::shard_of(self, key)
    }

    fn shard_execute(&self, shard: usize, op: BatchOpKind, keys: &[&[u8]]) -> Vec<bool> {
        match self.shards().get(shard) {
            Some(filter) => filter.execute_batch(op, keys),
            None => vec![false; keys.len()],
        }
    }

    fn total_len(&self) -> usize {
        self.len()
    }

    fn total_capacity(&self) -> usize {
        self.capacity()
    }

    fn engine_name(&self) -> String {
        self.name()
    }
}

/// One routed key: its frame position, owning shard, and the 8 wire
/// bytes (kept by value so jobs borrow nothing from the frame buffer).
#[derive(Debug, Clone, Copy)]
struct Item {
    pos: u32,
    shard: u16,
    key: [u8; KEY_LEN],
}

/// One worker's slice of a frame.
struct Job {
    op: BatchOpKind,
    items: Vec<Item>,
    reply: mpsc::Sender<WorkerReply>,
}

/// A worker's answer: outcome bit per routed item, plus the (cleared)
/// item buffer handed back for reuse.
struct WorkerReply {
    worker: u32,
    results: Vec<(u32, bool)>,
    items: Vec<Item>,
}

/// The executor went away (worker threads stopped); the server reports
/// an internal error and closes the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorDown;

/// Per-connection routing scratch: a private reply channel plus one
/// reusable item buffer per worker, so steady-state frames allocate
/// nothing on the routing side.
pub struct ExecScratch {
    reply_tx: mpsc::Sender<WorkerReply>,
    reply_rx: mpsc::Receiver<WorkerReply>,
    per_worker: Vec<Vec<Item>>,
}

/// Thread-per-core batch executor over an [`ShardEngine`].
pub struct ShardExecutor {
    engine: Arc<dyn ShardEngine>,
    senders: Vec<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardExecutor {
    /// Spawns `workers` worker threads over `engine`, clamped to
    /// `1..=shard_count` so every worker owns at least one shard.
    #[must_use]
    pub fn new(engine: Arc<dyn ShardEngine>, workers: usize) -> Self {
        let workers = workers.clamp(1, engine.shard_count().max(1));
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                worker_loop(&engine, worker as u32, &rx);
            }));
        }
        Self {
            engine,
            senders,
            handles,
        }
    }

    /// The engine the workers execute against.
    #[must_use]
    pub fn engine(&self) -> &Arc<dyn ShardEngine> {
        &self.engine
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Fresh per-connection scratch sized for this executor.
    #[must_use]
    pub fn scratch(&self) -> ExecScratch {
        let (reply_tx, reply_rx) = mpsc::channel();
        ExecScratch {
            reply_tx,
            reply_rx,
            per_worker: (0..self.workers()).map(|_| Vec::new()).collect(),
        }
    }

    // lint: hot-path
    /// Executes one data frame: routes `payload` (concatenated 8-byte
    /// keys) to the owning workers, blocks for their replies, and sets
    /// the per-key outcome bits in `bitmap` (which the caller supplies
    /// zeroed, sized `bitmap_len(count)`).
    ///
    /// # Errors
    ///
    /// [`ExecutorDown`] if the worker threads have stopped.
    pub fn execute(
        &self,
        op: BatchOpKind,
        payload: &[u8],
        scratch: &mut ExecScratch,
        bitmap: &mut [u8],
    ) -> Result<(), ExecutorDown> {
        let workers = self.workers();
        if workers == 0 {
            return Err(ExecutorDown);
        }
        for (pos, chunk) in payload.chunks_exact(KEY_LEN).enumerate() {
            let mut key = [0u8; KEY_LEN];
            key.copy_from_slice(chunk);
            let shard = self.engine.shard_of(&key);
            let item = Item {
                pos: pos as u32,
                shard: shard as u16,
                key,
            };
            if let Some(bucket) = scratch.per_worker.get_mut(shard % workers) {
                bucket.push(item);
            }
        }

        let mut dispatched = 0usize;
        for (worker, bucket) in scratch.per_worker.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let job = Job {
                op,
                items: std::mem::take(bucket),
                reply: scratch.reply_tx.clone(),
            };
            match self.senders.get(worker) {
                Some(tx) if tx.send(job).is_ok() => dispatched += 1,
                _ => return Err(ExecutorDown),
            }
        }

        for _ in 0..dispatched {
            let Ok(mut reply) = scratch.reply_rx.recv() else {
                return Err(ExecutorDown);
            };
            for &(pos, bit) in &reply.results {
                if bit {
                    bitmap_set(bitmap, pos as usize);
                }
            }
            reply.items.clear();
            if let Some(bucket) = scratch.per_worker.get_mut(reply.worker as usize) {
                *bucket = reply.items;
            }
        }
        Ok(())
    }

    /// Stops the workers and joins them. Idempotent; also run by drop.
    pub fn shutdown(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Worker body: drain jobs until every sender is gone. Items arrive in
/// frame order; a stable sort groups them by shard while preserving
/// input order within each shard, then each run executes as one batch
/// on the shard's prefetch pipeline.
fn worker_loop(engine: &Arc<dyn ShardEngine>, worker: u32, rx: &mpsc::Receiver<Job>) {
    while let Ok(mut job) = rx.recv() {
        job.items.sort_by_key(|item| item.shard);
        let mut results = Vec::with_capacity(job.items.len());
        let mut keys: Vec<&[u8]> = Vec::with_capacity(job.items.len());
        let mut rest: &[Item] = &job.items;
        while let Some(first) = rest.first() {
            let shard = first.shard;
            let run_len = rest.iter().take_while(|item| item.shard == shard).count();
            let (run, tail) = rest.split_at(run_len);
            rest = tail;
            keys.clear();
            keys.extend(run.iter().map(|item| &item.key[..]));
            let bits = engine.shard_execute(shard as usize, job.op, &keys);
            results.extend(run.iter().zip(bits).map(|(item, bit)| (item.pos, bit)));
        }
        let reply = WorkerReply {
            worker,
            results,
            items: job.items,
        };
        let _ = job.reply.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::bitmap_get;
    use vcf_core::{CuckooConfig, ShardedConcurrentVcf};

    fn test_engine() -> Arc<dyn ShardEngine> {
        let config = CuckooConfig::new(1 << 10).with_seed(7);
        Arc::new(ShardedConcurrentVcf::new(config, 3).expect("config is valid"))
    }

    fn keys_payload(keys: &[u64]) -> Vec<u8> {
        keys.iter().flat_map(|k| k.to_le_bytes()).collect()
    }

    fn run_bitmap(
        exec: &ShardExecutor,
        scratch: &mut ExecScratch,
        op: BatchOpKind,
        keys: &[u64],
    ) -> Vec<u8> {
        let payload = keys_payload(keys);
        let mut bitmap = vec![0u8; keys.len().div_ceil(8)];
        exec.execute(op, &payload, scratch, &mut bitmap)
            .expect("workers alive");
        bitmap
    }

    #[test]
    fn executed_batches_match_direct_router_calls() {
        let config = CuckooConfig::new(1 << 10).with_seed(7);
        let oracle = ShardedConcurrentVcf::new(config, 3).expect("config is valid");
        let exec = ShardExecutor::new(test_engine(), 3);
        let mut scratch = exec.scratch();

        let keys: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let key_bytes: Vec<[u8; 8]> = keys.iter().map(|k| k.to_le_bytes()).collect();
        let key_refs: Vec<&[u8]> = key_bytes.iter().map(|k| &k[..]).collect();

        let inserted = run_bitmap(&exec, &mut scratch, BatchOpKind::Insert, &keys);
        let expected: Vec<bool> = oracle
            .insert_batch(&key_refs)
            .iter()
            .map(Result::is_ok)
            .collect();
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(bitmap_get(&inserted, i), *want, "insert bit {i}");
        }

        let looked = run_bitmap(&exec, &mut scratch, BatchOpKind::Lookup, &keys);
        for (i, want) in oracle.contains_batch(&key_refs).iter().enumerate() {
            assert_eq!(bitmap_get(&looked, i), *want, "lookup bit {i}");
        }

        let deleted = run_bitmap(&exec, &mut scratch, BatchOpKind::Delete, &keys);
        for (i, want) in oracle.delete_batch(&key_refs).iter().enumerate() {
            assert_eq!(bitmap_get(&deleted, i), *want, "delete bit {i}");
        }
        assert_eq!(exec.engine().total_len(), oracle.len());
    }

    #[test]
    fn duplicate_keys_in_one_frame_keep_input_order() {
        let exec = ShardExecutor::new(test_engine(), 2);
        let mut scratch = exec.scratch();
        // Two copies inserted, then three deletes: exactly two succeed.
        let dup = [42u64, 42, 7];
        let inserted = run_bitmap(&exec, &mut scratch, BatchOpKind::Insert, &dup);
        assert!(bitmap_get(&inserted, 0));
        assert!(bitmap_get(&inserted, 1));
        let deletes = [42u64, 42, 42];
        let removed = run_bitmap(&exec, &mut scratch, BatchOpKind::Delete, &deletes);
        assert!(bitmap_get(&removed, 0));
        assert!(bitmap_get(&removed, 1));
        assert!(!bitmap_get(&removed, 2));
    }

    #[test]
    fn worker_count_is_clamped_to_shard_count() {
        let exec = ShardExecutor::new(test_engine(), 64);
        assert_eq!(exec.workers(), 8); // 3 shard bits
        let exec = ShardExecutor::new(test_engine(), 0);
        assert_eq!(exec.workers(), 1);
    }

    #[test]
    fn shutdown_then_execute_reports_down() {
        let mut exec = ShardExecutor::new(test_engine(), 2);
        let mut scratch = exec.scratch();
        exec.shutdown();
        let payload = keys_payload(&[1, 2, 3]);
        let mut bitmap = vec![0u8; 1];
        assert_eq!(
            exec.execute(BatchOpKind::Insert, &payload, &mut scratch, &mut bitmap),
            Err(ExecutorDown)
        );
    }

    #[test]
    fn empty_payload_is_a_no_op() {
        let exec = ShardExecutor::new(test_engine(), 2);
        let mut scratch = exec.scratch();
        let mut bitmap = [0u8; 0];
        assert_eq!(
            exec.execute(BatchOpKind::Lookup, &[], &mut scratch, &mut bitmap),
            Ok(())
        );
    }
}
