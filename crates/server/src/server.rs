//! The filter server: accept loop, per-connection frame loop, and
//! engine construction.
//!
//! Threading model: one acceptor thread, one frame-loop thread per
//! connection, and the [`ShardExecutor`]'s worker threads (the only
//! threads that touch filter shards). Connection threads do socket I/O
//! and wire routing; workers do filter work with shard affinity.
//!
//! Backpressure is structural: the protocol is strictly one request in
//! flight per connection (a client must read the response before the
//! next frame), so a server never buffers more than one frame per
//! connection and slow clients are throttled by their own socket.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use vcf_core::{CuckooConfig, ShardedConcurrentVcf, ShardedScalableVcf};

use crate::codec::{encode_response, Endpoint, Frame, FrameReader, WireStream};
use crate::executor::{ShardEngine, ShardExecutor};
use crate::metrics::{MetricsSnapshot, ServerMetrics, StopFlag};
use crate::protocol::{bitmap_len, status, OpCode, HEADER_LEN, STATS_WORDS};

/// Everything needed to build and serve an engine.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen (`tcp:…` or `uds:…`).
    pub endpoint: Endpoint,
    /// Total slot budget across all shards.
    pub slots: usize,
    /// log2 of the shard count.
    pub shard_bits: u32,
    /// Worker threads; `0` means one per available core (clamped to the
    /// shard count either way).
    pub workers: usize,
    /// Serve a [`ShardedScalableVcf`] (elastic, segment-growing) shard
    /// set instead of the fixed-capacity lock-free one.
    pub elastic: bool,
    /// Hash seed, so a differential oracle can be built identically.
    pub seed: u64,
}

impl ServerConfig {
    /// Defaults tuned for the smoke tests: 2^20 slots, 16 shards,
    /// auto workers, fixed-capacity engine.
    #[must_use]
    pub fn new(endpoint: Endpoint) -> Self {
        Self {
            endpoint,
            slots: 1 << 20,
            shard_bits: 4,
            workers: 0,
            elastic: false,
            seed: 0x5643_4653_4552_5645, // "VCFSERVE"
        }
    }

    /// The filter config every shard set is built from.
    #[must_use]
    pub fn cuckoo_config(&self) -> CuckooConfig {
        CuckooConfig::with_total_slots(self.slots).with_seed(self.seed)
    }

    /// Resolved worker count: explicit, or one per available core.
    #[must_use]
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// Builds the shard engine a config describes.
///
/// # Errors
///
/// [`io::Error`] (invalid-input kind) when the slot/shard geometry is
/// rejected by the filter's own validation.
pub fn build_engine(config: &ServerConfig) -> io::Result<Arc<dyn ShardEngine>> {
    let cuckoo = config.cuckoo_config();
    let invalid = |e| io::Error::new(io::ErrorKind::InvalidInput, format!("bad geometry: {e}"));
    if config.elastic {
        let engine = ShardedScalableVcf::new(cuckoo, config.shard_bits).map_err(invalid)?;
        Ok(Arc::new(engine))
    } else {
        let engine = ShardedConcurrentVcf::new(cuckoo, config.shard_bits).map_err(invalid)?;
        Ok(Arc::new(engine))
    }
}

/// The two listener flavours behind one accept interface.
enum Listener {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> io::Result<(Self, Endpoint)> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let resolved = Endpoint::Tcp(listener.local_addr()?.to_string());
                Ok((Self::Tcp(listener), resolved))
            }
            Endpoint::Uds(path) => {
                // A stale socket file from a previous run would make
                // bind fail with AddrInUse; remove it first.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                Ok((Self::Uds(listener), Endpoint::Uds(path.clone())))
            }
        }
    }

    fn accept(&self) -> io::Result<WireStream> {
        match self {
            Self::Tcp(listener) => {
                let (stream, _) = listener.accept()?;
                stream.set_nodelay(true)?;
                Ok(WireStream::Tcp(stream))
            }
            Self::Uds(listener) => {
                let (stream, _) = listener.accept()?;
                Ok(WireStream::Uds(stream))
            }
        }
    }
}

/// A running server: join/shutdown handle plus the shared state the
/// tests and binaries want to observe.
pub struct ServerHandle {
    endpoint: Endpoint,
    executor: Arc<ShardExecutor>,
    metrics: Arc<ServerMetrics>,
    stop: Arc<StopFlag>,
    acceptor: Option<JoinHandle<()>>,
    uds_path: Option<PathBuf>,
}

impl ServerHandle {
    /// Binds `config.endpoint`, builds the engine and executor, and
    /// starts the accept loop. Returns once the socket is listening;
    /// `endpoint()` reports the resolved address (useful with
    /// `tcp:127.0.0.1:0`).
    ///
    /// # Errors
    ///
    /// Propagates bind/engine-construction failures.
    pub fn spawn(config: &ServerConfig) -> io::Result<Self> {
        let engine = build_engine(config)?;
        Self::spawn_with_engine(config, engine)
    }

    /// [`Self::spawn`] with a caller-built engine (lets tests share the
    /// exact engine instance between server and oracle checks).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_with_engine(
        config: &ServerConfig,
        engine: Arc<dyn ShardEngine>,
    ) -> io::Result<Self> {
        let (listener, endpoint) = Listener::bind(&config.endpoint)?;
        let executor = Arc::new(ShardExecutor::new(engine, config.resolved_workers()));
        let metrics = Arc::new(ServerMetrics::new());
        let stop = Arc::new(StopFlag::new());
        let uds_path = match &endpoint {
            Endpoint::Uds(path) => Some(path.clone()),
            Endpoint::Tcp(_) => None,
        };

        let acceptor = {
            let executor = Arc::clone(&executor);
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                accept_loop(&listener, &executor, &metrics, &stop);
            })
        };

        Ok(Self {
            endpoint,
            executor,
            metrics,
            stop,
            acceptor: Some(acceptor),
            uds_path,
        })
    }

    /// The resolved listening endpoint.
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The engine being served.
    #[must_use]
    pub fn engine(&self) -> &Arc<dyn ShardEngine> {
        self.executor.engine()
    }

    /// Worker threads serving filter ops.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.executor.workers()
    }

    /// Current counters.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Stops accepting, unblocks the acceptor, and joins it. Existing
    /// connections finish their current frame and close on next read.
    pub fn shutdown(&mut self) {
        self.stop.set();
        // accept() has no timeout; a throwaway connection unblocks it.
        match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let _ = TcpStream::connect(addr.as_str());
            }
            Endpoint::Uds(path) => {
                let _ = UnixStream::connect(path);
            }
        }
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        if let Some(path) = self.uds_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts until the stop flag latches; each connection gets its own
/// frame-loop thread. Connection threads are detached — they exit on
/// client EOF or protocol close, and the executor they reference stays
/// alive through the shared `Arc`.
fn accept_loop(
    listener: &Listener,
    executor: &Arc<ShardExecutor>,
    metrics: &Arc<ServerMetrics>,
    stop: &Arc<StopFlag>,
) {
    loop {
        let stream = match listener.accept() {
            Ok(stream) => stream,
            Err(_) if stop.is_set() => return,
            Err(_) => continue,
        };
        if stop.is_set() {
            return;
        }
        metrics.record_connection();
        let executor = Arc::clone(executor);
        let metrics = Arc::clone(metrics);
        std::thread::spawn(move || {
            let _ = serve_conn(stream, &executor, &metrics);
        });
    }
}

/// One connection's request/response loop. Returns on clean EOF, I/O
/// error, or an unrecoverable protocol error.
fn serve_conn(
    stream: WireStream,
    executor: &ShardExecutor,
    metrics: &ServerMetrics,
) -> io::Result<()> {
    let writer = stream.try_clone()?;
    serve_frames(FrameReader::new(stream), writer, executor, metrics)
}

/// The frame loop proper, generic over the transport so the unit tests
/// can drive it with in-memory buffers.
fn serve_frames<R: Read, W: Write>(
    mut reader: FrameReader<R>,
    mut writer: W,
    executor: &ShardExecutor,
    metrics: &ServerMetrics,
) -> io::Result<()> {
    let mut scratch = executor.scratch();
    let mut resp = Vec::new();
    let mut bitmap = Vec::new();
    loop {
        match reader.read_frame()? {
            Frame::Closed => return Ok(()),
            Frame::Malformed(err) => {
                metrics.record_proto_error();
                resp.clear();
                encode_response(&mut resp, err.status(), 0, &[]);
                writer.write_all(&resp)?;
                writer.flush()?;
                metrics.add_bytes_out(resp.len() as u64);
                if err.drainable_payload().is_none() {
                    // Framing is lost (bad magic/version) or the frame
                    // is abusive (oversized): close rather than guess.
                    return Ok(());
                }
            }
            Frame::Request { opcode, payload } => {
                let count = (payload.len() / crate::protocol::KEY_LEN) as u32;
                metrics.add_bytes_in((HEADER_LEN + payload.len()) as u64);
                resp.clear();
                match opcode.batch_kind() {
                    Some(op) => {
                        metrics.record_data_frame(op, u64::from(count));
                        bitmap.clear();
                        bitmap.resize(bitmap_len(count as usize), 0);
                        match executor.execute(op, payload, &mut scratch, &mut bitmap) {
                            Ok(()) => encode_response(&mut resp, status::OK, count, &bitmap),
                            Err(_) => {
                                encode_response(&mut resp, status::INTERNAL, 0, &[]);
                                writer.write_all(&resp)?;
                                writer.flush()?;
                                return Ok(());
                            }
                        }
                    }
                    None => {
                        metrics.record_control_frame();
                        match opcode {
                            OpCode::Ping => encode_response(&mut resp, status::OK, 0, &[]),
                            OpCode::Stats => {
                                let stats = stats_payload(executor, metrics);
                                encode_response(&mut resp, status::OK, STATS_WORDS as u32, &stats);
                            }
                            // Data opcodes were dispatched via
                            // `batch_kind()` above; reaching one here is
                            // a dispatch bug, answered as internal.
                            OpCode::Insert | OpCode::Lookup | OpCode::Delete => {
                                encode_response(&mut resp, status::INTERNAL, 0, &[]);
                            }
                        }
                    }
                }
                writer.write_all(&resp)?;
                writer.flush()?;
                metrics.add_bytes_out(resp.len() as u64);
            }
        }
    }
}

/// The 8 little-endian `u64` words of a stats reply, in wire order:
/// `len`, `capacity`, `shards`, `workers`, `frames`, `data_keys`,
/// `proto_errors`, `connections`.
fn stats_payload(executor: &ShardExecutor, metrics: &ServerMetrics) -> [u8; STATS_WORDS * 8] {
    let engine = executor.engine();
    let snap = metrics.snapshot();
    let words: [u64; STATS_WORDS] = [
        engine.total_len() as u64,
        engine.total_capacity() as u64,
        engine.shard_count() as u64,
        executor.workers() as u64,
        snap.frames,
        snap.data_keys(),
        snap.proto_errors,
        snap.connections,
    ];
    let mut out = [0u8; STATS_WORDS * 8];
    for (chunk, word) in out.chunks_exact_mut(8).zip(words) {
        chunk.copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// What [`serve_bytes_for_test`] observed.
#[doc(hidden)]
#[derive(Debug)]
pub struct BytesServed {
    /// Concatenated response frames the server wrote.
    pub output: Vec<u8>,
    /// Counters after the stream ended.
    pub metrics: MetricsSnapshot,
    /// The frame loop's transport error, if any (e.g. a stream that
    /// ends mid-frame surfaces as `UnexpectedEof`).
    pub error: Option<io::ErrorKind>,
}

/// Drives one in-memory request byte stream through the frame loop and
/// returns the responses, counters and terminal error. Test-only
/// harness shared with the wire-robustness integration tests.
#[doc(hidden)]
pub fn serve_bytes_for_test(executor: &ShardExecutor, input: &[u8]) -> BytesServed {
    let metrics = ServerMetrics::new();
    let mut out = Vec::new();
    let reader = FrameReader::new(input);
    let result = serve_frames(reader, &mut out, executor, &metrics);
    BytesServed {
        output: out,
        metrics: metrics.snapshot(),
        error: result.err().map(|e| e.kind()),
    }
}

/// `mpsc`-based readiness helper used by binaries: spawns the server,
/// sends the resolved endpoint through the channel, and blocks the
/// calling thread until the handle is dropped elsewhere — not used by
/// the library path, only by `vcf-server`'s foreground mode.
pub fn spawn_and_report(
    config: &ServerConfig,
    ready: &mpsc::Sender<Endpoint>,
) -> io::Result<ServerHandle> {
    let handle = ServerHandle::spawn(config)?;
    let _ = ready.send(handle.endpoint().clone());
    Ok(handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Client;
    use crate::protocol::{RequestHeader, RESP_MAGIC, WIRE_VERSION};

    fn test_config(endpoint: Endpoint) -> ServerConfig {
        let mut config = ServerConfig::new(endpoint);
        config.slots = 1 << 12;
        config.shard_bits = 2;
        config.workers = 2;
        config
    }

    #[test]
    fn tcp_roundtrip_insert_lookup_delete() {
        let config = test_config(Endpoint::Tcp("127.0.0.1:0".to_owned()));
        let mut server = ServerHandle::spawn(&config).expect("bind");
        let mut client = Client::connect(server.endpoint()).expect("connect");

        let keys: Vec<u64> = (0..100).collect();
        let stored = client.data_op(OpCode::Insert, &keys).expect("insert");
        assert!((0..100).all(|i| stored.bit(i)));
        let present = client.data_op(OpCode::Lookup, &keys).expect("lookup");
        assert!((0..100).all(|i| present.bit(i)));
        let removed = client.data_op(OpCode::Delete, &keys).expect("delete");
        assert!((0..100).all(|i| removed.bit(i)));
        let gone = client.data_op(OpCode::Lookup, &keys).expect("lookup2");
        assert!((0..100).all(|i| !gone.bit(i)));

        client.ping().expect("ping");
        let stats = client.stats().expect("stats");
        assert_eq!(stats[0], 0, "len after deletes");
        assert_eq!(stats[2], 4, "shards");
        assert_eq!(stats[3], 2, "workers");

        server.shutdown();
        let snap = server.metrics();
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.proto_errors, 0);
        assert_eq!(snap.insert_keys, 100);
    }

    #[test]
    fn uds_roundtrip_and_stale_socket_cleanup() {
        let path =
            std::env::temp_dir().join(format!("vcf-server-test-{}.sock", std::process::id()));
        // Pre-create a stale file: bind must clean it up.
        std::fs::write(&path, b"stale").expect("write stale");
        let config = test_config(Endpoint::Uds(path.clone()));
        let mut server = ServerHandle::spawn(&config).expect("bind over stale file");
        let mut client = Client::connect(server.endpoint()).expect("connect");
        let keys = [7u64, 8, 9];
        let stored = client.data_op(OpCode::Insert, &keys).expect("insert");
        assert!(stored.bit(0) && stored.bit(1) && stored.bit(2));
        server.shutdown();
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn elastic_engine_serves_the_same_protocol() {
        let mut config = test_config(Endpoint::Tcp("127.0.0.1:0".to_owned()));
        config.elastic = true;
        let mut server = ServerHandle::spawn(&config).expect("bind");
        let mut client = Client::connect(server.endpoint()).expect("connect");
        let keys: Vec<u64> = (0..64).collect();
        let stored = client.data_op(OpCode::Insert, &keys).expect("insert");
        assert!((0..64).all(|i| stored.bit(i)));
        let present = client.data_op(OpCode::Lookup, &keys).expect("lookup");
        assert!((0..64).all(|i| present.bit(i)));
        server.shutdown();
    }

    #[test]
    fn malformed_bad_opcode_recovers_bad_magic_closes() {
        let config = test_config(Endpoint::Tcp("127.0.0.1:0".to_owned()));
        let engine = build_engine(&config).expect("engine");
        let executor = ShardExecutor::new(engine, 2);

        // Bad opcode with a drainable 1-key payload, then a valid ping:
        // server answers BAD_OPCODE then OK.
        let mut input = Vec::new();
        let mut bad = RequestHeader {
            opcode: OpCode::Ping,
            count: 0,
        }
        .encode()
        .to_vec();
        bad[3] = 99; // opcode byte
        bad[4..8].copy_from_slice(&1u32.to_le_bytes());
        input.extend_from_slice(&bad);
        input.extend_from_slice(&42u64.to_le_bytes());
        input.extend_from_slice(
            &RequestHeader {
                opcode: OpCode::Ping,
                count: 0,
            }
            .encode(),
        );
        let served = serve_bytes_for_test(&executor, &input);
        let (out, snap) = (served.output, served.metrics);
        assert_eq!(served.error, None);
        assert_eq!(snap.proto_errors, 1);
        assert_eq!(snap.frames, 1, "ping still processed after recovery");
        // Two responses: error then OK.
        assert_eq!(out.len(), 2 * HEADER_LEN);
        assert_eq!(u16::from_le_bytes([out[0], out[1]]), RESP_MAGIC);
        assert_eq!(out[2], WIRE_VERSION);
        assert_eq!(out[3], status::BAD_OPCODE);
        assert_eq!(out[HEADER_LEN + 3], status::OK);

        // Bad magic: one error response, connection closed, the valid
        // ping behind it never answered.
        let mut input = vec![0xFF, 0xFF, WIRE_VERSION, OpCode::Ping as u8, 0, 0, 0, 0];
        input.extend_from_slice(
            &RequestHeader {
                opcode: OpCode::Ping,
                count: 0,
            }
            .encode(),
        );
        let served = serve_bytes_for_test(&executor, &input);
        let (out, snap) = (served.output, served.metrics);
        assert_eq!(served.error, None);
        assert_eq!(snap.proto_errors, 1);
        assert_eq!(snap.frames, 0);
        assert_eq!(out.len(), HEADER_LEN, "single error response then close");
        assert_eq!(out[3], status::BAD_MAGIC);
    }

    #[test]
    fn stats_words_have_documented_order() {
        let config = test_config(Endpoint::Tcp("127.0.0.1:0".to_owned()));
        let engine = build_engine(&config).expect("engine");
        let capacity = engine.total_capacity() as u64;
        let executor = ShardExecutor::new(engine, 2);
        let metrics = ServerMetrics::new();
        let payload = stats_payload(&executor, &metrics);
        let word = |i: usize| {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&payload[i * 8..i * 8 + 8]);
            u64::from_le_bytes(bytes)
        };
        assert_eq!(word(0), 0, "len");
        assert_eq!(word(1), capacity);
        assert_eq!(word(2), 4, "shards");
        assert_eq!(word(3), 2, "workers");
    }
}
