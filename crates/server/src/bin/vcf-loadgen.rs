//! `vcf-loadgen` — drive batched wire traffic at a `vcf-server`.
//!
//! ```text
//! vcf-loadgen --connect <tcp:ADDR|uds:PATH> [options]
//! vcf-loadgen --bench <uds:PATH-PREFIX> [--json FILE] [options]
//!
//! Options:
//!   --connect <EP>       target server endpoint
//!   --connections <N>    concurrent connections (default 2)
//!   --batch <N>          keys per frame (default 256)
//!   --ops <N>            total data ops across connections (default 100000)
//!   --read-fraction <F>  fraction of lookup frames (default 0.5)
//!   --keyspace <N>       per-connection live-window cap (default 65536)
//!   --workload <W>       uniform | zipf[:s] | churn | higgs (default uniform)
//!   --seed <N>           run seed
//!
//! Bench mode (spawns its own in-process UDS servers):
//!   --bench <PREFIX>     sweep workers × batch, sockets at PREFIX-*.sock
//!   --json <FILE>        write the flat BENCH map to FILE (default stdout)
//!   --workers-list <L>   comma-separated worker counts (default 1,2,4)
//!   --batch-list <L>     comma-separated batch sizes (default 1,16,256,1024)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use vcf_server::loadgen::{self, LoadgenConfig, SweepPoint, WorkloadKind};
use vcf_server::{Endpoint, ServerConfig, ServerHandle};

fn usage() -> &'static str {
    "usage: vcf-loadgen (--connect <EP> | --bench <PREFIX>) [--connections N] [--batch N] \
     [--ops N] [--read-fraction F] [--keyspace N] [--workload W] [--seed N] \
     [--json FILE] [--workers-list L] [--batch-list L]"
}

struct Cli {
    connect: Option<Endpoint>,
    bench_prefix: Option<PathBuf>,
    json: Option<PathBuf>,
    workers_list: Vec<usize>,
    batch_list: Vec<usize>,
    load: LoadgenConfig,
}

fn parse_list(text: &str, name: &str) -> Result<Vec<usize>, String> {
    text.split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad {name} entry {part:?}"))
        })
        .collect()
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        connect: None,
        bench_prefix: None,
        json: None,
        workers_list: vec![1, 2, 4],
        batch_list: vec![1, 16, 256, 1024],
        load: LoadgenConfig::new(Endpoint::Tcp("unset".to_owned())),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--connect" => cli.connect = Some(Endpoint::parse(&value("--connect")?)?),
            "--bench" => cli.bench_prefix = Some(PathBuf::from(value("--bench")?)),
            "--json" => cli.json = Some(PathBuf::from(value("--json")?)),
            "--workers-list" => {
                cli.workers_list = parse_list(&value("--workers-list")?, "--workers-list")?;
            }
            "--batch-list" => cli.batch_list = parse_list(&value("--batch-list")?, "--batch-list")?,
            "--connections" => {
                cli.load.connections = value("--connections")?
                    .parse()
                    .map_err(|_| "bad --connections value".to_owned())?;
            }
            "--batch" => {
                cli.load.batch = value("--batch")?
                    .parse()
                    .map_err(|_| "bad --batch value".to_owned())?;
            }
            "--ops" => {
                cli.load.total_ops = value("--ops")?
                    .parse()
                    .map_err(|_| "bad --ops value".to_owned())?;
            }
            "--read-fraction" => {
                cli.load.read_fraction = value("--read-fraction")?
                    .parse()
                    .map_err(|_| "bad --read-fraction value".to_owned())?;
            }
            "--keyspace" => {
                cli.load.keyspace = value("--keyspace")?
                    .parse()
                    .map_err(|_| "bad --keyspace value".to_owned())?;
            }
            "--workload" => cli.load.workload = WorkloadKind::parse(&value("--workload")?)?,
            "--seed" => {
                cli.load.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed value".to_owned())?;
            }
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    if cli.connect.is_none() && cli.bench_prefix.is_none() {
        return Err(format!("--connect or --bench is required\n{}", usage()));
    }
    Ok(cli)
}

/// One sweep point: spawn an in-process UDS server with `workers`
/// worker threads, run the mixed workload at `batch`, report ops/sec.
fn bench_point(cli: &Cli, workers: usize, batch: usize) -> std::io::Result<SweepPoint> {
    let prefix = cli.bench_prefix.clone().unwrap_or_default();
    let socket = PathBuf::from(format!("{}-t{workers}-b{batch}.sock", prefix.display()));
    let mut server_config = ServerConfig::new(Endpoint::Uds(socket));
    server_config.workers = workers;
    let mut server = ServerHandle::spawn(&server_config)?;
    let mut load = cli.load.clone();
    load.endpoint = server.endpoint().clone();
    load.batch = batch;
    load.capture = false;
    let report = loadgen::run(&load)?;
    server.shutdown();
    Ok(SweepPoint {
        workers,
        batch,
        ops_per_sec: report.ops_per_sec,
    })
}

fn run_bench(cli: &Cli) -> std::io::Result<()> {
    let mut points = Vec::new();
    for &workers in &cli.workers_list {
        for &batch in &cli.batch_list {
            let point = bench_point(cli, workers, batch)?;
            eprintln!("t{workers} b{batch}: {:.0} ops/sec", point.ops_per_sec);
            points.push(point);
        }
    }
    let json = loadgen::sweep_json("uds", &points);
    match &cli.json {
        Some(path) => std::fs::write(path, json)?,
        None => print!("{json}"),
    }
    Ok(())
}

fn run_connect(cli: &Cli, endpoint: Endpoint) -> std::io::Result<()> {
    let mut load = cli.load.clone();
    load.endpoint = endpoint;
    let report = loadgen::run(&load)?;
    println!(
        "ops={} elapsed={:.3}s throughput={:.0} ops/sec (connections={} batch={} workload={:?})",
        report.data_ops,
        report.elapsed_secs,
        report.ops_per_sec,
        load.connections,
        load.batch,
        load.workload
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cli.connect.clone() {
        Some(endpoint) => run_connect(&cli, endpoint),
        None => run_bench(&cli),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("vcf-loadgen: {err}");
            ExitCode::FAILURE
        }
    }
}
