//! `vcf-server` — serve a sharded Vertical Cuckoo Filter over the
//! batched binary wire protocol.
//!
//! ```text
//! vcf-server --listen <tcp:ADDR|uds:PATH> [options]
//!
//! Options:
//!   --listen <EP>     endpoint, e.g. tcp:127.0.0.1:7171 or uds:/tmp/vcf.sock
//!   --slots <N>       total slot budget (default 1048576)
//!   --shard-bits <N>  log2 of the shard count (default 4)
//!   --workers <N>     worker threads; 0 = one per core (default 0)
//!   --elastic         serve the elastic (ScalableVcf) shard set
//!   --seed <N>        hash seed (default fixed)
//! ```
//!
//! The resolved endpoint is printed as `LISTENING <endpoint>` once the
//! socket is bound, so scripts can wait for readiness on stdout.

use std::process::ExitCode;
use vcf_server::{Endpoint, ServerConfig, ServerHandle};

fn usage() -> &'static str {
    "usage: vcf-server --listen <tcp:ADDR|uds:PATH> [--slots N] [--shard-bits N] \
     [--workers N] [--elastic] [--seed N]"
}

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut endpoint = None;
    let mut config = ServerConfig::new(Endpoint::Tcp("127.0.0.1:7171".to_owned()));
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--listen" => endpoint = Some(Endpoint::parse(&value("--listen")?)?),
            "--slots" => {
                config.slots = value("--slots")?
                    .parse()
                    .map_err(|_| "bad --slots value".to_owned())?;
            }
            "--shard-bits" => {
                config.shard_bits = value("--shard-bits")?
                    .parse()
                    .map_err(|_| "bad --shard-bits value".to_owned())?;
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "bad --workers value".to_owned())?;
            }
            "--elastic" => config.elastic = true,
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed value".to_owned())?;
            }
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    config.endpoint = endpoint.ok_or_else(|| format!("--listen is required\n{}", usage()))?;
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let server = match ServerHandle::spawn(&config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("vcf-server: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!("LISTENING {}", server.endpoint());
    println!(
        "engine={} shards={} workers={} capacity={}",
        server.engine().engine_name(),
        server.engine().shard_count(),
        server.workers(),
        server.engine().total_capacity()
    );
    // Foreground server: serve until killed. The acceptor thread owns
    // the listener; parking the main thread keeps the handle alive.
    loop {
        std::thread::park();
    }
}
