//! Filter-as-a-service: a batched binary wire server over the sharded
//! Vertical Cuckoo Filters.
//!
//! The crate splits into:
//!
//! * [`protocol`] — the little-endian frame format (`"VF"` requests,
//!   `"VR"` responses, 8-byte key hashes, per-key outcome bits) and its
//!   malformed-frame classification;
//! * [`codec`] — stream framing over TCP/Unix-domain sockets, plus the
//!   blocking [`codec::Client`];
//! * [`executor`] — the thread-per-core shard-affinity executor: each
//!   worker thread exclusively owns a shard group, so a key's ops always
//!   execute on the thread holding its shard's cache lines;
//! * [`server`] — accept loop, per-connection frame loop, engine
//!   construction ([`vcf_core::ShardedConcurrentVcf`] by default,
//!   [`vcf_core::ShardedScalableVcf`] with `--elastic`);
//! * [`loadgen`] — deterministic traffic generation (uniform, Zipf,
//!   churn, HIGGS) and the benchmark sweep behind `BENCH_server.json`;
//! * [`metrics`] — the crate's only atomics: counters and the stop
//!   flag.
//!
//! See `DESIGN.md` §13 for the wire format table and the threading and
//! backpressure model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod executor;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use codec::{Client, Endpoint, Frame, FrameReader, Reply, WireStream};
pub use executor::{ExecScratch, ExecutorDown, ShardEngine, ShardExecutor};
pub use loadgen::{ConnCapture, LoadgenConfig, LoadgenReport, SweepPoint, WorkloadKind};
pub use metrics::{MetricsSnapshot, ServerMetrics, StopFlag};
pub use protocol::{OpCode, RequestHeader, ResponseHeader, WireError, MAX_BATCH};
pub use server::{build_engine, ServerConfig, ServerHandle};
