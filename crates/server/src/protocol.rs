//! The wire protocol: fixed-header frames carrying batches of 8-byte
//! key hashes.
//!
//! Everything is little-endian and varint-free so a frame can be decoded
//! with two `read_exact` calls and zero per-key parsing — the payload of
//! a data frame *is* the key array, and the server borrows 8-byte slices
//! straight out of the receive buffer.
//!
//! ```text
//! request  := magic:u16 (0x4656 "VF") version:u8 opcode:u8 count:u32
//!             payload: count × 8-byte key hash
//! response := magic:u16 (0x5256 "VR") version:u8 status:u8 count:u32
//!             payload: data ops  → ⌈count/8⌉-byte outcome bitmap
//!                      ping      → empty
//!                      stats     → count × u64 words
//! ```
//!
//! Per-key outcomes are one bit (insert: stored, lookup: present,
//! delete: removed), so a 256-op reply is a 40-byte frame. Malformed
//! frames are classified by [`WireError`]: errors that leave the stream
//! position trustworthy ([`WireError::drainable_payload`] `Some`) are
//! answered and the connection recovers; anything that may have
//! desynchronized framing is answered and the connection closes.
//!
//! This module is on the linted no-panic hot path: decoding hostile
//! bytes must never be able to abort the server.

use vcf_traits::BatchOpKind;

/// Request-frame magic: `"VF"` on the wire (little-endian `0x4656`).
pub const REQ_MAGIC: u16 = 0x4656;
/// Response-frame magic: `"VR"` on the wire (little-endian `0x5256`).
pub const RESP_MAGIC: u16 = 0x5256;
/// Protocol version this build speaks.
pub const WIRE_VERSION: u8 = 1;
/// Both frame headers are exactly this long.
pub const HEADER_LEN: usize = 8;
/// Keys are fixed 8-byte hashes; the payload length of a data frame is
/// always `count * KEY_LEN`.
pub const KEY_LEN: usize = 8;
/// Largest accepted batch. Bounds per-frame memory (512 KiB of keys) and
/// makes `count * KEY_LEN` overflow-free on 32-bit hosts.
pub const MAX_BATCH: u32 = 1 << 16;
/// Number of `u64` words in a stats reply payload.
pub const STATS_WORDS: usize = 8;

// lint: wire-format
/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpCode {
    /// Store every key in the batch.
    Insert = 1,
    /// Membership-test every key in the batch.
    Lookup = 2,
    /// Remove one copy of every key in the batch.
    Delete = 3,
    /// Liveness probe; empty reply.
    Ping = 4,
    /// Server/engine counters as 8 `u64` words.
    Stats = 5,
}

impl OpCode {
    /// Decodes a wire byte.
    #[must_use]
    pub fn from_u8(byte: u8) -> Option<Self> {
        match byte {
            1 => Some(OpCode::Insert),
            2 => Some(OpCode::Lookup),
            3 => Some(OpCode::Delete),
            4 => Some(OpCode::Ping),
            5 => Some(OpCode::Stats),
            _ => None,
        }
    }

    /// Whether this opcode carries a key batch (vs. a control frame).
    #[must_use]
    pub fn is_data(self) -> bool {
        matches!(self, OpCode::Insert | OpCode::Lookup | OpCode::Delete)
    }

    /// The batched-op kind a data opcode dispatches as.
    #[must_use]
    pub fn batch_kind(self) -> Option<BatchOpKind> {
        match self {
            OpCode::Insert => Some(BatchOpKind::Insert),
            OpCode::Lookup => Some(BatchOpKind::Lookup),
            OpCode::Delete => Some(BatchOpKind::Delete),
            OpCode::Ping | OpCode::Stats => None,
        }
    }
}

// lint: wire-format
/// Why a request frame was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The first two bytes were not [`REQ_MAGIC`]; the peer is not
    /// speaking this protocol (or the stream desynchronized).
    BadMagic {
        /// The magic actually read.
        got: u16,
    },
    /// Unsupported protocol version.
    BadVersion {
        /// The version byte actually read.
        got: u8,
    },
    /// Unknown opcode; `count` was parseable, so the payload length is
    /// known and the connection can resynchronize by draining it.
    BadOpcode {
        /// The opcode byte actually read.
        got: u8,
        /// The frame's count field (trusted for draining only).
        count: u32,
    },
    /// `count` exceeds [`MAX_BATCH`]; refusing to buffer or drain it.
    OversizedBatch {
        /// The opcode byte of the rejected frame.
        opcode: u8,
        /// The oversized count.
        count: u32,
    },
    /// A data opcode with `count == 0`: nothing to do, and almost
    /// certainly a client bug worth surfacing loudly.
    EmptyBatch {
        /// The data opcode of the rejected frame.
        opcode: OpCode,
    },
    /// A control opcode (ping/stats) with a non-empty payload.
    ControlPayload {
        /// The control opcode of the rejected frame.
        opcode: OpCode,
        /// The unexpected count (trusted for draining only).
        count: u32,
    },
}

/// Response status codes (`0` is success).
pub mod status {
    /// Success.
    pub const OK: u8 = 0;
    /// [`super::WireError::BadMagic`].
    pub const BAD_MAGIC: u8 = 1;
    /// [`super::WireError::BadVersion`].
    pub const BAD_VERSION: u8 = 2;
    /// [`super::WireError::BadOpcode`].
    pub const BAD_OPCODE: u8 = 3;
    /// [`super::WireError::OversizedBatch`].
    pub const OVERSIZED_BATCH: u8 = 4;
    /// [`super::WireError::EmptyBatch`].
    pub const EMPTY_BATCH: u8 = 5;
    /// [`super::WireError::ControlPayload`].
    pub const CONTROL_PAYLOAD: u8 = 6;
    /// The server's data plane is shutting down or a worker died.
    pub const INTERNAL: u8 = 7;
}

impl WireError {
    /// The status byte reported back to the client.
    #[must_use]
    pub fn status(&self) -> u8 {
        match self {
            WireError::BadMagic { .. } => status::BAD_MAGIC,
            WireError::BadVersion { .. } => status::BAD_VERSION,
            WireError::BadOpcode { .. } => status::BAD_OPCODE,
            WireError::OversizedBatch { .. } => status::OVERSIZED_BATCH,
            WireError::EmptyBatch { .. } => status::EMPTY_BATCH,
            WireError::ControlPayload { .. } => status::CONTROL_PAYLOAD,
        }
    }

    /// How many payload bytes must be drained for the stream to remain
    /// frame-synchronized, or `None` when framing can no longer be
    /// trusted and the connection must close after responding.
    #[must_use]
    pub fn drainable_payload(&self) -> Option<usize> {
        match self {
            WireError::BadMagic { .. }
            | WireError::BadVersion { .. }
            | WireError::OversizedBatch { .. } => None,
            WireError::BadOpcode { count, .. } | WireError::ControlPayload { count, .. } => {
                Some(*count as usize * KEY_LEN)
            }
            WireError::EmptyBatch { .. } => Some(0),
        }
    }
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::BadMagic { got } => write!(f, "bad request magic 0x{got:04x}"),
            WireError::BadVersion { got } => write!(f, "unsupported protocol version {got}"),
            WireError::BadOpcode { got, .. } => write!(f, "unknown opcode {got}"),
            WireError::OversizedBatch { count, .. } => {
                write!(f, "batch of {count} keys exceeds the {MAX_BATCH} cap")
            }
            WireError::EmptyBatch { opcode } => {
                write!(f, "zero-length batch for data opcode {opcode:?}")
            }
            WireError::ControlPayload { opcode, count } => {
                write!(f, "control opcode {opcode:?} with {count} payload keys")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded request header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestHeader {
    /// The requested operation.
    pub opcode: OpCode,
    /// Number of 8-byte keys that follow the header.
    pub count: u32,
}

impl RequestHeader {
    /// Encodes the 8-byte header.
    #[must_use]
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..2].copy_from_slice(&REQ_MAGIC.to_le_bytes());
        out[2] = WIRE_VERSION;
        out[3] = self.opcode as u8;
        out[4..8].copy_from_slice(&self.count.to_le_bytes());
        out
    }

    // lint: hot-path
    /// Decodes and validates an 8-byte header.
    ///
    /// # Errors
    ///
    /// Returns the [`WireError`] classifying the rejection; see
    /// [`WireError::drainable_payload`] for the recovery contract.
    pub fn decode(bytes: &[u8; HEADER_LEN]) -> Result<Self, WireError> {
        let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
        if magic != REQ_MAGIC {
            return Err(WireError::BadMagic { got: magic });
        }
        if bytes[2] != WIRE_VERSION {
            return Err(WireError::BadVersion { got: bytes[2] });
        }
        let count = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if count > MAX_BATCH {
            return Err(WireError::OversizedBatch {
                opcode: bytes[3],
                count,
            });
        }
        let Some(opcode) = OpCode::from_u8(bytes[3]) else {
            return Err(WireError::BadOpcode {
                got: bytes[3],
                count,
            });
        };
        if opcode.is_data() {
            if count == 0 {
                return Err(WireError::EmptyBatch { opcode });
            }
        } else if count != 0 {
            return Err(WireError::ControlPayload { opcode, count });
        }
        Ok(Self { opcode, count })
    }

    /// Payload length in bytes implied by the header.
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.count as usize * KEY_LEN
    }
}

/// A decoded response header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseHeader {
    /// Status byte; `0` is success (see [`status`]).
    pub status: u8,
    /// Number of result bits (data ops) or `u64` words (stats); `0` on
    /// errors and pings.
    pub count: u32,
}

impl ResponseHeader {
    /// Encodes the 8-byte header.
    #[must_use]
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..2].copy_from_slice(&RESP_MAGIC.to_le_bytes());
        out[2] = WIRE_VERSION;
        out[3] = self.status;
        out[4..8].copy_from_slice(&self.count.to_le_bytes());
        out
    }

    // lint: hot-path
    /// Decodes an 8-byte response header (client side).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadMagic`]/[`WireError::BadVersion`] when the
    /// server reply is not a protocol frame.
    pub fn decode(bytes: &[u8; HEADER_LEN]) -> Result<Self, WireError> {
        let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
        if magic != RESP_MAGIC {
            return Err(WireError::BadMagic { got: magic });
        }
        if bytes[2] != WIRE_VERSION {
            return Err(WireError::BadVersion { got: bytes[2] });
        }
        Ok(Self {
            status: bytes[3],
            count: u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        })
    }
}

/// Bytes needed for a `count`-bit outcome bitmap.
#[must_use]
pub fn bitmap_len(count: usize) -> usize {
    count.div_ceil(8)
}

/// Reads bit `i` of an outcome bitmap (out-of-range reads are `false`).
#[must_use]
pub fn bitmap_get(bitmap: &[u8], i: usize) -> bool {
    bitmap
        .get(i / 8)
        .is_some_and(|byte| byte & (1u8 << (i % 8)) != 0)
}

/// Sets bit `i` of an outcome bitmap (out-of-range writes are dropped).
pub fn bitmap_set(bitmap: &mut [u8], i: usize) {
    if let Some(byte) = bitmap.get_mut(i / 8) {
        *byte |= 1u8 << (i % 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header_bytes(magic: u16, version: u8, opcode: u8, count: u32) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..2].copy_from_slice(&magic.to_le_bytes());
        out[2] = version;
        out[3] = opcode;
        out[4..8].copy_from_slice(&count.to_le_bytes());
        out
    }

    #[test]
    fn request_header_round_trips() {
        for (opcode, count) in [
            (OpCode::Insert, 1),
            (OpCode::Lookup, 256),
            (OpCode::Delete, MAX_BATCH),
            (OpCode::Ping, 0),
            (OpCode::Stats, 0),
        ] {
            let header = RequestHeader { opcode, count };
            assert_eq!(RequestHeader::decode(&header.encode()), Ok(header));
        }
    }

    #[test]
    fn response_header_round_trips() {
        for (code, count) in [(status::OK, 77), (status::EMPTY_BATCH, 0)] {
            let header = ResponseHeader {
                status: code,
                count,
            };
            assert_eq!(ResponseHeader::decode(&header.encode()), Ok(header));
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert_eq!(
            RequestHeader::decode(&header_bytes(0x1234, WIRE_VERSION, 2, 1)),
            Err(WireError::BadMagic { got: 0x1234 })
        );
        assert_eq!(
            RequestHeader::decode(&header_bytes(REQ_MAGIC, 9, 2, 1)),
            Err(WireError::BadVersion { got: 9 })
        );
    }

    #[test]
    fn rejects_bad_opcode_with_drainable_count() {
        let err = RequestHeader::decode(&header_bytes(REQ_MAGIC, WIRE_VERSION, 0x7f, 3))
            .expect_err("opcode 0x7f must fail");
        assert_eq!(
            err,
            WireError::BadOpcode {
                got: 0x7f,
                count: 3
            }
        );
        assert_eq!(err.drainable_payload(), Some(3 * KEY_LEN));
        assert_eq!(err.status(), status::BAD_OPCODE);
    }

    #[test]
    fn rejects_oversized_and_empty_batches() {
        let oversized = RequestHeader::decode(&header_bytes(
            REQ_MAGIC,
            WIRE_VERSION,
            OpCode::Insert as u8,
            MAX_BATCH + 1,
        ))
        .expect_err("oversized must fail");
        assert_eq!(oversized.drainable_payload(), None, "must close");

        let empty = RequestHeader::decode(&header_bytes(
            REQ_MAGIC,
            WIRE_VERSION,
            OpCode::Lookup as u8,
            0,
        ))
        .expect_err("empty data batch must fail");
        assert_eq!(
            empty,
            WireError::EmptyBatch {
                opcode: OpCode::Lookup
            }
        );
        assert_eq!(empty.drainable_payload(), Some(0), "trivially recoverable");
    }

    #[test]
    fn rejects_control_frames_with_payload() {
        let err = RequestHeader::decode(&header_bytes(
            REQ_MAGIC,
            WIRE_VERSION,
            OpCode::Ping as u8,
            2,
        ))
        .expect_err("ping with payload must fail");
        assert_eq!(
            err,
            WireError::ControlPayload {
                opcode: OpCode::Ping,
                count: 2
            }
        );
        assert_eq!(err.drainable_payload(), Some(2 * KEY_LEN));
    }

    #[test]
    fn bitmap_round_trips_and_tolerates_out_of_range() {
        let mut bitmap = vec![0u8; bitmap_len(11)];
        assert_eq!(bitmap.len(), 2);
        for i in [0usize, 3, 8, 10] {
            bitmap_set(&mut bitmap, i);
        }
        for i in 0..11 {
            assert_eq!(bitmap_get(&bitmap, i), [0usize, 3, 8, 10].contains(&i));
        }
        // Out-of-range accesses are inert, not panics.
        bitmap_set(&mut bitmap, 1000);
        assert!(!bitmap_get(&bitmap, 1000));
    }

    #[test]
    fn opcode_batch_kinds() {
        assert_eq!(OpCode::Insert.batch_kind(), Some(BatchOpKind::Insert));
        assert_eq!(OpCode::Lookup.batch_kind(), Some(BatchOpKind::Lookup));
        assert_eq!(OpCode::Delete.batch_kind(), Some(BatchOpKind::Delete));
        assert_eq!(OpCode::Ping.batch_kind(), None);
        assert!(OpCode::from_u8(0).is_none());
        assert!(OpCode::from_u8(6).is_none());
    }

    #[test]
    fn wire_error_display_is_informative() {
        let text = WireError::OversizedBatch {
            opcode: 1,
            count: MAX_BATCH + 5,
        }
        .to_string();
        assert!(text.contains("65541"), "{text}");
    }
}
