//! Stream codec: frame reading/writing over TCP or Unix-domain sockets.
//!
//! [`FrameReader`] turns a byte stream into request frames with one
//! buffer that is reused across frames: the payload of the returned
//! [`Frame::Request`] borrows the reader's receive buffer, so the 8-byte
//! keys inside it are handed to the shard executor as zero-copy slices.
//! Malformed headers surface as [`Frame::Malformed`] with the payload
//! already drained whenever the framing is still trustworthy (see
//! [`WireError::drainable_payload`]).
//!
//! [`Client`] is the blocking request/response counterpart used by
//! `vcf-loadgen`, the smoke tests and the benches: one in-flight frame
//! per connection, responses matched by order.
//!
//! This module is on the linted no-panic hot path.

use crate::protocol::{
    bitmap_len, OpCode, RequestHeader, ResponseHeader, WireError, HEADER_LEN, KEY_LEN, MAX_BATCH,
    STATS_WORDS,
};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// Where a server listens / a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP, e.g. `tcp:127.0.0.1:7171`.
    Tcp(String),
    /// Unix-domain socket path, e.g. `uds:/tmp/vcf.sock`.
    Uds(PathBuf),
}

impl Endpoint {
    /// Parses `tcp:<addr>` or `uds:<path>`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown schemes.
    pub fn parse(text: &str) -> Result<Self, String> {
        if let Some(addr) = text.strip_prefix("tcp:") {
            Ok(Endpoint::Tcp(addr.to_owned()))
        } else if let Some(path) = text.strip_prefix("uds:") {
            Ok(Endpoint::Uds(PathBuf::from(path)))
        } else {
            Err(format!(
                "endpoint {text:?} must start with `tcp:` or `uds:`"
            ))
        }
    }
}

impl core::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Uds(path) => write!(f, "uds:{}", path.display()),
        }
    }
}

/// A connected stream of either transport.
#[derive(Debug)]
pub enum WireStream {
    /// A TCP connection (Nagle disabled: frames are the batching layer).
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Uds(UnixStream),
}

impl WireStream {
    /// Connects to `endpoint`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                stream.set_nodelay(true)?;
                Ok(WireStream::Tcp(stream))
            }
            Endpoint::Uds(path) => Ok(WireStream::Uds(UnixStream::connect(path)?)),
        }
    }

    /// A second handle onto the same connection (for split read/write).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn try_clone(&self) -> io::Result<Self> {
        match self {
            WireStream::Tcp(stream) => stream.try_clone().map(WireStream::Tcp),
            WireStream::Uds(stream) => stream.try_clone().map(WireStream::Uds),
        }
    }

    /// Shuts down both directions, unblocking any reader.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn shutdown(&self) -> io::Result<()> {
        match self {
            WireStream::Tcp(stream) => stream.shutdown(std::net::Shutdown::Both),
            WireStream::Uds(stream) => stream.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(stream) => stream.read(buf),
            WireStream::Uds(stream) => stream.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(stream) => stream.write(buf),
            WireStream::Uds(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            WireStream::Tcp(stream) => stream.flush(),
            WireStream::Uds(stream) => stream.flush(),
        }
    }
}

/// One read attempt's outcome.
#[derive(Debug)]
pub enum Frame<'a> {
    /// A well-formed request; `payload` is `count × KEY_LEN` bytes
    /// borrowed from the reader's buffer.
    Request {
        /// The validated opcode.
        opcode: OpCode,
        /// The raw key array (empty for control frames).
        payload: &'a [u8],
    },
    /// A malformed header. Any drainable payload has already been
    /// consumed; the caller must close the connection after responding
    /// iff [`WireError::drainable_payload`] is `None`.
    Malformed(WireError),
    /// Clean end-of-stream at a frame boundary.
    Closed,
}

/// Reads request frames from a byte stream, reusing one payload buffer.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    payload: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            payload: Vec::new(),
        }
    }

    // lint: hot-path
    /// Reads the next frame.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; a stream that ends mid-frame is
    /// reported as [`io::ErrorKind::UnexpectedEof`].
    pub fn read_frame(&mut self) -> io::Result<Frame<'_>> {
        let mut header = [0u8; HEADER_LEN];
        if !read_exact_or_closed(&mut self.inner, &mut header)? {
            return Ok(Frame::Closed);
        }
        match RequestHeader::decode(&header) {
            Ok(req) => {
                self.payload.resize(req.payload_len(), 0);
                self.inner.read_exact(&mut self.payload)?;
                Ok(Frame::Request {
                    opcode: req.opcode,
                    payload: &self.payload,
                })
            }
            Err(err) => {
                if let Some(drain) = err.drainable_payload() {
                    self.payload.resize(drain, 0);
                    self.inner.read_exact(&mut self.payload)?;
                }
                Ok(Frame::Malformed(err))
            }
        }
    }
}

/// `read_exact` that distinguishes clean EOF before the first byte
/// (`Ok(false)`) from a mid-buffer EOF (`UnexpectedEof` error).
fn read_exact_or_closed<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err),
        }
    }
    Ok(true)
}

// lint: hot-path
/// Appends a complete request frame (header + keys) to `buf`.
pub fn encode_request(buf: &mut Vec<u8>, opcode: OpCode, keys: &[u64]) {
    let header = RequestHeader {
        opcode,
        count: keys.len() as u32,
    };
    buf.extend_from_slice(&header.encode());
    for key in keys {
        buf.extend_from_slice(&key.to_le_bytes());
    }
}

// lint: hot-path
/// Appends a complete response frame to `buf`.
pub fn encode_response(buf: &mut Vec<u8>, status_code: u8, count: u32, payload: &[u8]) {
    let header = ResponseHeader {
        status: status_code,
        count,
    };
    buf.extend_from_slice(&header.encode());
    buf.extend_from_slice(payload);
}

/// One decoded server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Status byte (`0` = success).
    pub status: u8,
    /// Result-bit (or stats-word) count.
    pub count: u32,
    /// Raw payload: outcome bitmap or stats words.
    pub payload: Vec<u8>,
}

impl Reply {
    /// Reads outcome bit `i`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        crate::protocol::bitmap_get(&self.payload, i)
    }

    /// Decodes a stats payload into its `u64` words.
    #[must_use]
    pub fn stats_words(&self) -> Vec<u64> {
        self.payload
            .chunks_exact(8)
            .map(|chunk| {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                u64::from_le_bytes(word)
            })
            .collect()
    }
}

/// A blocking request/response client: one in-flight frame, responses
/// matched by order. Used by `vcf-loadgen`, the smoke tests and benches.
#[derive(Debug)]
pub struct Client {
    stream: WireStream,
    wbuf: Vec<u8>,
}

impl Client {
    /// Connects to a server endpoint.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        Ok(Self {
            stream: WireStream::connect(endpoint)?,
            wbuf: Vec::with_capacity(HEADER_LEN + 256 * KEY_LEN),
        })
    }

    /// Sends one frame and reads its reply.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; a malformed server reply is an
    /// [`io::ErrorKind::InvalidData`] error.
    pub fn request(&mut self, opcode: OpCode, keys: &[u64]) -> io::Result<Reply> {
        self.wbuf.clear();
        encode_request(&mut self.wbuf, opcode, keys);
        self.stream.write_all(&self.wbuf)?;
        self.read_reply(opcode)
    }

    /// Sends a data batch and asserts protocol-level success.
    ///
    /// # Errors
    ///
    /// Transport errors, plus [`io::ErrorKind::InvalidData`] when the
    /// server reports a non-zero status or a count mismatch.
    pub fn data_op(&mut self, opcode: OpCode, keys: &[u64]) -> io::Result<Reply> {
        let reply = self.request(opcode, keys)?;
        if reply.status != crate::protocol::status::OK || reply.count as usize != keys.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "server status {} (count {} vs {} keys sent)",
                    reply.status,
                    reply.count,
                    keys.len()
                ),
            ));
        }
        Ok(reply)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn ping(&mut self) -> io::Result<bool> {
        let reply = self.request(OpCode::Ping, &[])?;
        Ok(reply.status == crate::protocol::status::OK)
    }

    /// Fetches the server's stats words (see `vcf_server::server` docs
    /// for the word layout).
    ///
    /// # Errors
    ///
    /// Transport errors, plus [`io::ErrorKind::InvalidData`] on a
    /// malformed stats reply.
    pub fn stats(&mut self) -> io::Result<Vec<u64>> {
        let reply = self.request(OpCode::Stats, &[])?;
        let words = reply.stats_words();
        if reply.status != crate::protocol::status::OK || words.len() != STATS_WORDS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad stats reply: status {}", reply.status),
            ));
        }
        Ok(words)
    }

    /// Sends raw bytes, bypassing frame encoding (malformed-frame tests).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads one reply frame. The response header does not echo the
    /// opcode (the protocol is strictly one-in-flight per connection),
    /// so the payload length is inferred from the opcode the caller
    /// sent: data replies carry a `⌈count/8⌉`-byte bitmap, stats replies
    /// `count` 8-byte words, pings and errors nothing.
    ///
    /// # Errors
    ///
    /// Transport errors, plus [`io::ErrorKind::InvalidData`] when the
    /// reply header fails to decode or an oversized payload is claimed.
    pub fn read_reply(&mut self, sent: OpCode) -> io::Result<Reply> {
        let mut header = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let resp = ResponseHeader::decode(&header)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        let payload_len = if resp.status == crate::protocol::status::OK {
            match sent {
                OpCode::Insert | OpCode::Lookup | OpCode::Delete => bitmap_len(resp.count as usize),
                OpCode::Stats => resp.count as usize * 8,
                OpCode::Ping => 0,
            }
        } else {
            0
        };
        if payload_len > MAX_BATCH as usize * KEY_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply claims {payload_len} payload bytes"),
            ));
        }
        let mut payload = vec![0u8; payload_len];
        self.stream.read_exact(&mut payload)?;
        Ok(Reply {
            status: resp.status,
            count: resp.count,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{status, MAX_BATCH};
    use std::io::Cursor;

    #[test]
    fn endpoint_parse_round_trips() {
        let tcp = Endpoint::parse("tcp:127.0.0.1:7171").unwrap();
        assert_eq!(tcp, Endpoint::Tcp("127.0.0.1:7171".into()));
        assert_eq!(tcp.to_string(), "tcp:127.0.0.1:7171");
        let uds = Endpoint::parse("uds:/tmp/x.sock").unwrap();
        assert_eq!(uds, Endpoint::Uds(PathBuf::from("/tmp/x.sock")));
        assert_eq!(uds.to_string(), "uds:/tmp/x.sock");
        assert!(Endpoint::parse("http://nope").is_err());
    }

    #[test]
    fn frame_reader_decodes_back_to_back_frames() {
        let mut wire = Vec::new();
        encode_request(&mut wire, OpCode::Insert, &[1, 2, 3]);
        encode_request(&mut wire, OpCode::Ping, &[]);
        encode_request(&mut wire, OpCode::Lookup, &[0xdead_beef]);
        let mut reader = FrameReader::new(Cursor::new(wire));

        match reader.read_frame().unwrap() {
            Frame::Request { opcode, payload } => {
                assert_eq!(opcode, OpCode::Insert);
                let keys: Vec<u64> = payload
                    .chunks_exact(KEY_LEN)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                assert_eq!(keys, vec![1, 2, 3]);
            }
            other => panic!("expected insert frame, got {other:?}"),
        }
        assert!(matches!(
            reader.read_frame().unwrap(),
            Frame::Request {
                opcode: OpCode::Ping,
                payload: &[]
            }
        ));
        assert!(matches!(
            reader.read_frame().unwrap(),
            Frame::Request {
                opcode: OpCode::Lookup,
                ..
            }
        ));
        assert!(matches!(reader.read_frame().unwrap(), Frame::Closed));
        // Closed is sticky: reading again stays Closed, no panic.
        assert!(matches!(reader.read_frame().unwrap(), Frame::Closed));
    }

    #[test]
    fn frame_reader_recovers_after_drainable_garbage() {
        // Unknown opcode with a 2-key payload, then a valid ping: the
        // reader must drain the 16 payload bytes and find the ping.
        let mut wire = Vec::new();
        let bad = RequestHeader {
            opcode: OpCode::Insert,
            count: 2,
        };
        let mut bad_bytes = bad.encode();
        bad_bytes[3] = 0x7f; // corrupt the opcode
        wire.extend_from_slice(&bad_bytes);
        wire.extend_from_slice(&[0u8; 2 * KEY_LEN]);
        encode_request(&mut wire, OpCode::Ping, &[]);

        let mut reader = FrameReader::new(Cursor::new(wire));
        match reader.read_frame().unwrap() {
            Frame::Malformed(err) => {
                assert_eq!(
                    err,
                    WireError::BadOpcode {
                        got: 0x7f,
                        count: 2
                    }
                );
            }
            other => panic!("expected malformed frame, got {other:?}"),
        }
        assert!(matches!(
            reader.read_frame().unwrap(),
            Frame::Request {
                opcode: OpCode::Ping,
                ..
            }
        ));
    }

    #[test]
    fn truncated_header_and_payload_are_unexpected_eof() {
        // 3 bytes of a header.
        let mut reader = FrameReader::new(Cursor::new(vec![0x56u8, 0x46, 1]));
        let err = reader.read_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // Valid header claiming 4 keys, only 1 present.
        let mut wire = Vec::new();
        encode_request(&mut wire, OpCode::Delete, &[1, 2, 3, 4]);
        wire.truncate(HEADER_LEN + KEY_LEN);
        let mut reader = FrameReader::new(Cursor::new(wire));
        let err = reader.read_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_count_is_malformed_without_draining() {
        let mut wire = Vec::new();
        let header = RequestHeader {
            opcode: OpCode::Insert,
            count: 1,
        };
        let mut bytes = header.encode();
        bytes[4..8].copy_from_slice(&(MAX_BATCH + 1).to_le_bytes());
        wire.extend_from_slice(&bytes);
        let mut reader = FrameReader::new(Cursor::new(wire));
        match reader.read_frame().unwrap() {
            Frame::Malformed(err) => assert_eq!(err.drainable_payload(), None),
            other => panic!("expected malformed frame, got {other:?}"),
        }
    }

    #[test]
    fn response_encoding_matches_header_layout() {
        let mut buf = Vec::new();
        encode_response(&mut buf, status::OK, 3, &[0b0000_0101]);
        assert_eq!(buf.len(), HEADER_LEN + 1);
        let header = ResponseHeader::decode(&buf[..HEADER_LEN].try_into().unwrap()).unwrap();
        assert_eq!(header.status, status::OK);
        assert_eq!(header.count, 3);
        assert_eq!(buf[HEADER_LEN], 0b0000_0101);
    }

    #[test]
    fn reply_accessors() {
        let reply = Reply {
            status: status::OK,
            count: 10,
            payload: vec![0b0000_0010, 0b0000_0001],
        };
        assert!(!reply.bit(0));
        assert!(reply.bit(1));
        assert!(reply.bit(8));
        assert!(!reply.bit(9));
        let stats = Reply {
            status: status::OK,
            count: 2,
            payload: [7u64.to_le_bytes(), 9u64.to_le_bytes()].concat(),
        };
        assert_eq!(stats.stats_words(), vec![7, 9]);
    }
}
