//! Wire-codec robustness: property-based round-trips plus a
//! malformed-frame corpus driven through the real frame loop.
//!
//! The contract under test (DESIGN.md §13): a malformed frame never
//! panics the server; it is answered with its error status, and the
//! connection either *recovers* (frame boundary still trustworthy:
//! unknown opcode, zero-length batch, control-with-payload) or *closes
//! cleanly after the error reply* (bad magic, bad version, oversized
//! count — framing can no longer be trusted).

use proptest::prelude::*;
use vcf_server::codec::{encode_request, Frame, FrameReader};
use vcf_server::protocol::{
    status, OpCode, RequestHeader, ResponseHeader, HEADER_LEN, KEY_LEN, MAX_BATCH, REQ_MAGIC,
    WIRE_VERSION,
};
use vcf_server::server::serve_bytes_for_test;
use vcf_server::{build_engine, Endpoint, ServerConfig, ShardExecutor};

fn test_executor() -> ShardExecutor {
    let mut config = ServerConfig::new(Endpoint::Tcp("unused".to_owned()));
    config.slots = 1 << 12;
    config.shard_bits = 2;
    config.seed = 99;
    ShardExecutor::new(build_engine(&config).expect("valid geometry"), 2)
}

fn header_bytes(magic: u16, version: u8, opcode: u8, count: u32) -> [u8; HEADER_LEN] {
    let mut out = [0u8; HEADER_LEN];
    out[0..2].copy_from_slice(&magic.to_le_bytes());
    out[2] = version;
    out[3] = opcode;
    out[4..8].copy_from_slice(&count.to_le_bytes());
    out
}

/// Splits the server's output back into response frames. Error and ping
/// replies are bare headers; data/stats payload lengths are implied by
/// the request stream, which corpus cases know statically.
fn response_statuses(output: &[u8]) -> Vec<(u8, u32)> {
    let mut frames = Vec::new();
    let mut rest = output;
    while rest.len() >= HEADER_LEN {
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&rest[..HEADER_LEN]);
        let resp = ResponseHeader::decode(&header).expect("server output is framed");
        frames.push((resp.status, resp.count));
        let payload = if resp.status == status::OK && resp.count > 0 {
            // Corpus cases only reach OK on data frames (bitmap) — the
            // stats shape (count*8) is covered by unit tests.
            resp.count.div_ceil(8) as usize
        } else {
            0
        };
        rest = &rest[HEADER_LEN + payload..];
    }
    assert!(rest.is_empty(), "trailing partial response frame");
    frames
}

#[test]
fn corpus_truncated_header_closes_without_response() {
    let exec = test_executor();
    for cut in 1..HEADER_LEN {
        let valid = RequestHeader {
            opcode: OpCode::Insert,
            count: 2,
        }
        .encode();
        let served = serve_bytes_for_test(&exec, &valid[..cut]);
        assert_eq!(served.error, Some(std::io::ErrorKind::UnexpectedEof));
        assert!(served.output.is_empty(), "no reply to a partial header");
        assert_eq!(served.metrics.frames, 0);
    }
}

#[test]
fn corpus_truncated_payload_closes_without_response() {
    let exec = test_executor();
    let mut input = Vec::new();
    encode_request(&mut input, OpCode::Insert, &[1, 2, 3, 4]);
    input.truncate(HEADER_LEN + 2 * KEY_LEN + 3);
    let served = serve_bytes_for_test(&exec, &input);
    assert_eq!(served.error, Some(std::io::ErrorKind::UnexpectedEof));
    assert!(served.output.is_empty());
}

#[test]
fn corpus_bad_magic_answers_then_closes() {
    let exec = test_executor();
    let mut input = header_bytes(0x4242, WIRE_VERSION, OpCode::Ping as u8, 0).to_vec();
    encode_request(&mut input, OpCode::Ping, &[]); // never reached
    let served = serve_bytes_for_test(&exec, &input);
    assert_eq!(served.error, None);
    assert_eq!(
        response_statuses(&served.output),
        vec![(status::BAD_MAGIC, 0)]
    );
    assert_eq!(served.metrics.proto_errors, 1);
}

#[test]
fn corpus_bad_version_answers_then_closes() {
    let exec = test_executor();
    let mut input = header_bytes(REQ_MAGIC, WIRE_VERSION + 1, OpCode::Lookup as u8, 1).to_vec();
    input.extend_from_slice(&7u64.to_le_bytes());
    let served = serve_bytes_for_test(&exec, &input);
    assert_eq!(served.error, None);
    assert_eq!(
        response_statuses(&served.output),
        vec![(status::BAD_VERSION, 0)]
    );
}

#[test]
fn corpus_oversized_count_answers_then_closes() {
    let exec = test_executor();
    let mut input =
        header_bytes(REQ_MAGIC, WIRE_VERSION, OpCode::Insert as u8, MAX_BATCH + 1).to_vec();
    // No payload follows; the server must refuse to drain it anyway.
    encode_request(&mut input, OpCode::Ping, &[]);
    let served = serve_bytes_for_test(&exec, &input);
    assert_eq!(served.error, None);
    assert_eq!(
        response_statuses(&served.output),
        vec![(status::OVERSIZED_BATCH, 0)]
    );
}

#[test]
fn corpus_zero_length_batch_answers_and_recovers() {
    let exec = test_executor();
    for opcode in [OpCode::Insert, OpCode::Lookup, OpCode::Delete] {
        let mut input = header_bytes(REQ_MAGIC, WIRE_VERSION, opcode as u8, 0).to_vec();
        encode_request(&mut input, OpCode::Lookup, &[5]);
        let served = serve_bytes_for_test(&exec, &input);
        assert_eq!(served.error, None);
        assert_eq!(
            response_statuses(&served.output),
            vec![(status::EMPTY_BATCH, 0), (status::OK, 1)],
            "{opcode:?}: lookup after the rejected empty batch still served"
        );
    }
}

#[test]
fn corpus_unknown_opcode_drains_payload_and_recovers() {
    let exec = test_executor();
    let mut input = header_bytes(REQ_MAGIC, WIRE_VERSION, 0xEE, 3).to_vec();
    input.extend_from_slice(&[0xAA; 3 * KEY_LEN]); // drained, not parsed
    encode_request(&mut input, OpCode::Lookup, &[5, 6]);
    let served = serve_bytes_for_test(&exec, &input);
    assert_eq!(served.error, None);
    assert_eq!(
        response_statuses(&served.output),
        vec![(status::BAD_OPCODE, 0), (status::OK, 2)]
    );
    assert_eq!(served.metrics.proto_errors, 1);
    assert_eq!(served.metrics.frames, 1);
}

#[test]
fn corpus_control_payload_drains_and_recovers() {
    let exec = test_executor();
    for opcode in [OpCode::Ping, OpCode::Stats] {
        let mut input = header_bytes(REQ_MAGIC, WIRE_VERSION, opcode as u8, 2).to_vec();
        input.extend_from_slice(&[0x55; 2 * KEY_LEN]);
        encode_request(&mut input, OpCode::Insert, &[11]);
        let served = serve_bytes_for_test(&exec, &input);
        assert_eq!(served.error, None);
        assert_eq!(
            response_statuses(&served.output),
            vec![(status::CONTROL_PAYLOAD, 0), (status::OK, 1)],
            "{opcode:?} with payload must drain and recover"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of well-formed data frames round-trips through the
    /// frame reader: same opcodes, same keys, then a clean close.
    #[test]
    fn request_frames_round_trip(
        frames in prop::collection::vec(
            (0u8..3, prop::collection::vec(any::<u64>(), 1..40)),
            1..12,
        )
    ) {
        let opcode_of = |tag: u8| match tag {
            0 => OpCode::Insert,
            1 => OpCode::Lookup,
            _ => OpCode::Delete,
        };
        let mut wire = Vec::new();
        for (tag, keys) in &frames {
            encode_request(&mut wire, opcode_of(*tag), keys);
        }
        let mut reader = FrameReader::new(wire.as_slice());
        for (tag, keys) in &frames {
            match reader.read_frame().expect("stream intact") {
                Frame::Request { opcode, payload } => {
                    prop_assert_eq!(opcode, opcode_of(*tag));
                    let decoded: Vec<u64> = payload
                        .chunks_exact(KEY_LEN)
                        .map(|c| {
                            let mut b = [0u8; 8];
                            b.copy_from_slice(c);
                            u64::from_le_bytes(b)
                        })
                        .collect();
                    prop_assert_eq!(&decoded, keys);
                }
                other => prop_assert!(false, "expected request, got {:?}", other),
            }
        }
        prop_assert!(matches!(reader.read_frame().expect("eof"), Frame::Closed));
    }

    /// Header decoding is total: any 8 bytes either decode or classify,
    /// and the drainable length never exceeds the MAX_BATCH payload cap.
    #[test]
    fn header_decode_is_total(bytes in prop::collection::vec(any::<u8>(), HEADER_LEN..=HEADER_LEN)) {
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&bytes);
        match RequestHeader::decode(&header) {
            Ok(req) => {
                prop_assert!(req.count <= MAX_BATCH);
                prop_assert_eq!(req.payload_len(), req.count as usize * KEY_LEN);
            }
            Err(err) => {
                if let Some(drain) = err.drainable_payload() {
                    prop_assert!(drain <= MAX_BATCH as usize * KEY_LEN);
                }
                prop_assert!(err.status() != status::OK);
            }
        }
    }

    /// Fuzzing the whole frame loop with arbitrary bytes: the server
    /// never panics, and everything it writes back is framed responses.
    #[test]
    fn arbitrary_bytes_never_panic_the_frame_loop(
        bytes in prop::collection::vec(any::<u8>(), 0..200)
    ) {
        let exec = test_executor();
        let served = serve_bytes_for_test(&exec, &bytes);
        // If the server replied at all, the reply starts with a
        // well-formed response header carrying a defined status. (Full
        // framing is checked by the corpus cases; fuzz input can form
        // valid stats requests whose payload length a byte-level parser
        // cannot infer.)
        if served.output.len() >= HEADER_LEN {
            let mut header = [0u8; HEADER_LEN];
            header.copy_from_slice(&served.output[..HEADER_LEN]);
            let resp = ResponseHeader::decode(&header).expect("reply framed");
            prop_assert!(resp.status <= status::INTERNAL);
        } else {
            prop_assert!(served.output.is_empty());
        }
    }
}
