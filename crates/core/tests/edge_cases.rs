//! Edge-case integration tests for the VCF family: extreme geometries,
//! boundary parameters, and cross-variant consistency.

use vcf_core::{CuckooConfig, Dvcf, DynamicVcf, KVcf, MaskPair, VerticalCuckooFilter};
use vcf_hash::HashKind;
use vcf_traits::{Filter, FilterExt};

fn key(i: u64) -> Vec<u8> {
    format!("edge-{i}").into_bytes()
}

#[test]
fn minimal_table_four_buckets() {
    // The smallest legal geometry: 4 buckets × 4 slots.
    let mut f = VerticalCuckooFilter::new(CuckooConfig::new(4).with_seed(1)).unwrap();
    let mut stored = 0;
    for i in 0..16u64 {
        if f.insert(&key(i)).is_ok() {
            stored += 1;
        }
    }
    assert!(
        stored >= 12,
        "tiny table should still fill most slots: {stored}"
    );
    for i in 0..16u64 {
        // No false negatives for whatever was acknowledged.
        if f.contains(&key(i)) {
            continue;
        }
    }
}

#[test]
fn single_slot_buckets() {
    // b = 1: pure cuckoo hashing, hardest case for load factor.
    let config = CuckooConfig::new(1 << 10)
        .with_slots_per_bucket(1)
        .with_seed(2);
    let mut f = VerticalCuckooFilter::new(config).unwrap();
    let n = 1 << 10;
    let keys: Vec<Vec<u8>> = (0..n).map(key).collect();
    let stored = f.insert_best_effort(keys.iter().map(Vec::as_slice));
    // Four candidates with b=1 behave like 4-ary cuckoo hashing: ~95%+.
    assert!(
        stored as f64 / n as f64 > 0.85,
        "b=1 load factor too low: {}",
        stored as f64 / n as f64
    );
    // Every acknowledged item must be present; rejected ones may or may
    // not false-positive, so present >= stored.
    assert!(f.count_present(keys.iter().map(Vec::as_slice)) >= stored);
}

#[test]
fn eight_slot_buckets() {
    let config = CuckooConfig::new(1 << 7)
        .with_slots_per_bucket(8)
        .with_seed(3);
    let mut f = VerticalCuckooFilter::new(config).unwrap();
    assert_eq!(f.capacity(), (1 << 7) * 8);
    for i in 0..900u64 {
        f.insert(&key(i)).unwrap();
    }
    for i in 0..900u64 {
        assert!(f.contains(&key(i)));
    }
}

#[test]
fn minimal_fingerprint_two_bits() {
    // f = 2: only 3 distinct non-zero fingerprints. Massive collisions,
    // but the structure must stay correct (no false negatives).
    let config = CuckooConfig::new(1 << 8)
        .with_fingerprint_bits(2)
        .with_seed(4);
    let mut f = VerticalCuckooFilter::new(config).unwrap();
    let mut acknowledged = Vec::new();
    for i in 0..600u64 {
        if f.insert(&key(i)).is_ok() {
            acknowledged.push(i);
        }
    }
    for i in acknowledged {
        assert!(f.contains(&key(i)), "f=2: lost {i}");
    }
}

#[test]
fn maximal_fingerprint_thirty_two_bits() {
    let config = CuckooConfig::new(1 << 8)
        .with_fingerprint_bits(32)
        .with_seed(5);
    let mut f = VerticalCuckooFilter::new(config).unwrap();
    for i in 0..900u64 {
        f.insert(&key(i)).unwrap();
    }
    for i in 0..900u64 {
        assert!(f.contains(&key(i)));
    }
    // With 32-bit fingerprints, aliens virtually never false-positive.
    let fp = (10_000..40_000u64).filter(|i| f.contains(&key(*i))).count();
    assert!(fp <= 1, "f=32 should have ~zero false positives, got {fp}");
}

#[test]
fn dvcf_delta_t_boundaries() {
    // Δt = 0 (pure CF behaviour) and Δt = T/2 (pure VCF behaviour) are
    // both legal and functional.
    for delta_t in [0u32, 1 << 13] {
        let mut f = Dvcf::new(CuckooConfig::new(1 << 8).with_seed(6), delta_t).unwrap();
        for i in 0..700u64 {
            f.insert(&key(i)).unwrap();
        }
        for i in 0..700u64 {
            assert!(f.contains(&key(i)), "Δt={delta_t}: lost {i}");
        }
    }
}

#[test]
fn kvcf_k2_and_k3_degenerate_paths() {
    for k in [2usize, 3] {
        let config = CuckooConfig::new(1 << 7)
            .with_fingerprint_bits(16)
            .with_seed(7);
        let mut f = KVcf::new(config, k).unwrap();
        for i in 0..400u64 {
            let _ = f.insert(&key(i));
        }
        let present = (0..400u64).filter(|i| f.contains(&key(*i))).count();
        let stored = f.len();
        assert!(
            present >= stored,
            "k={k}: acknowledged items must be present"
        );
    }
}

#[test]
fn empty_key_and_huge_key() {
    let mut f = VerticalCuckooFilter::new(CuckooConfig::new(1 << 6).with_seed(8)).unwrap();
    let huge = vec![0xabu8; 1 << 16];
    f.insert(b"").unwrap();
    f.insert(&huge).unwrap();
    assert!(f.contains(b""));
    assert!(f.contains(&huge));
    assert!(f.delete(b""));
    assert!(!f.contains(b""));
    assert!(
        f.contains(&huge),
        "deleting the empty key must not affect others"
    );
}

#[test]
fn all_hash_kinds_cross_variant() {
    for kind in HashKind::ALL {
        let config = CuckooConfig::new(1 << 7).with_hash(kind).with_seed(9);
        let mut vcf = VerticalCuckooFilter::new(config).unwrap();
        let mut dvcf = Dvcf::with_r(config, 0.5).unwrap();
        let kvcf_config = config.with_fingerprint_bits(16);
        let mut kvcf = KVcf::new(kvcf_config, 5).unwrap();
        for i in 0..300u64 {
            vcf.insert(&key(i)).unwrap();
            dvcf.insert(&key(i)).unwrap();
            kvcf.insert(&key(i)).unwrap();
        }
        for i in 0..300u64 {
            assert!(vcf.contains(&key(i)), "{kind}: VCF lost {i}");
            assert!(dvcf.contains(&key(i)), "{kind}: DVCF lost {i}");
            assert!(kvcf.contains(&key(i)), "{kind}: k-VCF lost {i}");
        }
    }
}

#[test]
fn explicit_mask_pairs_work_end_to_end() {
    // A hand-picked non-contiguous bm1.
    let masks = MaskPair::from_bm1(0b10_1001_0110_0011, 14).unwrap();
    let config = CuckooConfig::new(1 << 10).with_seed(10);
    let mut f = VerticalCuckooFilter::with_masks(config, masks, "custom".into()).unwrap();
    let n = f.capacity() as u64;
    let mut stored = 0u64;
    for i in 0..n {
        if f.insert(&key(i)).is_ok() {
            stored += 1;
        }
    }
    assert!(
        stored as f64 / n as f64 > 0.99,
        "custom masks should behave like VCF"
    );
    assert_eq!(f.name(), "custom");
}

#[test]
fn clone_is_independent() {
    let mut a = VerticalCuckooFilter::new(CuckooConfig::new(1 << 6).with_seed(11)).unwrap();
    a.insert(b"shared").unwrap();
    let mut b = a.clone();
    b.insert(b"only-in-b").unwrap();
    a.delete(b"shared");
    assert!(!a.contains(b"shared"));
    assert!(b.contains(b"shared"), "clone must not share storage");
    assert!(b.contains(b"only-in-b"));
    assert!(!a.contains(b"only-in-b"));
}

#[test]
fn dynamic_vcf_with_tiny_links_and_single_max_link() {
    let template = CuckooConfig::new(4).with_seed(12);
    let mut f = DynamicVcf::with_max_links(template, 1).unwrap();
    let mut saw_full = false;
    for i in 0..64u64 {
        if f.insert(&key(i)).is_err() {
            saw_full = true;
        }
    }
    assert!(saw_full, "single tiny link must fill");
    assert_eq!(f.links(), 1);
}

#[test]
fn zero_kicks_vcf_still_functions() {
    // MAX = 0 on the 4-candidate VCF: insertion succeeds only when a
    // candidate has a free slot, no relocation ever.
    let config = CuckooConfig::new(1 << 8).with_max_kicks(0).with_seed(13);
    let mut f = VerticalCuckooFilter::new(config).unwrap();
    let mut stored = 0u64;
    for i in 0..(f.capacity() as u64) {
        if f.insert(&key(i)).is_ok() {
            stored += 1;
        }
    }
    assert_eq!(f.stats().kicks, 0);
    let alpha = stored as f64 / f.capacity() as f64;
    // Four candidates, b = 4, no kicks: comfortably over 90 %.
    assert!(alpha > 0.90, "MAX=0 VCF load factor {alpha}");
}
