//! `ConcurrentVcf` — a lock-free(-reader) concurrent Vertical Cuckoo
//! Filter on atomic bucket words.
//!
//! The sequential [`VerticalCuckooFilter`](crate::VerticalCuckooFilter)
//! owns its table through `&mut self`; the only way to share it was a
//! coarse lock per shard. This module shares one table between threads:
//!
//! * **Insert (fast path)** is lock-free: an empty lane is claimed with a
//!   single-word CAS ([`AtomicFingerprintTable::try_claim`]). Threads
//!   claiming different lanes of the same word retry each other's CAS but
//!   never block.
//! * **Relocation** (the kick walk) is the only part that locks, and it
//!   locks exactly two buckets at a time, in ascending index order, for
//!   one copy-then-clear move. The item being moved is visible in the
//!   source or destination bucket at every instant — relocation *never*
//!   makes an item homeless, so a failed walk needs no undo log.
//! * **Lookup** is wait-free in the common case: probe the four candidate
//!   buckets with the SWAR kernels on `Relaxed`-loaded words, and only on
//!   a *miss* validate per-bucket seqlock versions to rule out the
//!   classic "moved behind the probe" false negative. A bounded number of
//!   optimistic retries falls back to briefly locking the candidates.
//! * **Delete** locks the candidate buckets (ascending order) so it can
//!   never race a relocation of the same fingerprint into removing two
//!   copies (or zero).
//!
//! Theorem 1's closure is what makes the two-bucket lock sufficient: the
//! four candidate buckets of a fingerprint form the XOR coset
//! `B1 ⊕ {0, o1, o2, o1⊕o2}`, so any relocation of a fingerprint a
//! deleter might alias moves it *within the deleter's own candidate set*,
//! and holding all four candidate locks excludes every such move.
//!
//! See `DESIGN.md` §7 for the full memory-ordering argument.

use crate::bitmask::MaskPair;
use crate::config::CuckooConfig;
use crate::key;
use crate::vertical::{Candidates, VerticalParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use vcf_hash::{mix64, HashKind};
use vcf_table::AtomicFingerprintTable;
use vcf_traits::{BuildError, ConcurrentFilter, Counters, Filter, InsertError, Stats};

/// Maximum length of one unlocked relocation path. Longer cascades are
/// split across retries of the outer kick loop, so this bounds how much
/// speculative (unlocked) scanning a single attempt performs, not how far
/// an insert can relocate in total.
const MAX_PATH: usize = 5;

/// Optimistic lookup retries before falling back to locking the
/// candidate buckets.
const CONTAINS_RETRIES: usize = 8;

/// One hop of a relocation chain: `(bucket, slot, fingerprint)` — the
/// fingerprint observed in that slot at scan time.
type PathStep = (usize, usize, u32);

/// A thread-safe Vertical Cuckoo Filter: every operation takes `&self`,
/// so the filter can sit in an `Arc` and be hammered from many threads.
///
/// Functionally it matches [`VerticalCuckooFilter`]: the same vertical
/// candidate derivation (`B1`, `B1⊕o1`, `B1⊕o2`, `B1⊕o1⊕o2`), the same
/// no-false-negative and multiset-deletion guarantees, and the same FPR
/// model. The differences are operational:
///
/// * `insert`/`delete`/`contains` take `&self` ([`ConcurrentFilter`]).
/// * The relocation walk is path-based (libcuckoo-style): it first finds
///   a chain of moves ending in an empty slot *without* locking, then
///   executes the chain in reverse so each move copies into an
///   already-empty slot. A concurrent mutation invalidates the chain and
///   the walk retries; the table is consistent at every step.
/// * Occupancy accounting is exact: `len()` equals successful inserts
///   minus successful deletes (relocation is occupancy-neutral).
/// * The geometry must word-align: every lane has to fit inside one
///   `u64` word so it can be CASed (e.g. 4 slots × 14 bits works; 8
///   slots × 12 bits straddles and is rejected at construction).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use vcf_core::{ConcurrentVcf, CuckooConfig};
///
/// let filter = Arc::new(ConcurrentVcf::new(CuckooConfig::new(1 << 8))?);
/// let handles: Vec<_> = (0..4u32)
///     .map(|t| {
///         let filter = Arc::clone(&filter);
///         std::thread::spawn(move || {
///             for i in 0..100u32 {
///                 filter.insert(&(t * 1000 + i).to_le_bytes()).unwrap();
///             }
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// assert_eq!(filter.len(), 400);
/// assert!(filter.contains(&1042u32.to_le_bytes()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ConcurrentVcf {
    table: AtomicFingerprintTable,
    /// Per-bucket seqlock word: even = unlocked, odd = locked. Bumped
    /// twice per critical section, so an unchanged even value brackets a
    /// quiescent window.
    versions: Vec<AtomicU32>,
    params: VerticalParams,
    masks: MaskPair,
    hash: HashKind,
    max_kicks: u32,
    seed: u64,
    /// Per-walk PRNG derivation counter; `fetch_add` gives each
    /// relocation attempt a distinct deterministic stream.
    rng_salt: AtomicU64,
    counters: Counters,
    label: String,
}

impl ConcurrentVcf {
    /// Builds a standard concurrent VCF (balanced bitmasks) from `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry, including lane
    /// layouts that straddle a 64-bit word boundary (those cannot be
    /// updated with a single CAS).
    pub fn new(config: CuckooConfig) -> Result<Self, BuildError> {
        let masks = MaskPair::balanced(config.fingerprint_bits)?;
        Self::with_masks(config, masks, "ConcurrentVCF".to_owned())
    }

    /// Builds the concurrent analogue of `IVCF_i`: `ones` one-bits in the
    /// first bitmask.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry or a degenerate mask.
    pub fn with_mask_ones(config: CuckooConfig, ones: u32) -> Result<Self, BuildError> {
        let masks = MaskPair::with_ones(ones, config.fingerprint_bits)?;
        Self::with_masks(config, masks, format!("ConcurrentIVCF{ones}"))
    }

    /// Builds a concurrent VCF with an explicit mask pair.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry.
    pub fn with_masks(
        config: CuckooConfig,
        masks: MaskPair,
        label: String,
    ) -> Result<Self, BuildError> {
        config.validate()?;
        let table = AtomicFingerprintTable::new(
            config.buckets,
            config.slots_per_bucket,
            config.fingerprint_bits,
        )?;
        let params = VerticalParams::new(masks, config.buckets);
        let versions = (0..config.buckets).map(|_| AtomicU32::new(0)).collect();
        Ok(Self {
            table,
            versions,
            params,
            masks,
            hash: config.hash,
            max_kicks: config.max_kicks,
            seed: config.seed,
            rng_salt: AtomicU64::new(config.seed),
            counters: Counters::new(),
            label,
        })
    }

    /// The bitmask pair in use.
    pub fn masks(&self) -> MaskPair {
        self.masks
    }

    /// The effective vertical-hashing parameters.
    pub fn params(&self) -> VerticalParams {
        self.params
    }

    /// Expected probability `r` of four distinct candidate buckets
    /// (Equ. 8) for this filter's effective mask geometry.
    pub fn expected_r(&self) -> f64 {
        let index_bits = (self.table.buckets().trailing_zeros()).max(2);
        match self.masks.restricted_to(index_bits) {
            Some(m) => m.expected_r(),
            None => 0.0,
        }
    }

    /// Number of buckets `m`.
    pub fn buckets(&self) -> usize {
        self.table.buckets()
    }

    /// Slots per bucket `b`.
    pub fn slots_per_bucket(&self) -> usize {
        self.table.slots_per_bucket()
    }

    /// Fingerprint width `f` in bits.
    pub fn fingerprint_bits(&self) -> u32 {
        self.table.fingerprint_bits()
    }

    /// Heap bytes used by the fingerprint words plus the seqlock array.
    pub fn storage_bytes(&self) -> usize {
        self.table.storage_bytes() + self.versions.len() * std::mem::size_of::<AtomicU32>()
    }

    /// The hash function in use.
    pub fn hash_kind(&self) -> HashKind {
        self.hash
    }

    /// The relocation threshold `MAX`.
    pub fn max_kicks(&self) -> u32 {
        self.max_kicks
    }

    /// The PRNG seed the filter was configured with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Occupancy of the slot table — `α` as the paper measures it.
    pub fn table_load_factor(&self) -> f64 {
        self.table.load_factor()
    }

    #[inline]
    fn key_of(&self, item: &[u8]) -> (u32, usize) {
        key::hash_item(
            self.hash,
            item,
            self.fingerprint_bits(),
            self.params.index_mask(),
        )
    }

    #[inline]
    fn candidates_of(&self, fingerprint: u32, b1: usize) -> Candidates {
        let hfp = self.hash.hash_fingerprint(fingerprint);
        self.params.candidates(b1, hfp)
    }

    /// Distinct candidate buckets in ascending order — the canonical lock
    /// acquisition order for multi-bucket critical sections.
    fn distinct_sorted(cands: &Candidates) -> ([usize; 4], usize) {
        let mut sorted = cands.buckets;
        sorted.sort_unstable();
        let mut out = [usize::MAX; 4];
        debug_assert!(sorted.len() <= out.len(), "at most 4 candidate buckets");
        let mut len = 0;
        for &b in &sorted {
            if len == 0 || out[len - 1] != b {
                out[len] = b;
                len += 1;
            }
        }
        (out, len)
    }

    // ---- per-bucket seqlock -------------------------------------------

    /// Acquires `bucket`'s lock by CASing its version from even to odd.
    ///
    /// The success ordering is `Acquire`, which keeps the critical
    /// section's accesses from floating above the version bump; paired
    /// with the `Release` in [`Self::unlock`], the version word brackets
    /// the section for optimistic readers.
    fn lock(&self, bucket: usize) {
        debug_assert!(bucket < self.versions.len());
        let v = &self.versions[bucket];
        loop {
            // CAS pre-read (checked structurally by seqlock-protocol):
            // the compare_exchange's Acquire success ordering is what
            // synchronizes, this load only picks the expected value.
            let cur = v.load(Ordering::Relaxed);
            if cur & 1 == 0
                && v.compare_exchange_weak(
                    cur,
                    cur.wrapping_add(1),
                    Ordering::Acquire,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return;
            }
            std::hint::spin_loop();
        }
    }

    /// Releases `bucket`'s lock, returning the version to even.
    fn unlock(&self, bucket: usize) {
        debug_assert!(bucket < self.versions.len());
        self.versions[bucket].fetch_add(1, Ordering::Release);
    }

    /// Locks two buckets in ascending index order (one CAS if equal).
    /// Every multi-bucket section in this module uses the same global
    /// ascending order, so lock acquisition cannot deadlock.
    fn lock_pair(&self, a: usize, b: usize) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.lock(lo);
        if hi != lo {
            self.lock(hi);
        }
    }

    fn unlock_pair(&self, a: usize, b: usize) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if hi != lo {
            self.unlock(hi);
        }
        self.unlock(lo);
    }

    // ---- insert -------------------------------------------------------

    /// Inserts `item`; lock-free when any candidate bucket has room.
    ///
    /// # Errors
    ///
    /// Returns [`InsertError::Full`] when `max_kicks` relocation attempts
    /// cannot free a candidate slot.
    pub fn insert(&self, item: &[u8]) -> Result<(), InsertError> {
        let (fingerprint, b1) = self.key_of(item);
        let hfp = self.hash.hash_fingerprint(fingerprint);
        self.counters.add_hashes(2); // hash(x) + hash(η)
        let cands = self.params.candidates(b1, hfp);
        let (distinct, distinct_len) = Self::distinct_sorted(&cands);
        let slots = self.table.slots_per_bucket() as u64;

        let mut probes = 0u64;
        let mut kicks = 0u64;
        let mut rng: Option<SmallRng> = None;
        loop {
            // Fast path: CAS-claim an empty lane in any candidate bucket.
            // Re-run each round — concurrent deletes may free slots while
            // we are path-hunting.
            for &bucket in &distinct[..distinct_len] {
                probes += slots;
                if self.table.try_claim(bucket, fingerprint).is_some() {
                    self.counters.add_kicks(kicks);
                    self.counters.record_insert(probes, 4 + 3 * kicks);
                    return Ok(());
                }
            }
            if kicks >= u64::from(self.max_kicks) {
                self.counters.add_kicks(kicks);
                self.counters.record_insert(probes, 4 + 3 * kicks);
                self.counters.add_failed_insert();
                return Err(InsertError::Full { kicks });
            }

            let rng = rng.get_or_insert_with(|| {
                let salt = self.rng_salt.fetch_add(1, Ordering::Relaxed);
                SmallRng::seed_from_u64(mix64(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            });
            match self.find_path(&cands, rng, &mut probes) {
                Some((path, final_dst)) => {
                    kicks += path.len() as u64;
                    self.counters.add_hashes(path.len() as u64);
                    if self.execute_path(&path, final_dst, fingerprint) {
                        self.counters.add_kicks(kicks);
                        self.counters.record_insert(probes, 4 + 3 * kicks);
                        return Ok(());
                    }
                    // A concurrent mutation invalidated the chain; the
                    // executed prefix (if any) already re-homed its
                    // fingerprints consistently. Retry from scratch.
                }
                None => kicks += 1,
            }
        }
    }

    /// Speculatively (without locks) finds a relocation chain: a sequence
    /// of `(bucket, slot, fingerprint)` moves where each fingerprint can
    /// hop to the *next* entry's bucket, ending in `final_dst` which had
    /// an empty slot at scan time. Returns `None` if no chain of length
    /// ≤ [`MAX_PATH`] was found on this walk.
    fn find_path(
        &self,
        cands: &Candidates,
        rng: &mut SmallRng,
        probes: &mut u64,
    ) -> Option<(Vec<PathStep>, usize)> {
        let slots = self.table.slots_per_bucket();
        let mut cur = cands.buckets[rng.gen_range(0..4)];
        let mut path = Vec::with_capacity(MAX_PATH);
        for _ in 0..MAX_PATH {
            let slot = rng.gen_range(0..slots);
            let victim = self.table.get(cur, slot);
            if victim == 0 {
                // `cur` has room after all (someone deleted): end the
                // chain here; the previous hop claims into `cur`.
                return Some((path, cur));
            }
            path.push((cur, slot, victim));
            let alts = self
                .params
                .alternates(cur, self.hash.hash_fingerprint(victim));
            *probes += 3 * slots as u64;
            if let Some(&alt) = alts
                .iter()
                .find(|&&a| a != cur && !self.table.bucket_is_full(a))
            {
                return Some((path, alt));
            }
            // All of the victim's alternates are full too: walk onward
            // through a random one and kick deeper.
            let choices: Vec<usize> = alts.iter().copied().filter(|&a| a != cur).collect();
            if choices.is_empty() {
                // Degenerate masks (offsets all zero): nowhere to go.
                return None;
            }
            cur = choices[rng.gen_range(0..choices.len())];
        }
        None
    }

    /// Executes a relocation chain in reverse: the last fingerprint moves
    /// into the empty slot first, freeing its own slot for its
    /// predecessor, and so on; the head move installs `new_fp` into the
    /// vacated slot in the same CAS that evicts the head victim. Every
    /// move holds the two bucket locks involved, so each fingerprint is
    /// continuously visible in source or destination. Returns `false`
    /// (leaving a consistent table) if any move's precondition was
    /// invalidated by a concurrent mutation.
    fn execute_path(&self, path: &[PathStep], final_dst: usize, new_fp: u32) -> bool {
        debug_assert!(path.iter().all(|step| step.0 < self.versions.len()));
        for i in (0..path.len()).rev() {
            let (src_bucket, src_slot, fp) = path[i];
            let dst_bucket = if i + 1 < path.len() {
                path[i + 1].0
            } else {
                final_dst
            };
            let replacement = if i == 0 { new_fp } else { 0 };
            if !self.move_one(src_bucket, src_slot, fp, dst_bucket, replacement) {
                return false;
            }
        }
        // An empty chain means `find_path` saw an empty slot in a
        // candidate bucket; let the caller's fast path re-claim it.
        !path.is_empty()
    }

    /// One locked relocation hop: copy `fp` from `(src_bucket, src_slot)`
    /// into an empty slot of `dst_bucket`, then overwrite the source lane
    /// with `replacement` (`0` for intermediate hops, the inserted
    /// fingerprint for the head hop). Fails without side effects when the
    /// source lane changed or `dst_bucket` filled up since path
    /// discovery.
    fn move_one(
        &self,
        src_bucket: usize,
        src_slot: usize,
        fp: u32,
        dst_bucket: usize,
        replacement: u32,
    ) -> bool {
        self.lock_pair(src_bucket, dst_bucket);
        let ok = 'section: {
            if self.table.get(src_bucket, src_slot) != fp {
                break 'section false;
            }
            let Some(claimed) = self.table.try_claim(dst_bucket, fp) else {
                break 'section false;
            };
            // Both bucket locks are held and the source lane re-validated
            // above; lock-free claims only write empty lanes, so the
            // source lane (non-zero) cannot change and the replace must
            // succeed. Undo the claim defensively if it somehow fails.
            if self
                .table
                .replace_expect(src_bucket, src_slot, fp, replacement)
            {
                break 'section true;
            }
            debug_assert!(false, "source lane changed under two-bucket lock");
            let undone = self.table.replace_expect(dst_bucket, claimed, fp, 0);
            debug_assert!(undone, "claimed lane changed under bucket lock");
            false
        };
        self.unlock_pair(src_bucket, dst_bucket);
        ok
    }

    // ---- lookup -------------------------------------------------------

    /// Membership probe for an already-derived key. Wait-free on hits;
    /// misses validate the candidate buckets' seqlock versions so a
    /// relocation hopping the fingerprint "behind" the probe order cannot
    /// manufacture a false negative.
    fn contains_key(&self, fingerprint: u32, cands: &Candidates) -> bool {
        let (distinct, distinct_len) = Self::distinct_sorted(cands);
        let distinct = &distinct[..distinct_len];
        debug_assert!(distinct.iter().all(|&b| b < self.versions.len()));
        let slots = self.table.slots_per_bucket() as u64;

        let mut before = [0u32; 4];
        for _attempt in 0..CONTAINS_RETRIES {
            let mut stable = true;
            for (i, &bucket) in distinct.iter().enumerate() {
                let v = self.versions[bucket].load(Ordering::Acquire);
                before[i] = v;
                stable &= v & 1 == 0;
            }
            let mut probes = 0u64;
            for &bucket in distinct {
                probes += slots;
                if self.table.contains(bucket, fingerprint) {
                    self.counters.record_lookup(probes, distinct_len as u64);
                    return true;
                }
            }
            // Miss: only definitive if no candidate bucket was locked or
            // relocated while we probed. The fence orders the probe loads
            // before the version re-reads.
            fence(Ordering::Acquire);
            if stable
                && distinct
                    .iter()
                    .enumerate()
                    // Validation re-read paired with the fence(Acquire)
                    // above (Boehm's seqlock pattern, checked structurally
                    // by the seqlock-protocol rule).
                    .all(|(i, &bucket)| self.versions[bucket].load(Ordering::Relaxed) == before[i])
            {
                self.counters.record_lookup(probes, distinct_len as u64);
                return false;
            }
            std::hint::spin_loop();
        }

        // Heavy contention on these buckets: take the locks (ascending
        // order — same global order as relocation and delete) and decide.
        for &bucket in distinct {
            self.lock(bucket);
        }
        let mut probes = 0u64;
        let mut found = false;
        for &bucket in distinct {
            probes += slots;
            if self.table.contains(bucket, fingerprint) {
                found = true;
                break;
            }
        }
        for &bucket in distinct.iter().rev() {
            self.unlock(bucket);
        }
        self.counters.record_lookup(probes, distinct_len as u64);
        found
    }

    /// Tests membership of `item`. No false negatives for items whose
    /// insertion happened-before this call.
    pub fn contains(&self, item: &[u8]) -> bool {
        let (fingerprint, b1) = self.key_of(item);
        let cands = self.candidates_of(fingerprint, b1);
        self.contains_key(fingerprint, &cands)
    }

    /// Batched lookup: hashes every item up front, touching candidate
    /// buckets to overlap cache misses (same scheme as the sequential
    /// VCF), then probes each item optimistically.
    pub fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        let mut keys = Vec::with_capacity(items.len());
        for item in items {
            let (fingerprint, b1) = self.key_of(item);
            let cands = self.candidates_of(fingerprint, b1);
            for bucket in cands.iter() {
                self.table.touch_bucket(bucket);
            }
            keys.push((fingerprint, cands));
        }
        keys.iter()
            .map(|&(fingerprint, ref cands)| self.contains_key(fingerprint, cands))
            .collect()
    }

    // ---- delete -------------------------------------------------------

    /// Removes one copy of `item`; returns `true` if a copy was removed.
    ///
    /// Takes all (≤ 4) distinct candidate locks in ascending order. By
    /// Theorem 1 closure any concurrent relocation of this fingerprint
    /// moves it between two of *these* buckets, so holding all of them
    /// gives an exact answer: exactly one copy removed if any exists.
    pub fn delete(&self, item: &[u8]) -> bool {
        let (fingerprint, b1) = self.key_of(item);
        self.counters.add_hashes(2);
        let cands = self.candidates_of(fingerprint, b1);
        let (distinct, distinct_len) = Self::distinct_sorted(&cands);
        let distinct = &distinct[..distinct_len];

        for &bucket in distinct {
            self.lock(bucket);
        }
        let mut probes = 0u64;
        let mut removed = false;
        for &bucket in distinct {
            probes += self.table.slots_per_bucket() as u64;
            if let Some(slot) = self.table.find(bucket, fingerprint) {
                removed = self.table.replace_expect(bucket, slot, fingerprint, 0);
                debug_assert!(removed, "found lane changed under candidate locks");
                break;
            }
        }
        for &bucket in distinct.iter().rev() {
            self.unlock(bucket);
        }
        self.counters.record_delete(probes, distinct_len as u64);
        removed
    }

    /// Number of stored entries — exact: successful inserts minus
    /// successful deletes (relocation is occupancy-neutral; a transient
    /// over-count of one per in-flight move is possible mid-operation).
    pub fn len(&self) -> usize {
        self.table.occupied()
    }

    /// Returns `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot capacity `m · b`.
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Current load factor.
    pub fn load_factor(&self) -> f64 {
        self.table.load_factor()
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> Stats {
        self.counters.snapshot()
    }

    /// Resets the operation counters.
    pub fn reset_stats(&self) {
        self.counters.reset();
    }

    /// Short human-readable name.
    pub fn name(&self) -> String {
        self.label.clone()
    }
}

impl ConcurrentFilter for ConcurrentVcf {
    fn insert(&self, item: &[u8]) -> Result<(), InsertError> {
        ConcurrentVcf::insert(self, item)
    }

    fn contains(&self, item: &[u8]) -> bool {
        ConcurrentVcf::contains(self, item)
    }

    fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        ConcurrentVcf::contains_batch(self, items)
    }

    fn delete(&self, item: &[u8]) -> bool {
        ConcurrentVcf::delete(self, item)
    }

    fn len(&self) -> usize {
        ConcurrentVcf::len(self)
    }

    fn capacity(&self) -> usize {
        ConcurrentVcf::capacity(self)
    }

    fn stats(&self) -> Stats {
        ConcurrentVcf::stats(self)
    }

    fn reset_stats(&self) {
        ConcurrentVcf::reset_stats(self);
    }

    fn name(&self) -> String {
        ConcurrentVcf::name(self)
    }
}

/// The sequential [`Filter`] contract, for drop-in use anywhere a
/// `&mut`-style filter is expected (benches, the filter contract suite).
/// Methods simply delegate to the `&self` implementations.
impl Filter for ConcurrentVcf {
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        ConcurrentVcf::insert(self, item)
    }

    fn contains(&self, item: &[u8]) -> bool {
        ConcurrentVcf::contains(self, item)
    }

    fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        ConcurrentVcf::contains_batch(self, items)
    }

    fn delete(&mut self, item: &[u8]) -> bool {
        ConcurrentVcf::delete(self, item)
    }

    fn len(&self) -> usize {
        ConcurrentVcf::len(self)
    }

    fn capacity(&self) -> usize {
        ConcurrentVcf::capacity(self)
    }

    fn stats(&self) -> Stats {
        ConcurrentVcf::stats(self)
    }

    fn reset_stats(&mut self) {
        ConcurrentVcf::reset_stats(self);
    }

    fn name(&self) -> String {
        ConcurrentVcf::name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn small() -> ConcurrentVcf {
        ConcurrentVcf::new(CuckooConfig::new(1 << 8).with_seed(1)).unwrap()
    }

    fn key(i: u64) -> Vec<u8> {
        format!("item-{i}").into_bytes()
    }

    #[test]
    fn insert_lookup_delete_roundtrip() {
        let f = small();
        f.insert(b"x").unwrap();
        assert!(f.contains(b"x"));
        assert_eq!(f.len(), 1);
        assert!(f.delete(b"x"));
        assert!(!f.contains(b"x"));
        assert_eq!(f.len(), 0);
        assert!(!f.delete(b"x"));
    }

    #[test]
    fn straddling_geometry_is_rejected() {
        // 8 slots × 12 bits: lanes cross the 64-bit word boundary, so the
        // atomic engine cannot CAS a single lane.
        let config = CuckooConfig::new(1 << 8)
            .with_slots_per_bucket(8)
            .with_fingerprint_bits(12);
        assert!(matches!(
            ConcurrentVcf::new(config),
            Err(BuildError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn fills_past_95_percent() {
        let f = ConcurrentVcf::new(CuckooConfig::new(1 << 10).with_seed(3)).unwrap();
        let capacity = f.capacity();
        let mut stored = 0;
        for i in 0..capacity as u64 {
            if f.insert(&key(i)).is_ok() {
                stored += 1;
            }
        }
        let alpha = stored as f64 / capacity as f64;
        assert!(alpha > 0.95, "ConcurrentVcf load factor only {alpha}");
        assert_eq!(f.len(), stored, "occupancy must equal successful inserts");
    }

    #[test]
    fn no_false_negatives_when_nearly_full() {
        let f = ConcurrentVcf::new(CuckooConfig::new(1 << 10).with_seed(5)).unwrap();
        let mut stored = Vec::new();
        for i in 0..f.capacity() as u64 {
            if f.insert(&key(i)).is_ok() {
                stored.push(i);
            }
        }
        for i in stored {
            assert!(f.contains(&key(i)), "item {i} lost");
        }
    }

    #[test]
    fn failed_insert_leaves_consistent_table() {
        let f = ConcurrentVcf::new(CuckooConfig::new(1 << 5).with_seed(7)).unwrap();
        let mut stored = Vec::new();
        for i in 0..(f.capacity() as u64 + 64) {
            if f.insert(&key(i)).is_ok() {
                stored.push(i);
            }
        }
        assert_eq!(f.len(), stored.len(), "occupancy drifted across failures");
        for i in stored {
            assert!(f.contains(&key(i)), "acknowledged item {i} lost");
        }
    }

    #[test]
    fn duplicate_inserts_are_independent_copies() {
        let f = small();
        f.insert(b"dup").unwrap();
        f.insert(b"dup").unwrap();
        assert_eq!(f.len(), 2);
        assert!(f.delete(b"dup"));
        assert!(f.contains(b"dup"), "second copy must survive one delete");
        assert!(f.delete(b"dup"));
        assert!(!f.contains(b"dup"));
    }

    #[test]
    fn concurrent_inserts_from_many_threads_are_all_found() {
        let f = Arc::new(ConcurrentVcf::new(CuckooConfig::new(1 << 10).with_seed(11)).unwrap());
        let threads = 8u64;
        let per_thread = 256u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        f.insert(&key(t * 1_000_000 + i)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.len(), (threads * per_thread) as usize);
        for t in 0..threads {
            for i in 0..per_thread {
                assert!(f.contains(&key(t * 1_000_000 + i)), "thread {t} item {i}");
            }
        }
    }

    #[test]
    fn concurrent_mixed_churn_keeps_occupancy_exact() {
        let f = Arc::new(ConcurrentVcf::new(CuckooConfig::new(1 << 9).with_seed(13)).unwrap());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    let mut net = 0i64;
                    for i in 0..400u64 {
                        let k = key(t * 1_000_000 + i);
                        if f.insert(&k).is_ok() {
                            net += 1;
                        }
                        if i % 3 == 0 && f.delete(&k) {
                            net -= 1;
                        }
                    }
                    net
                })
            })
            .collect();
        let net: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(f.len() as i64, net, "len must track inserts - deletes");
    }

    #[test]
    fn contains_batch_matches_scalar() {
        let f = small();
        for i in 0..300 {
            f.insert(&key(i)).unwrap();
        }
        let keys: Vec<Vec<u8>> = (0..600).map(key).collect();
        let refs: Vec<&[u8]> = keys.iter().map(std::vec::Vec::as_slice).collect();
        let batch = f.contains_batch(&refs);
        for (i, k) in refs.iter().enumerate() {
            assert_eq!(batch[i], f.contains(k), "batch diverged at {i}");
        }
    }

    #[test]
    fn stats_and_name() {
        let f = small();
        f.insert(b"a").unwrap();
        assert!(f.contains(b"a"));
        let s = f.stats();
        assert_eq!(s.inserts.calls, 1);
        assert_eq!(s.lookups.calls, 1);
        assert_eq!(f.name(), "ConcurrentVCF");
        f.reset_stats();
        assert_eq!(f.stats(), Stats::default());
    }

    #[test]
    fn filter_trait_delegation_works() {
        let mut f = small();
        Filter::insert(&mut f, b"via-filter").unwrap();
        assert!(Filter::contains(&f, b"via-filter"));
        assert!(Filter::delete(&mut f, b"via-filter"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConcurrentVcf>();
    }
}
