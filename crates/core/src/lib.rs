//! # Vertical Cuckoo Filters
//!
//! A from-scratch implementation of the filter family introduced by
//! *"The Vertical Cuckoo Filters: A Family of Insertion-friendly Sketches
//! for Online Applications"* (ICDCS 2021):
//!
//! * [`VerticalCuckooFilter`] — the VCF: four candidate buckets per item
//!   derived by **vertical hashing** (Section III). Configuring the bitmask
//!   ones-count yields the paper's **IVCF** variants (Section IV-A).
//! * [`Dvcf`] — the Differentiated VCF: a fingerprint-value threshold `Δt`
//!   decides per item between four candidates (VCF rule) and two
//!   candidates (CF rule), making the trade-off knob `r` continuous
//!   (Section IV-B, Algorithms 4–6).
//! * [`KVcf`] — the generalized k-VCF with `k ≥ 4` candidate buckets and
//!   per-slot mark bits (Section III-C, Theorem 2).
//!
//! ## Vertical hashing in one paragraph
//!
//! A cuckoo filter stores an `f`-bit fingerprint `η` of each item and must
//! be able to move that fingerprint between its candidate buckets *without
//! access to the original item*. Standard CF supports exactly two
//! candidates (`B2 = B1 ⊕ hash(η)`). Vertical hashing splits `hash(η)`
//! with two complementary bitmasks `bm1 = ¬bm2` into fragments and XORs
//! each fragment (and their union) onto the bucket index:
//!
//! ```text
//! B1 = hash(x)          B2 = B1 ⊕ (hash(η) ∧ bm1)
//! B4 = B1 ⊕ hash(η)     B3 = B1 ⊕ (hash(η) ∧ bm2)
//! ```
//!
//! The set `{B1, B2, B3, B4}` is closed under these offsets (Theorem 1),
//! so any resident fingerprint can be relocated to any of its alternates
//! knowing only its current bucket and stored bits — the property that
//! makes the eviction cascade cheap and rare.
//!
//! ## Quick start
//!
//! ```
//! use vcf_core::{CuckooConfig, VerticalCuckooFilter};
//! use vcf_traits::Filter;
//!
//! let mut filter = VerticalCuckooFilter::new(CuckooConfig::new(1 << 10))?;
//! filter.insert(b"alice")?;
//! assert!(filter.contains(b"alice"));
//! assert!(filter.delete(b"alice"));
//! assert!(!filter.contains(b"alice"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmask;
/// Sort-by-bucket bulk construction shared by the cuckoo variants.
pub mod bulk;
mod concurrent;
mod config;
mod dvcf;
mod dynamic;
/// Breadth-first eviction-path search shared by the cuckoo variants.
pub mod evict;
mod kvcf;
mod scalable;
mod sharded;
/// Versioned binary persistence: `VCF1`/`VCK1` filter snapshots and the
/// `FUZ1` frozen-generation record.
pub mod snapshot;
mod tiered;
mod vcf;
mod vertical;

pub use bitmask::MaskPair;
pub use concurrent::ConcurrentVcf;
pub use config::{CuckooConfig, EvictionPolicy};
pub use dvcf::Dvcf;
pub use dynamic::DynamicVcf;
pub use kvcf::KVcf;
pub use scalable::{MigrationStats, ScalableVcf};
pub use sharded::{ShardRouter, ShardedConcurrentVcf, ShardedScalableVcf, ShardedVcf};
pub use snapshot::SnapshotError;
pub use tiered::{RotationStats, TieredFilter};
pub use vcf::VerticalCuckooFilter;
pub use vertical::{Candidates, VerticalParams};

// Re-exported so benches and downstream crates can pin a probe kernel
// (`set_kernel`) without depending on `vcf-table` directly.
pub use vcf_table::KernelKind;

pub(crate) mod key {
    //! Key-to-(fingerprint, index) derivation shared by the whole family.

    use vcf_hash::HashKind;

    /// Derives the `f`-bit fingerprint and the primary bucket index from
    /// one 64-bit hash of the item: the fingerprint comes from the high
    /// half, the index from the low half, so the two stay (nearly)
    /// independent even for small tables.
    ///
    /// A zero fingerprint is remapped to 1 because zero is the empty-slot
    /// sentinel in `vcf-table`.
    #[inline]
    pub fn derive(h: u64, fingerprint_bits: u32, index_mask: u64) -> (u32, usize) {
        let fp_mask = if fingerprint_bits == 32 {
            u32::MAX
        } else {
            (1u32 << fingerprint_bits) - 1
        };
        let mut fp = ((h >> 32) as u32) & fp_mask;
        if fp == 0 {
            fp = 1;
        }
        (fp, (h & index_mask) as usize)
    }

    /// Hashes an item with `kind` and derives `(fingerprint, primary
    /// bucket)`.
    #[inline]
    pub fn hash_item(
        kind: HashKind,
        item: &[u8],
        fingerprint_bits: u32,
        index_mask: u64,
    ) -> (u32, usize) {
        derive(kind.hash64(item), fingerprint_bits, index_mask)
    }
}

#[cfg(test)]
mod tests {
    use super::key;

    #[test]
    fn zero_fingerprint_is_remapped() {
        // Craft h with zero high half: fingerprint must become 1.
        let (fp, _) = key::derive(0x0000_0000_1234_5678, 14, 0xff);
        assert_eq!(fp, 1);
    }

    #[test]
    fn index_uses_low_bits() {
        let (_, idx) = key::derive(0xabcd_ef01_0000_00ff, 14, 0x3f);
        assert_eq!(idx, 0x3f);
    }

    #[test]
    fn fingerprint_uses_high_bits() {
        let (fp, _) = key::derive(0x0000_3fff_0000_0000, 14, 0xff);
        assert_eq!(fp, 0x3fff);
    }

    #[test]
    fn full_width_fingerprint_supported() {
        let (fp, _) = key::derive(u64::MAX, 32, 0xff);
        assert_eq!(fp, u32::MAX);
    }
}
