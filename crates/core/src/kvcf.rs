//! The generalized k-VCF (Section III-C): `k ≥ 2` candidate buckets with
//! per-slot mark bits.

use crate::bulk::{self, BulkHost};
use crate::config::{CuckooConfig, EvictionPolicy};
use crate::evict;
use crate::key;
use crate::vertical::{masked_candidate, masked_relocate};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vcf_hash::{HashKind, SplitMix64};
use vcf_table::{MarkedEntry, MarkedTable};
use vcf_traits::{BuildError, Counters, Filter, InsertError, Stats};

/// The generalized Vertical Cuckoo Filter with `k` candidate buckets.
///
/// Generalized vertical hashing (Equ. 6) derives the candidates from
/// `k − 2` bitmasks plus the two trivial ones (`bm = 0` for `B1`,
/// `bm = all-ones` for `Bk`):
///
/// ```text
/// B_e = B1 ⊕ (hash(η) ∧ bm_e)          e = 1..k
/// ```
///
/// Unlike the 4-candidate VCF, the masks are not mutually complementary,
/// so a resident fingerprint alone does not reveal *which* candidate its
/// bucket is. Each slot therefore stores a **mark** — the index `e` of its
/// current candidate (the paper's "counter field") — and relocation uses
/// Theorem 2 / Equ. 7:
///
/// ```text
/// B_e = B_g ⊕ (hash(η) ∧ bm_g) ⊕ (hash(η) ∧ bm_e)
/// ```
///
/// With `max_kicks = 0` (the paper's Table V regime) insertion never
/// relocates: a larger `k` alone pushes the load factor toward ~97 %.
///
/// # Examples
///
/// ```
/// use vcf_core::{CuckooConfig, KVcf};
/// use vcf_traits::Filter;
///
/// let config = CuckooConfig::new(1 << 8).with_fingerprint_bits(16);
/// let mut filter = KVcf::new(config, 8)?;
/// filter.insert(b"k-vcf item")?;
/// assert!(filter.contains(b"k-vcf item"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct KVcf {
    table: MarkedTable,
    /// `masks[e]` for `e = 0..k`; `masks[0] = 0`, `masks[k-1]` = full
    /// domain. Already restricted to the index range.
    masks: Vec<u64>,
    hash: HashKind,
    max_kicks: u32,
    eviction: EvictionPolicy,
    seed: u64,
    index_mask: u64,
    rng: SmallRng,
    /// Undo log for the current eviction walk: `(bucket, slot, previous
    /// entry)` per swap, replayed in reverse on failure.
    undo: Vec<(usize, usize, MarkedEntry)>,
    counters: Counters,
}

impl KVcf {
    /// Builds a k-VCF with `k` candidate buckets per item.
    ///
    /// The `k − 2` intermediate bitmasks are generated deterministically
    /// from `config.seed`, distinct, and neither empty nor full (those two
    /// are reserved for `B1` and `Bk`).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry, `k < 2`, or a table
    /// too small to host `k − 2` distinct intermediate masks.
    pub fn new(config: CuckooConfig, k: usize) -> Result<Self, BuildError> {
        config.validate()?;
        if k < 2 {
            return Err(BuildError::InvalidConfig {
                reason: format!("k-VCF needs k >= 2 candidate buckets, got {k}"),
            });
        }
        let index_bits = config.buckets.trailing_zeros().max(1);
        let domain_bits = config.fingerprint_bits.min(index_bits);
        let domain = (1u64 << domain_bits) - 1;
        // 2^domain − 2 non-trivial masks exist.
        if k > 2 && (k - 2) as u64 > domain.saturating_sub(1) {
            return Err(BuildError::InvalidConfig {
                reason: format!(
                    "cannot generate {} distinct intermediate masks over {domain_bits} bits",
                    k - 2
                ),
            });
        }

        let mut masks = Vec::with_capacity(k);
        masks.push(0u64);
        // lint: allow(theorem1-confinement) — seed whitening for the mask
        // generator, not candidate-bucket arithmetic
        let mut gen = SplitMix64::new(config.seed ^ 0x6b76_6366); // "kvcf"
        while masks.len() < k - 1 {
            let candidate = gen.next_u64() & domain;
            if candidate != 0 && candidate != domain && !masks.contains(&candidate) {
                masks.push(candidate);
            }
        }
        masks.push(domain);

        let table = MarkedTable::new(
            config.buckets,
            config.slots_per_bucket,
            config.fingerprint_bits,
            k,
        )?;
        Ok(Self {
            table,
            masks,
            hash: config.hash,
            max_kicks: config.max_kicks,
            eviction: config.eviction,
            seed: config.seed,
            index_mask: config.buckets as u64 - 1,
            rng: SmallRng::seed_from_u64(config.seed),
            undo: Vec::new(),
            counters: Counters::new(),
        })
    }

    /// Number of candidate buckets `k`.
    pub fn k(&self) -> usize {
        self.masks.len()
    }

    /// Mark-field width in bits (storage overhead per slot).
    pub fn mark_bits(&self) -> u32 {
        self.table.mark_bits()
    }

    /// Occupancy of the slot table only — `α` as the paper measures it.
    pub fn table_load_factor(&self) -> f64 {
        self.table.load_factor()
    }

    /// The hash function in use.
    pub fn hash_kind(&self) -> HashKind {
        self.hash
    }

    /// The relocation threshold `MAX`.
    pub fn max_kicks(&self) -> u32 {
        self.max_kicks
    }

    /// The PRNG seed the filter was configured with (also regenerates the
    /// intermediate bitmasks deterministically).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Read access to the marked table (snapshot persistence).
    pub(crate) fn table(&self) -> &MarkedTable {
        &self.table
    }

    /// Write access to the marked table (snapshot restore).
    pub(crate) fn table_mut(&mut self) -> &mut MarkedTable {
        &mut self.table
    }

    #[inline]
    fn key_of(&self, item: &[u8]) -> (u32, usize) {
        key::hash_item(
            self.hash,
            item,
            self.table.fingerprint_bits(),
            self.index_mask,
        )
    }

    /// Equ. 6: candidate bucket `B_e` anchored at `b1`. Delegates to
    /// [`masked_candidate`] so the Theorem-2 arithmetic stays confined
    /// to `vertical.rs`.
    #[inline]
    fn candidate(&self, b1: usize, hfp: u64, e: usize) -> usize {
        debug_assert!(e < self.masks.len());
        masked_candidate(b1, hfp, self.masks[e], self.index_mask)
    }

    /// Equ. 7: move from candidate `g` (bucket `bg`) to candidate `e`.
    /// Delegates to [`masked_relocate`]; closure over the candidate
    /// coset is proven (and tested) at the definition site.
    #[inline]
    fn relocate(&self, bg: usize, hfp: u64, g: usize, e: usize) -> usize {
        debug_assert!(g < self.masks.len() && e < self.masks.len());
        masked_relocate(bg, hfp, self.masks[g], self.masks[e], self.index_mask)
    }

    /// Places an already-hashed item under the configured policy.
    fn insert_prehashed(
        &mut self,
        fingerprint: u32,
        b1: usize,
        hfp: u64,
    ) -> Result<(), InsertError> {
        match self.eviction {
            EvictionPolicy::RandomWalk => self.insert_random_walk(fingerprint, b1, hfp),
            EvictionPolicy::Bfs => self.insert_bfs(fingerprint, b1, hfp),
        }
    }

    /// The paper's random-walk relocation over Equ. 7, with
    /// rollback-on-failure and bucket accesses counted as they happen.
    fn insert_random_walk(
        &mut self,
        fingerprint: u32,
        b1: usize,
        hfp: u64,
    ) -> Result<(), InsertError> {
        let k = self.k();
        let slots = self.table.slots_per_bucket();

        let mut probes = 0u64;
        for e in 0..k {
            let bucket = self.candidate(b1, hfp, e);
            probes += slots as u64;
            let entry = MarkedEntry {
                fingerprint,
                mark: e as u8,
            };
            if self.table.try_insert(bucket, entry).is_some() {
                self.counters.record_insert(probes, (e + 1) as u64);
                return Ok(());
            }
        }

        if self.max_kicks == 0 {
            // Table V regime: no relocation at all.
            self.counters.record_insert(probes, k as u64);
            self.counters.add_failed_insert();
            return Err(InsertError::Full { kicks: 0 });
        }

        self.undo.clear();
        let mut cur_mark = self.rng.gen_range(0..k);
        let mut cur_bucket = self.candidate(b1, hfp, cur_mark);
        let mut cur_entry = MarkedEntry {
            fingerprint,
            mark: cur_mark as u8,
        };
        let mut kicks = 0u64;
        let mut bucket_accesses = k as u64;
        for _ in 0..self.max_kicks {
            let slot = self.rng.gen_range(0..slots);
            bucket_accesses += 1;
            let Some(victim) = self.table.swap(cur_bucket, slot, cur_entry) else {
                // Eviction targets full buckets, but a slot freed by the
                // relocation attempts above is fair game: the entry just
                // landed in it, so the walk is done.
                self.counters.add_kicks(kicks + 1);
                self.counters.record_insert(probes, bucket_accesses);
                return Ok(());
            };
            self.undo.push((cur_bucket, slot, victim));
            kicks += 1;

            // Access both the fingerprint field and the counter field,
            // then compute the victim's other candidates via Equ. 7.
            let victim_hash = self.hash.hash_fingerprint(victim.fingerprint);
            self.counters.add_hashes(1);
            let g = usize::from(victim.mark);
            let mut placed = false;
            for e in (0..k).filter(|&e| e != g) {
                let bucket = self.relocate(cur_bucket, victim_hash, g, e);
                probes += slots as u64;
                bucket_accesses += 1;
                let entry = MarkedEntry {
                    fingerprint: victim.fingerprint,
                    mark: e as u8,
                };
                if self.table.try_insert(bucket, entry).is_some() {
                    placed = true;
                    break;
                }
            }
            if placed {
                self.counters.add_kicks(kicks);
                self.counters.record_insert(probes, bucket_accesses);
                return Ok(());
            }
            // Carry the victim to a random other candidate.
            let e = {
                let mut e = self.rng.gen_range(0..k - 1);
                if e >= g {
                    e += 1;
                }
                e
            };
            cur_bucket = self.relocate(cur_bucket, victim_hash, g, e);
            cur_mark = e;
            cur_entry = MarkedEntry {
                fingerprint: victim.fingerprint,
                mark: cur_mark as u8,
            };
        }

        for &(bucket, slot, previous) in self.undo.iter().rev() {
            self.table.swap(bucket, slot, previous);
        }
        self.undo.clear();
        self.counters.add_kicks(kicks);
        self.counters.record_insert(probes, bucket_accesses);
        self.counters.add_failed_insert();
        Err(InsertError::Full { kicks })
    }

    /// BFS policy over the Theorem-2 relocation graph: every stored mark
    /// tells the search which candidate its slot is (`g`), so Equ. 7
    /// enumerates the victim's `k − 1` exact alternates — no mark
    /// ambiguity, no undo log, writes only on a validated path.
    fn insert_bfs(&mut self, fingerprint: u32, b1: usize, hfp: u64) -> Result<(), InsertError> {
        use core::cell::Cell;

        let k = self.k();
        debug_assert!(k <= self.masks.len(), "at most 4 candidate masks");
        let slots = self.table.slots_per_bucket();
        let probes = Cell::new(0u64);
        let accesses = Cell::new(0u64);
        // Table V regime (`max_kicks == 0`): only the candidate scan —
        // the roots — may be inspected for room.
        let max_nodes = if self.max_kicks == 0 {
            0
        } else {
            (self.max_kicks as usize).max(8)
        };

        let table = &self.table;
        let masks = &self.masks;
        let index_mask = self.index_mask;
        let hash = self.hash;
        let counters = &self.counters;
        let relocate = |bg: usize, vh: u64, g: usize, e: usize| {
            masked_relocate(bg, vh, masks[g], masks[e], index_mask)
        };
        let path = evict::search(
            (0..k).map(|e| {
                (
                    masked_candidate(b1, hfp, masks[e], index_mask),
                    MarkedEntry {
                        fingerprint,
                        mark: e as u8,
                    },
                )
            }),
            max_nodes,
            |bucket| {
                probes.set(probes.get() + slots as u64);
                accesses.set(accesses.get() + 1);
                table.first_empty_slot(bucket)
            },
            |bucket, out| {
                accesses.set(accesses.get() + 1);
                for slot in 0..slots {
                    let Some(victim) = table.get(bucket, slot) else {
                        // Expansion visits buckets that were full when
                        // enqueued; a slot freed since has no victim.
                        continue;
                    };
                    let victim_hash = hash.hash_fingerprint(victim.fingerprint);
                    counters.add_hashes(1);
                    let g = usize::from(victim.mark);
                    for e in (0..k).filter(|&e| e != g) {
                        out.push((
                            slot,
                            relocate(bucket, victim_hash, g, e),
                            MarkedEntry {
                                fingerprint: victim.fingerprint,
                                mark: e as u8,
                            },
                        ));
                    }
                }
            },
        );

        let Some(path) = path else {
            self.counters.record_insert(probes.get(), accesses.get());
            self.counters.add_failed_insert();
            return Err(InsertError::Full { kicks: 0 });
        };

        let kicks = path.kicks();
        let mut dest = path.empty_slot;
        for step in path.steps[1..].iter().rev() {
            self.table.swap(step.bucket, dest, step.value);
            dest = step.slot_in_parent;
        }
        self.table
            .swap(path.steps[0].bucket, dest, path.steps[0].value);
        self.counters.add_kicks(kicks);
        self.counters
            .record_insert(probes.get(), accesses.get() + kicks + 1);
        Ok(())
    }
}

impl BulkHost for KVcf {
    /// `(fingerprint, B1, hash(η))` — candidates derive by Equ. 6.
    type Key = (u32, u32, u64);

    fn bulk_buckets(&self) -> usize {
        self.table.buckets()
    }

    fn bulk_key(&self, item: &[u8]) -> Self::Key {
        let (fingerprint, b1) = self.key_of(item);
        let hfp = self.hash.hash_fingerprint(fingerprint);
        (fingerprint, b1 as u32, hfp)
    }

    fn bulk_candidates(&self, _key: &Self::Key) -> usize {
        self.k()
    }

    fn bulk_candidate(&self, key: &Self::Key, e: usize) -> usize {
        self.candidate(key.1 as usize, key.2, e)
    }

    fn bulk_prefetch(&self, bucket: usize) {
        self.table.prefetch_bucket(bucket);
    }

    fn bulk_try_place(&mut self, key: &Self::Key, e: usize) -> bool {
        let bucket = self.candidate(key.1 as usize, key.2, e);
        let entry = MarkedEntry {
            fingerprint: key.0,
            mark: e as u8,
        };
        self.table.try_insert(bucket, entry).is_some()
    }

    fn bulk_place_run(&mut self, bucket: usize, keys: &[Self::Key]) -> usize {
        // A run is grouped by primary candidate, so every entry carries
        // mark 0 (Theorem 2's e = 0 coset).
        let mut entries = [MarkedEntry {
            fingerprint: 0,
            mark: 0,
        }; vcf_table::MAX_BUCKET_SLOTS];
        let take = keys.len().min(entries.len());
        for (entry, key) in entries.iter_mut().zip(&keys[..take]) {
            entry.fingerprint = key.0;
        }
        self.table.fill(bucket, &entries[..take])
    }

    fn bulk_record_keys(&self, n: u64) {
        self.counters.add_hashes(2 * n);
    }

    fn bulk_record_swept(&self, items: u64, bucket_accesses: u64) {
        let slots = self.table.slots_per_bucket() as u64;
        self.counters
            .record_inserts(items, bucket_accesses * slots, bucket_accesses);
    }

    fn bulk_insert(&mut self, key: &Self::Key) -> Result<(), InsertError> {
        self.insert_prehashed(key.0, key.1 as usize, key.2)
    }
}

impl Filter for KVcf {
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        let (fingerprint, b1) = self.key_of(item);
        let hfp = self.hash.hash_fingerprint(fingerprint);
        self.counters.add_hashes(2);
        self.insert_prehashed(fingerprint, b1, hfp)
    }

    /// Pipelined insertion: hashes a window of items and prefetches all
    /// `k` candidate buckets per item first, then places entries in item
    /// order through the same path as serial [`insert`](Self::insert)
    /// (identical PRNG consumption, so batch ≡ serial exactly).
    fn insert_batch(&mut self, items: &[&[u8]]) -> Vec<Result<(), InsertError>> {
        const WINDOW: usize = 16;
        let mut out = Vec::with_capacity(items.len());
        let mut window = Vec::with_capacity(WINDOW);
        for chunk in items.chunks(WINDOW) {
            window.clear();
            for item in chunk {
                let (fingerprint, b1) = self.key_of(item);
                let hfp = self.hash.hash_fingerprint(fingerprint);
                self.counters.add_hashes(2);
                for e in 0..self.k() {
                    self.table.prefetch_bucket(self.candidate(b1, hfp, e));
                }
                window.push((fingerprint, b1, hfp));
            }
            for &(fingerprint, b1, hfp) in &window {
                out.push(self.insert_prehashed(fingerprint, b1, hfp));
            }
        }
        out
    }

    /// Sort-by-bucket bulk construction (see [`crate::bulk`]); the mark
    /// stored with each placement is the round index `e`.
    fn build_from_iter(
        &mut self,
        items: &mut dyn Iterator<Item = &[u8]>,
    ) -> Vec<Result<(), InsertError>> {
        bulk::build_from_iter(self, items)
    }

    fn contains(&self, item: &[u8]) -> bool {
        let (fingerprint, b1) = self.key_of(item);
        let hfp = self.hash.hash_fingerprint(fingerprint);
        let k = self.k();
        let mut probes = 0u64;
        let mut found = false;
        for e in 0..k {
            let bucket = self.candidate(b1, hfp, e);
            probes += self.table.slots_per_bucket() as u64;
            if self.table.contains(
                bucket,
                MarkedEntry {
                    fingerprint,
                    mark: e as u8,
                },
            ) {
                found = true;
                break;
            }
        }
        self.counters.record_lookup(probes, k as u64);
        found
    }

    /// Batched lookup: hashes every item and touches its primary bucket
    /// (`B1`, candidate `e = 0`) first, then probes the `k` candidates per
    /// item with exact `(fingerprint, mark)` SWAR matches.
    fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        let mut keys = Vec::with_capacity(items.len());
        for item in items {
            let (fingerprint, b1) = self.key_of(item);
            let hfp = self.hash.hash_fingerprint(fingerprint);
            for e in 0..self.k() {
                self.table.touch_bucket(self.candidate(b1, hfp, e));
            }
            keys.push((fingerprint, b1, hfp));
        }
        let k = self.k();
        let slots = self.table.slots_per_bucket() as u64;
        let mut out = Vec::with_capacity(items.len());
        let mut buckets = Vec::with_capacity(k);
        let mut entries = Vec::with_capacity(k);
        for &(fingerprint, b1, hfp) in &keys {
            // One multi-bucket probe over all k candidates, each with its
            // own (fingerprint, mark) pattern — the per-element pattern
            // form of the AVX2 gather-compare.
            buckets.clear();
            entries.clear();
            for e in 0..k {
                buckets.push(self.candidate(b1, hfp, e));
                entries.push(MarkedEntry {
                    fingerprint,
                    mark: e as u8,
                });
            }
            let found = self.table.contains_any(&buckets, &entries);
            self.counters.record_lookup(k as u64 * slots, k as u64);
            out.push(found);
        }
        out
    }

    fn delete(&mut self, item: &[u8]) -> bool {
        let (fingerprint, b1) = self.key_of(item);
        let hfp = self.hash.hash_fingerprint(fingerprint);
        let k = self.k();
        let mut probes = 0u64;
        let mut removed = false;
        for e in 0..k {
            let bucket = self.candidate(b1, hfp, e);
            probes += self.table.slots_per_bucket() as u64;
            if self.table.remove_one(
                bucket,
                MarkedEntry {
                    fingerprint,
                    mark: e as u8,
                },
            ) {
                removed = true;
                break;
            }
        }
        self.counters.record_delete(probes, k as u64);
        removed
    }

    fn len(&self) -> usize {
        self.table.occupied()
    }

    fn capacity(&self) -> usize {
        self.table.capacity()
    }

    fn stats(&self) -> Stats {
        self.counters.snapshot()
    }

    fn reset_stats(&mut self) {
        self.counters.reset();
    }

    fn name(&self) -> String {
        format!("{}-VCF", self.k())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CuckooConfig {
        CuckooConfig::new(1 << 8)
            .with_fingerprint_bits(16)
            .with_seed(17)
    }

    fn key(i: u64) -> Vec<u8> {
        format!("kvcf-{i}").into_bytes()
    }

    #[test]
    fn rejects_invalid_k() {
        assert!(KVcf::new(config(), 0).is_err());
        assert!(KVcf::new(config(), 1).is_err());
        assert!(KVcf::new(config(), 2).is_ok());
        assert!(KVcf::new(config(), 10).is_ok());
    }

    #[test]
    fn masks_are_distinct_and_bounded() {
        let f = KVcf::new(config(), 9).unwrap();
        let mut masks = f.masks.clone();
        assert_eq!(masks[0], 0);
        assert_eq!(*masks.last().unwrap(), f.index_mask.min((1 << 16) - 1));
        masks.sort_unstable();
        masks.dedup();
        assert_eq!(masks.len(), 9, "masks must be pairwise distinct");
    }

    #[test]
    fn theorem2_relocation_reaches_all_candidates() {
        let f = KVcf::new(config(), 7).unwrap();
        let hfp = 0xdead_beef_1234_5678;
        let b1 = 99 & f.index_mask as usize;
        let all: Vec<usize> = (0..7).map(|e| f.candidate(b1, hfp, e)).collect();
        // From any candidate g, Equ. 7 must land exactly on candidate e.
        for g in 0..7 {
            for e in 0..7 {
                assert_eq!(
                    f.relocate(all[g], hfp, g, e),
                    all[e],
                    "Equ. 7 broken for g={g} e={e}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_and_no_false_negatives() {
        let mut f = KVcf::new(config(), 6).unwrap();
        for i in 0..800 {
            f.insert(&key(i)).unwrap();
        }
        for i in 0..800 {
            assert!(f.contains(&key(i)), "item {i} lost");
        }
        for i in 0..400 {
            assert!(f.delete(&key(i)));
        }
        for i in 400..800 {
            assert!(f.contains(&key(i)), "item {i} vanished after deletes");
        }
    }

    #[test]
    fn zero_kicks_regime_never_evicts() {
        let mut f = KVcf::new(config().with_max_kicks(0), 8).unwrap();
        for i in 0..f.capacity() as u64 {
            let _ = f.insert(&key(i));
        }
        assert_eq!(f.stats().kicks, 0, "MAX=0 must not relocate");
        // Table V: k = 8 without kicks should still fill well past 90 %.
        assert!(
            f.table_load_factor() > 0.90,
            "α = {}",
            f.table_load_factor()
        );
    }

    #[test]
    fn larger_k_fills_further_without_kicks() {
        let fill = |k: usize| {
            let mut f = KVcf::new(config().with_max_kicks(0), k).unwrap();
            for i in 0..f.capacity() as u64 {
                let _ = f.insert(&key(i));
            }
            f.table_load_factor()
        };
        let a2 = fill(2);
        let a4 = fill(4);
        let a9 = fill(9);
        assert!(a2 < a4 && a4 < a9, "α must grow with k: {a2} {a4} {a9}");
        assert!(a9 > 0.94, "k=9, MAX=0 should approach 97%: {a9}");
    }

    #[test]
    fn no_false_negatives_after_overflow_with_kicks() {
        let mut f = KVcf::new(
            CuckooConfig::new(1 << 5)
                .with_fingerprint_bits(16)
                .with_seed(3),
            5,
        )
        .unwrap();
        let mut acknowledged = Vec::new();
        for i in 0..(f.capacity() as u64 + 40) {
            if f.insert(&key(i)).is_ok() {
                acknowledged.push(i);
            }
        }
        for i in acknowledged {
            assert!(f.contains(&key(i)), "acknowledged {i} lost");
        }
    }

    #[test]
    fn k2_behaves_like_standard_cf() {
        let mut f = KVcf::new(config(), 2).unwrap();
        for i in 0..600 {
            let _ = f.insert(&key(i));
        }
        for i in 0..600 {
            assert!(f.contains(&key(i)));
        }
        assert_eq!(f.name(), "2-VCF");
    }

    #[test]
    fn mark_bits_scale_with_k() {
        assert_eq!(KVcf::new(config(), 4).unwrap().mark_bits(), 2);
        assert_eq!(KVcf::new(config(), 7).unwrap().mark_bits(), 3);
        assert_eq!(KVcf::new(config(), 10).unwrap().mark_bits(), 4);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let mut f = KVcf::new(config(), 6).unwrap();
            let mut stored = 0u32;
            for i in 0..1100 {
                if f.insert(&key(i)).is_ok() {
                    stored += 1;
                }
            }
            (stored, f.stats().kicks)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn insert_batch_matches_serial_exactly() {
        let keys: Vec<Vec<u8>> = (0..1100).map(key).collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();

        let mut serial = KVcf::new(config(), 6).unwrap();
        let serial_results: Vec<_> = refs.iter().map(|k| serial.insert(k)).collect();
        let mut batched = KVcf::new(config(), 6).unwrap();
        let batch_results = batched.insert_batch(&refs);

        assert_eq!(serial_results, batch_results);
        assert_eq!(serial.len(), batched.len());
        assert_eq!(serial.stats().kicks, batched.stats().kicks);
        for k in &refs {
            assert_eq!(serial.contains(k), batched.contains(k));
        }
    }

    #[test]
    fn bfs_policy_preserves_membership() {
        let mut f = KVcf::new(config().with_eviction_policy(EvictionPolicy::Bfs), 6).unwrap();
        let mut acknowledged = Vec::new();
        for i in 0..f.capacity() as u64 {
            if f.insert(&key(i)).is_ok() {
                acknowledged.push(i);
            }
        }
        assert!(
            acknowledged.len() as f64 / f.capacity() as f64 > 0.95,
            "BFS k-VCF load too low"
        );
        for i in acknowledged {
            assert!(f.contains(&key(i)), "item {i} lost under BFS eviction");
        }
    }

    #[test]
    fn bfs_zero_kicks_regime_never_relocates() {
        let mut f = KVcf::new(
            config()
                .with_max_kicks(0)
                .with_eviction_policy(EvictionPolicy::Bfs),
            8,
        )
        .unwrap();
        for i in 0..f.capacity() as u64 {
            let _ = f.insert(&key(i));
        }
        assert_eq!(f.stats().kicks, 0, "MAX=0 must suppress BFS relocation");
        assert!(
            f.table_load_factor() > 0.90,
            "α = {}",
            f.table_load_factor()
        );
    }
}
