//! Sort-by-bucket bulk construction shared by the cuckoo family.
//!
//! [`Filter::build_from_iter`](vcf_traits::Filter::build_from_iter)
//! defaults to serial batched insertion. The table-backed filters (CF,
//! VCF, DVCF, k-VCF) override it through this module with a three-stage
//! build that turns the random-access insert storm into one sequential
//! sweep:
//!
//! 1. **Hash** every item up front into a compact key (fingerprint plus
//!    candidate-derivation state), appending it to the coarse partition
//!    its primary candidate bucket falls in.
//! 2. **Sort & sweep**, one partition at a time: stable counting-sort
//!    the partition by primary candidate bucket (the histogram is
//!    L1-resident by construction), then walk its slice of the table in
//!    ascending bucket order, placing each same-bucket run of items
//!    first-fit with one bucket load/store
//!    ([`BulkHost::bulk_place_run`]). An item whose primary bucket is
//!    full falls through to its remaining candidates on the spot —
//!    those probes are random access, but they are the small minority
//!    at any load the sweep is designed for.
//! 3. **Cleanup**: items whose every candidate was full are deferred
//!    and re-inserted in original submission order through the
//!    filter's normal eviction path (random walk or BFS), which may
//!    relocate residents.
//!
//! The deferred set is bounded by the number of items that find all `k`
//! candidates full *during the sweep* — at the target 95 % load this is
//! a small tail (empirically a few percent), so the expensive eviction
//! machinery runs on a fraction of the input while the bulk of the table
//! fills at streaming speed. Membership is equivalent to serial
//! insertion: every `Ok` item is stored (no false negatives) and the
//! occupancy equals the `Ok` count; only the slot assignment differs.

use vcf_traits::InsertError;

/// How far ahead of the cleanup cursor candidate buckets are prefetched
/// (same window the pipelined `insert_batch` paths use).
const LOOKAHEAD: usize = 16;

/// Buckets per sort partition (as a power of two): 4096 buckets keep
/// the per-partition histogram at 16 KiB — L1-resident — and the
/// partition's table slice within a sliver of L2, whatever the total
/// table size.
const PART_BUCKETS_LOG2: usize = 12;

/// Upper bound on one placement run handed to
/// [`bulk_place_run`](BulkHost::bulk_place_run) — one bucket's worth
/// ([`vcf_table::MAX_BUCKET_SLOTS`]), since a longer prefix could never
/// fit anyway.
const RUN_BUF: usize = vcf_table::MAX_BUCKET_SLOTS;

/// A filter that exposes the hooks the sort-sweep-cleanup driver needs.
///
/// Counter accounting is *aggregated*: the driver tallies sweep work in
/// plain locals and flushes it through
/// [`bulk_record_keys`](BulkHost::bulk_record_keys) /
/// [`bulk_record_swept`](BulkHost::bulk_record_swept) once per build, so
/// the hot loops pay zero atomic traffic. Totals still land exactly
/// where a serial fill would put them (deferred items are recorded by
/// [`bulk_insert`](BulkHost::bulk_insert) itself).
pub trait BulkHost {
    /// Per-item hashed key: the fingerprint plus whatever state derives
    /// the candidate buckets without rehashing the item. Kept as narrow
    /// as possible — the key rides inside every sort entry.
    type Key: Copy;

    /// Number of buckets `m` (the counting-sort domain).
    fn bulk_buckets(&self) -> usize;

    /// Hashes one item into its key. Pure: hash counters are charged in
    /// aggregate by [`bulk_record_keys`](BulkHost::bulk_record_keys).
    fn bulk_key(&self, item: &[u8]) -> Self::Key;

    /// Number of candidate buckets for this key (`k`; 2 or 4 for DVCF).
    fn bulk_candidates(&self, key: &Self::Key) -> usize;

    /// The `e`-th candidate bucket for this key
    /// (`e < bulk_candidates(key)`).
    fn bulk_candidate(&self, key: &Self::Key, e: usize) -> usize;

    /// Issues a software prefetch for `bucket`.
    fn bulk_prefetch(&self, bucket: usize);

    /// First-fit placement attempt of `key` into its `e`-th candidate;
    /// `true` when an empty slot was claimed. Never relocates residents.
    fn bulk_try_place(&mut self, key: &Self::Key, e: usize) -> bool;

    /// Places a run of keys that all share `bucket` as their *primary*
    /// candidate, first-fit in order, and returns how many of the
    /// leading keys fit (always a prefix; fewer than asked means the
    /// bucket is now full). Table-backed hosts override this to load
    /// and store the bucket words once for the whole run.
    fn bulk_place_run(&mut self, bucket: usize, keys: &[Self::Key]) -> usize {
        let _ = bucket;
        let mut placed = 0;
        for key in keys {
            if !self.bulk_try_place(key, 0) {
                break;
            }
            placed += 1;
        }
        placed
    }

    /// Charges the hash counters for `n` items keyed by
    /// [`bulk_key`](BulkHost::bulk_key), exactly as `n` serial inserts
    /// would have.
    fn bulk_record_keys(&self, n: u64);

    /// Records `items` successful sweep placements that inspected
    /// `bucket_accesses` candidate buckets in total.
    fn bulk_record_swept(&self, items: u64, bucket_accesses: u64);

    /// Full insertion (eviction allowed) for the overflow cleanup;
    /// records its own counters exactly like a serial insert.
    fn bulk_insert(&mut self, key: &Self::Key) -> Result<(), InsertError>;
}

/// One in-flight item: its hashed key travels *inside* the sort entry so
/// the scatter and the sweep never chase a random index back into a big
/// side array — every pass over the partitions streams sequentially, and
/// the only random traffic left is cache-resident by construction. The
/// primary bucket is deliberately *not* stored: every key re-derives any
/// of its candidates with a couple of ALU ops, and the narrower entry
/// buys more of the sort working set per cache line.
#[derive(Clone, Copy)]
struct Entry<K> {
    /// Original submission index (for the results vector).
    idx: u32,
    /// The hashed key (fingerprint + candidate-derivation state).
    key: K,
}

/// The sort-sweep-cleanup driver behind every table-backed
/// [`build_from_iter`](vcf_traits::Filter::build_from_iter) override.
///
/// The counting sort runs in two cache-aware passes: the hash pass
/// appends each entry to a coarse partition (a contiguous range of
/// [`PART_BUCKETS_LOG2`]-bit bucket ids, so the write streams stay few
/// and sequential), then each partition is counting-sorted with an
/// L1-resident histogram and swept while its slice of the table is
/// still warm. Same-bucket runs in the sorted order are placed through
/// [`bulk_place_run`](BulkHost::bulk_place_run), which lets the backend
/// load and store the bucket words once per run instead of once per
/// item.
///
/// Returns one result per item in input order, exactly like
/// [`insert_batch`](vcf_traits::Filter::insert_batch).
pub fn build_from_iter<H: BulkHost>(
    host: &mut H,
    items: &mut dyn Iterator<Item = &[u8]>,
) -> Vec<Result<(), InsertError>> {
    let buckets = host.bulk_buckets();
    debug_assert!(buckets <= u32::MAX as usize, "bucket ids must fit u32");
    let parts = buckets.div_ceil(1 << PART_BUCKETS_LOG2).max(1);

    // Hash pass: key every item and append it to its primary bucket's
    // partition. With at most `m / 4096` live write streams this stays
    // friendly to small caches even when the entry set far exceeds them.
    let hint = items.size_hint().0;
    let mut partitions: Vec<Vec<Entry<H::Key>>> = (0..parts)
        .map(|_| Vec::with_capacity(hint / parts + 16))
        .collect();
    let mut n = 0usize;
    for (idx, item) in items.enumerate() {
        debug_assert!(idx <= u32::MAX as usize, "bulk build capped at 2^32 items");
        let key = host.bulk_key(item);
        let primary = host.bulk_candidate(&key, 0);
        debug_assert!(primary < buckets);
        partitions[primary >> PART_BUCKETS_LOG2].push(Entry {
            idx: idx as u32,
            key,
        });
        n = idx + 1;
    }
    host.bulk_record_keys(n as u64);
    sweep_and_cleanup(host, &partitions, n)
}

/// Pre-hashed variant of [`build_from_iter`]: places already-derived
/// keys through the same counting-sort + run-fill sweep, skipping the
/// hash pass entirely. Used by re-packing paths (shrink-to-fit, bulk
/// migration) that hold stored fingerprints rather than original items —
/// no hash counters are charged here, so maintenance work stays out of
/// the per-operation accounting.
pub fn build_from_keys<H: BulkHost>(host: &mut H, keys: &[H::Key]) -> Vec<Result<(), InsertError>> {
    let buckets = host.bulk_buckets();
    debug_assert!(buckets <= u32::MAX as usize, "bucket ids must fit u32");
    debug_assert!(keys.len() <= u32::MAX as usize, "bulk build capped at 2^32");
    let parts = buckets.div_ceil(1 << PART_BUCKETS_LOG2).max(1);
    let mut partitions: Vec<Vec<Entry<H::Key>>> = (0..parts)
        .map(|_| Vec::with_capacity(keys.len() / parts + 16))
        .collect();
    for (idx, &key) in keys.iter().enumerate() {
        let primary = host.bulk_candidate(&key, 0);
        debug_assert!(primary < buckets);
        partitions[primary >> PART_BUCKETS_LOG2].push(Entry {
            idx: idx as u32,
            key,
        });
    }
    sweep_and_cleanup(host, &partitions, keys.len())
}

/// Stages 2–3 shared by [`build_from_iter`] and [`build_from_keys`]:
/// counting-sort each partition, sweep it with run-fill placement, then
/// re-insert the deferred overflow tail through the eviction path.
fn sweep_and_cleanup<H: BulkHost>(
    host: &mut H,
    partitions: &[Vec<Entry<H::Key>>],
    n: usize,
) -> Vec<Result<(), InsertError>> {
    let buckets = host.bulk_buckets();
    debug_assert!(
        partitions.len() == buckets.div_ceil(1 << PART_BUCKETS_LOG2).max(1),
        "one partition per 2^PART_BUCKETS_LOG2 bucket window"
    );
    let mut results: Vec<Result<(), InsertError>> = vec![Ok(()); n];
    if n == 0 {
        return results;
    }

    // Sort & sweep, one partition at a time. The histogram (4097 slots,
    // 16 KiB) and the partition's scratch both fit in cache, so the
    // stable counting sort that was a memory-latency wall as one giant
    // scatter becomes L1/L2 traffic here.
    let mut hist: Vec<u32> = vec![0; (1 << PART_BUCKETS_LOG2) + 1];
    // Sorted scratch in struct-of-arrays form: the sweep hands key
    // sub-slices straight to `bulk_place_run` without re-packing a run
    // buffer, and only touches the index lane for items that overflow.
    let mut scratch_keys: Vec<H::Key> = Vec::new();
    let mut scratch_idx: Vec<u32> = Vec::new();
    let mut deferred: Vec<Entry<H::Key>> = Vec::new();
    let mut swept_items = 0u64;
    let mut swept_accesses = 0u64;
    for (p, part) in partitions.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        let base = p << PART_BUCKETS_LOG2;
        let width = (1usize << PART_BUCKETS_LOG2).min(buckets - base);
        hist[..=width].fill(0);
        for e in part {
            hist[host.bulk_candidate(&e.key, 0) - base + 1] += 1;
        }
        for b in 0..width {
            hist[b + 1] += hist[b];
        }
        let len = part.len();
        scratch_keys.clear();
        scratch_keys.resize(len, part[0].key);
        scratch_idx.clear();
        scratch_idx.resize(len, 0);
        for e in part {
            let slot = &mut hist[host.bulk_candidate(&e.key, 0) - base];
            let pos = *slot as usize;
            scratch_keys[pos] = e.key;
            scratch_idx[pos] = e.idx;
            *slot += 1;
        }

        // First-fit sweep in ascending primary-bucket order. Each
        // same-bucket run goes through the backend's run primitive;
        // whatever does not fit tries its remaining candidates on the
        // spot, and items with every candidate full drop to the cleanup
        // pass.
        let mut i = 0usize;
        while i < len {
            let bucket = host.bulk_candidate(&scratch_keys[i], 0);
            let mut j = i + 1;
            while j < len && host.bulk_candidate(&scratch_keys[j], 0) == bucket {
                j += 1;
            }
            // A bucket holds at most RUN_BUF slots, so one fill call
            // decides the whole run: anything past `take` could only
            // land in an already-full bucket.
            let take = (j - i).min(RUN_BUF);
            let placed = host.bulk_place_run(bucket, &scratch_keys[i..i + take]);
            swept_items += placed as u64;
            swept_accesses += placed as u64;
            for t in i + placed..j {
                let key = scratch_keys[t];
                let k = host.bulk_candidates(&key);
                let mut placed = false;
                for c in 1..k {
                    if host.bulk_try_place(&key, c) {
                        swept_items += 1;
                        swept_accesses += c as u64 + 1;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    deferred.push(Entry {
                        idx: scratch_idx[t],
                        key,
                    });
                }
            }
            i = j;
        }
    }
    host.bulk_record_swept(swept_items, swept_accesses);

    // Bounded cuckoo cleanup: the overflow tail re-inserts with eviction
    // enabled, in original submission order so failures land on the same
    // items a serial tail would report them for, with the next items'
    // candidate buckets prefetched a window ahead.
    deferred.sort_unstable_by_key(|e| e.idx);
    for i in 0..deferred.len() {
        if let Some(ahead) = deferred.get(i + LOOKAHEAD) {
            let k = host.bulk_candidates(&ahead.key);
            for c in 0..k {
                host.bulk_prefetch(host.bulk_candidate(&ahead.key, c));
            }
        }
        let e = &deferred[i];
        results[e.idx as usize] = host.bulk_insert(&e.key);
    }
    results
}

#[cfg(test)]
mod tests {
    use crate::config::CuckooConfig;
    use crate::dvcf::Dvcf;
    use crate::kvcf::KVcf;
    use crate::vcf::VerticalCuckooFilter;
    use vcf_traits::Filter;

    fn key(i: u64) -> Vec<u8> {
        format!("bulk-{i}").into_bytes()
    }

    /// Every `Ok` item must be contained and the occupancy must equal
    /// the `Ok` count — the membership-equivalence contract.
    fn check_bulk_contract<F: Filter>(filter: &mut F, n: u64) {
        let keys: Vec<Vec<u8>> = (0..n).map(key).collect();
        let results = filter.build_from_iter(&mut keys.iter().map(Vec::as_slice));
        assert_eq!(results.len(), keys.len());
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(filter.len(), ok, "occupancy must equal Ok count");
        for (item, result) in keys.iter().zip(&results) {
            if result.is_ok() {
                assert!(filter.contains(item), "acknowledged item lost");
            }
        }
    }

    #[test]
    fn vcf_bulk_build_contract_at_95_percent() {
        let mut f = VerticalCuckooFilter::new(CuckooConfig::new(1 << 10).with_seed(3)).unwrap();
        let n = f.capacity() as u64;
        check_bulk_contract(&mut f, n);
        assert!(
            f.load_factor() > 0.95,
            "bulk build must still reach 95%: {}",
            f.load_factor()
        );
    }

    #[test]
    fn dvcf_bulk_build_contract() {
        let mut f = Dvcf::with_r(CuckooConfig::new(1 << 9).with_seed(5), 0.5).unwrap();
        let n = (f.capacity() as f64 * 0.93) as u64;
        check_bulk_contract(&mut f, n);
    }

    #[test]
    fn kvcf_bulk_build_contract() {
        let config = CuckooConfig::new(1 << 8)
            .with_fingerprint_bits(16)
            .with_seed(7);
        let mut f = KVcf::new(config, 6).unwrap();
        let n = (f.capacity() as f64 * 0.95) as u64;
        check_bulk_contract(&mut f, n);
    }

    #[test]
    fn bulk_matches_serial_at_moderate_load() {
        let config = CuckooConfig::new(1 << 9).with_seed(11);
        let keys: Vec<Vec<u8>> = (0..(1u64 << 11) * 9 / 10).map(key).collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();

        let mut serial = VerticalCuckooFilter::new(config).unwrap();
        let serial_results = serial.insert_batch(&refs);
        let mut bulk = VerticalCuckooFilter::new(config).unwrap();
        let bulk_results = bulk.build_from_iter(&mut refs.iter().copied());

        // At ≤90% load neither path should reject anything, and both
        // must agree item-for-item on membership afterwards.
        assert!(serial_results.iter().all(Result::is_ok));
        assert!(bulk_results.iter().all(Result::is_ok));
        assert_eq!(serial.len(), bulk.len());
        for k in &refs {
            assert!(bulk.contains(k), "bulk lost an acknowledged item");
        }
    }

    #[test]
    fn bulk_counters_account_like_serial() {
        let mut f = VerticalCuckooFilter::new(CuckooConfig::new(1 << 8).with_seed(13)).unwrap();
        let keys: Vec<Vec<u8>> = (0..900).map(key).collect();
        f.build_from_iter(&mut keys.iter().map(Vec::as_slice));
        let s = f.stats();
        assert_eq!(s.inserts.calls, 900, "one recorded insert per item");
        // 2 hashes per item + 1 per relocation, same as serial.
        assert_eq!(s.hash_computations, 2 * s.inserts.calls + s.kicks);
    }

    #[test]
    fn bulk_duplicates_keep_multiset_semantics() {
        let mut f = VerticalCuckooFilter::new(CuckooConfig::new(1 << 8).with_seed(17)).unwrap();
        let item: &[u8] = b"dup";
        let results = f.build_from_iter(&mut [item, item, item].into_iter());
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(f.len(), 3);
        assert!(f.delete(item));
        assert!(f.contains(item), "remaining copies must survive a delete");
    }

    #[test]
    fn bulk_empty_input_is_a_noop() {
        let mut f = VerticalCuckooFilter::new(CuckooConfig::new(1 << 8)).unwrap();
        let results = f.build_from_iter(&mut std::iter::empty());
        assert!(results.is_empty());
        assert!(f.is_empty());
        assert_eq!(f.stats().inserts.calls, 0);
    }
}
