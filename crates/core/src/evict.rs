//! Breadth-first eviction path search shared by the cuckoo-family
//! filters ([`EvictionPolicy::Bfs`](crate::EvictionPolicy::Bfs)).
//!
//! When every candidate bucket of a new item is full, the random-walk
//! policy (Algorithm 1) evicts blind: one table write per kick, an undo
//! log in case the walk dead-ends. BFS instead searches the relocation
//! graph first and writes second. The graph's nodes are buckets; bucket
//! `B` has an edge to bucket `B'` when some resident fingerprint of `B`
//! may legally move to `B'`. Theorem 1's coset closure is what makes this
//! graph *exact* for the vertical filters: a resident's full alternate
//! set is computable from its stored bits and current bucket alone, so an
//! edge found during the search is guaranteed to still be legal when the
//! path executes (nothing mutates between search and execution in the
//! single-threaded filters).
//!
//! The search is deterministic (no RNG), visits each bucket at most once,
//! and is bounded by a node budget derived from `max_kicks`. Because
//! every bucket on a found path is distinct, the path can be executed
//! back-to-front — each move writes into the slot vacated by the move
//! after it — with **no undo log**: the first write targets the empty
//! slot, and nothing is touched unless a complete path was found.

/// One hop of a found relocation path.
///
/// `steps[0]` is a candidate bucket of the new item; `steps.last()` is
/// the bucket holding the empty slot. For `i ≥ 1`, the resident at
/// `(steps[i-1].bucket, steps[i].slot_in_parent)` moves into
/// `steps[i].bucket`, stored there as `steps[i].value`. The root's
/// `value` is the new item's stored form in `steps[0].bucket` (its
/// `slot_in_parent` is meaningless).
#[derive(Debug, Clone, Copy)]
pub struct PathStep<V> {
    /// Bucket this step frees a slot in (root: the insert target).
    pub bucket: usize,
    /// Slot in the *parent's* bucket whose resident moves here.
    pub slot_in_parent: usize,
    /// Stored representation of the mover once it lands in `bucket`
    /// (fingerprints never change on relocation, but k-VCF marks do).
    pub value: V,
}

/// A complete relocation path: `steps.len() - 1` moves plus the final
/// placement of the new item.
#[derive(Debug, Clone)]
pub struct BfsPath<V> {
    /// Root-to-goal chain of buckets; see [`PathStep`].
    pub steps: Vec<PathStep<V>>,
    /// Empty slot in `steps.last().bucket` that anchors the chain.
    pub empty_slot: usize,
}

impl<V> BfsPath<V> {
    /// Number of resident relocations the path performs (the kick count).
    #[must_use]
    pub fn kicks(&self) -> u64 {
        (self.steps.len() - 1) as u64
    }
}

struct Node<V> {
    bucket: usize,
    /// Index of the parent node, `usize::MAX` for roots.
    parent: usize,
    slot_in_parent: usize,
    value: V,
}

/// Breadth-first search for the shortest relocation path from any root
/// to a bucket with an empty slot.
///
/// * `roots` — the new item's candidate buckets, paired with the value
///   the item would be stored as in each (k-VCF marks differ per
///   candidate). Duplicate buckets are ignored.
/// * `max_nodes` — total node budget; once reached no further buckets
///   are expanded, bounding both the frontier and the hash work.
/// * `first_empty(bucket)` — first empty slot of `bucket`, if any.
/// * `expand(bucket, out)` — pushes `(slot, alt_bucket, moved_value)`
///   for every legal single move out of `bucket`; the closure is where
///   the caller hashes resident fingerprints (and counts those hashes).
///
/// Returns the shortest path found, or `None` when the budgeted
/// subgraph contains no empty slot. Visited buckets are deduplicated,
/// so all buckets on a returned path are pairwise distinct — the
/// property that makes back-to-front execution clobber-free.
pub fn search<V: Copy>(
    roots: impl IntoIterator<Item = (usize, V)>,
    max_nodes: usize,
    mut first_empty: impl FnMut(usize) -> Option<usize>,
    mut expand: impl FnMut(usize, &mut Vec<(usize, usize, V)>),
) -> Option<BfsPath<V>> {
    let mut nodes: Vec<Node<V>> = Vec::new();
    let mut visited: Vec<usize> = Vec::new();
    for (bucket, value) in roots {
        if visited.contains(&bucket) {
            continue;
        }
        visited.push(bucket);
        nodes.push(Node {
            bucket,
            parent: usize::MAX,
            slot_in_parent: 0,
            value,
        });
    }

    let mut moves: Vec<(usize, usize, V)> = Vec::new();
    let mut head = 0;
    while let Some(bucket) = nodes.get(head).map(|n| n.bucket) {
        if let Some(slot) = first_empty(bucket) {
            return Some(reconstruct(&nodes, head, slot));
        }
        if nodes.len() < max_nodes {
            moves.clear();
            expand(bucket, &mut moves);
            for &(slot, alt, value) in &moves {
                if nodes.len() >= max_nodes {
                    break;
                }
                if visited.contains(&alt) {
                    continue;
                }
                visited.push(alt);
                nodes.push(Node {
                    bucket: alt,
                    parent: head,
                    slot_in_parent: slot,
                    value,
                });
            }
        }
        head += 1;
    }
    None
}

fn reconstruct<V: Copy>(nodes: &[Node<V>], goal: usize, empty_slot: usize) -> BfsPath<V> {
    let mut steps = Vec::new();
    let mut at = goal;
    loop {
        debug_assert!(at < nodes.len(), "parent links stay within the arena");
        let node = &nodes[at];
        steps.push(PathStep {
            bucket: node.bucket,
            slot_in_parent: node.slot_in_parent,
            value: node.value,
        });
        if node.parent == usize::MAX {
            break;
        }
        at = node.parent;
    }
    steps.reverse();
    BfsPath { steps, empty_slot }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny synthetic relocation graph: bucket `b`'s residents may move
    /// to `b + 1` (slot 0) and `b + 2` (slot 1); buckets ≥ `empty_from`
    /// have slot 3 empty.
    fn toy_search(
        roots: &[usize],
        empty_from: usize,
        max_nodes: usize,
    ) -> Option<BfsPath<&'static str>> {
        search(
            roots.iter().map(|&b| (b, "root")),
            max_nodes,
            |b| (b >= empty_from).then_some(3),
            |b, out| {
                out.push((0, b + 1, "via0"));
                out.push((1, b + 2, "via1"));
            },
        )
    }

    #[test]
    fn root_with_empty_slot_is_zero_kicks() {
        let path = toy_search(&[10], 10, 64).expect("root itself has room");
        assert_eq!(path.kicks(), 0);
        assert_eq!(path.steps[0].bucket, 10);
        assert_eq!(path.empty_slot, 3);
    }

    #[test]
    fn finds_shortest_path() {
        // Roots 0..=1, empties start at bucket 4: 0→2→4 and 1→3→(4|5)
        // tie at 2 kicks; BFS must not return anything longer.
        let path = toy_search(&[0, 1], 4, 64).expect("path exists");
        assert_eq!(path.kicks(), 2);
        let buckets: Vec<usize> = path.steps.iter().map(|s| s.bucket).collect();
        assert!(buckets[0] == 0 || buckets[0] == 1);
        assert!(buckets.last().unwrap() >= &4);
    }

    #[test]
    fn path_buckets_are_distinct() {
        let path = toy_search(&[0], 6, 64).expect("path exists");
        let mut buckets: Vec<usize> = path.steps.iter().map(|s| s.bucket).collect();
        let len = buckets.len();
        buckets.sort_unstable();
        buckets.dedup();
        assert_eq!(
            buckets.len(),
            len,
            "visited-set must keep path buckets distinct"
        );
    }

    #[test]
    fn node_budget_bounds_the_search() {
        // Empties unreachable within 3 nodes (roots included).
        assert!(toy_search(&[0], 100, 3).is_none());
        // Generous budget reaches them.
        assert!(toy_search(&[0], 100, 10_000).is_some());
    }

    #[test]
    fn duplicate_roots_are_deduplicated() {
        let path = toy_search(&[5, 5, 5], 5, 64).expect("root has room");
        assert_eq!(path.kicks(), 0);
    }

    #[test]
    fn values_ride_along_the_path() {
        let path = toy_search(&[0], 2, 64).expect("path exists");
        assert_eq!(path.steps[0].value, "root");
        for step in &path.steps[1..] {
            assert!(step.value.starts_with("via"));
        }
    }
}
