//! Online auto-scaling VCF: exponentially-sized segments, incremental
//! migration, shrink-to-fit.
//!
//! A production filter serving unpredictable traffic cannot be pre-sized,
//! and the classic dynamic-filter answer — chain homogeneous filters and
//! consult every link ([`DynamicVcf`](crate::DynamicVcf)) — lets the
//! lookup fan-out grow without bound. [`ScalableVcf`] instead keeps a
//! *short* chain of exponentially-sized segments and continuously drains
//! the older ones into the newest, so the chain length stays O(1) in
//! steady state and every byte of an old segment is eventually reclaimed.
//!
//! # Segment geometry: cosets confined to the base index space
//!
//! Relocating or migrating a stored fingerprint must not need the
//! original item, so a fingerprint's candidate set has to be derivable
//! from its stored bits in *every* segment size. The filter therefore
//! fixes the vertical-hashing coset arithmetic (Equ. 3, Theorem 1) to the
//! **base** index space of the first segment — `base_bits` index bits,
//! one [`VerticalParams`] for the filter's lifetime — and derives the
//! extra index bits of larger segments from `hash(η)` itself:
//!
//! ```text
//! segment with p extra bits:  bucket = coset_low | (part << base_bits)
//! part = (hash(η) >> 32) & (2^p - 1)         (the "partition selector")
//! ```
//!
//! The coset low bits are segment-invariant (Theorem-1 closure holds per
//! partition: the XOR offsets live entirely below `base_bits`, so
//! relocation never leaves a partition), and the partition selector is a
//! pure function of the fingerprint. Any stored `(bucket, η)` pair can
//! therefore be re-placed into any segment — the property that makes
//! incremental migration and shrink-to-fit possible at all. The cost is
//! that within one segment a fingerprint's four candidates share the
//! partition `part` of `2^p` buckets; the selector is a multiplicative
//! mix of the bits above bit 32 of `hash(η)` — disjoint from the offset
//! bits — so partitions fill uniformly (see [`part_base`]).
//!
//! # The FPR price of elasticity
//!
//! Because the partition selector is a function of the fingerprint, a
//! query only ever probes the partition populated by residents whose
//! fingerprints *share its selector*: conditioning on "same partition"
//! already matches `p` bits worth of fingerprint hash. The per-slot
//! collision probability in a segment `p` doublings above the base is
//! therefore `2^−(f − p)`, not `2^−f` — each partition bit is one
//! effective fingerprint bit spent on addressing, the classic
//! fingerprint-vs-index trade of segmented cuckoo-filter growth. Size
//! `fingerprint_bits` for the *final* capacity you expect to reach
//! (e.g. growing 2^12 → 2^22 slots costs 10 effective bits), exactly as
//! a statically pre-sized filter would spend them as index bits. The
//! k-segment chain bound is `Σ_i fpr_upper_bound(r, b, α_i, f − p_i)`;
//! `tests/fpr_regression.rs` pins the empirical rate to it after every
//! doubling.
//!
//! # Migration protocol
//!
//! Growth appends a segment with one more partition bit (double the
//! buckets) and makes it the insert target. A cursor then drains the
//! *oldest* segment bucket-by-bucket: each drained fingerprint is
//! re-placed into the active segment first and only then cleared from the
//! cold bucket, so a lookup racing the (single-threaded) drain can never
//! miss it. The drain is budgeted — by default each insert performs at
//! most **one** bucket-range of migration work (`migrate_budget`), and
//! [`ScalableFilter::migrate_step`] exposes the same bounded step for
//! explicit maintenance loops. A drain that finds the active segment full
//! stalls without losing ground and resumes after the next growth.

use crate::bitmask::MaskPair;
use crate::bulk::{self, BulkHost};
use crate::config::{CuckooConfig, EvictionPolicy};
use crate::evict;
use crate::key;
use crate::vertical::{Candidates, VerticalParams};
use core::cell::Cell;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vcf_hash::HashKind;
use vcf_table::FingerprintTable;
use vcf_traits::{BuildError, Counters, Filter, InsertError, ScalableFilter, Stats};

/// Bit position in `hash(η)` where the partition selector starts. The
/// XOR offsets consume at most `base_bits < 32` low bits, so selector
/// and offsets never overlap.
const PART_SHIFT: u32 = 32;

/// Hard cap on partition bits (2^24 × base buckets ≥ billions of slots);
/// also keeps every bucket id comfortably within `u32` for the bulk
/// machinery.
const DEFAULT_MAX_PART_BITS: u32 = 24;

/// Active-segment load factor that triggers proactive growth: past this
/// point eviction walks lengthen sharply, so the filter doubles *before*
/// inserts start failing.
const GROW_LOAD: f64 = 0.95;

/// Target load factor a shrink-to-fit repack aims for — high enough to
/// actually reclaim memory, low enough that the run-fill sweep almost
/// always succeeds on the first attempt.
const SHRINK_TARGET_LOAD: f64 = 0.85;

/// Migration work and bookkeeping counters, separate from the per-op
/// [`Stats`] so maintenance traffic never pollutes the paper-facing
/// probe/kick accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Bounded migration steps executed (per-insert amortized ones and
    /// explicit [`ScalableFilter::migrate_step`] calls).
    pub steps: u64,
    /// Cold buckets fully drained into the active segment.
    pub drained_buckets: u64,
    /// Fingerprints moved out of cold segments.
    pub moved_fingerprints: u64,
    /// Drain attempts aborted because the active segment could not take
    /// the displaced fingerprint (resumes after the next growth).
    pub stalls: u64,
    /// Cold buckets drained by the most recent insert — the bounded
    /// per-operation migration work the tests assert on (at most the
    /// configured budget).
    pub last_op_buckets: u64,
}

/// One link of the chain: a fingerprint table whose bucket ids are
/// `coset_low | (partition << base_bits)` with `part_bits` partition
/// bits, plus the migration cursor (buckets `< drained` are empty).
#[derive(Debug, Clone)]
struct Segment {
    table: FingerprintTable,
    part_bits: u32,
    drained: usize,
}

/// Work tally for one placement, aggregated in plain cells and flushed
/// by the caller — keeps migration/rebuild work out of the user-facing
/// counters and avoids double-charging the retry-after-grow path.
#[derive(Debug, Default)]
struct PlaceTally {
    probes: Cell<u64>,
    accesses: Cell<u64>,
    kicks: Cell<u64>,
    hashes: Cell<u64>,
}

impl PlaceTally {
    #[inline]
    fn bump(&self, probes: u64, accesses: u64) {
        self.probes.set(self.probes.get() + probes);
        self.accesses.set(self.accesses.get() + accesses);
    }
}

/// Fibonacci-hashing multiplier (2^64 / φ): one `wrapping_mul` whose
/// *top* bits mix every input bit — the standard multiplicative-hash
/// finalizer.
const PART_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Partition base offset for a fingerprint hash in a segment with
/// `part_bits` partition bits.
///
/// The raw selector half `hash(η) >> 32` is *not* used directly: for
/// short inputs the workspace hash functions leave their high bits
/// poorly avalanched, which clusters fingerprints into a handful of
/// partitions and starves the rest (observed empirically: <3% of
/// partitions populated). A multiplicative mix whose top `part_bits`
/// bits are taken instead distributes the selectors uniformly while
/// remaining a pure function of the stored fingerprint.
#[inline]
fn part_base(hfp: u64, part_bits: u32, base_bits: u32) -> usize {
    if part_bits == 0 {
        return 0;
    }
    let selector = (hfp >> PART_SHIFT).wrapping_mul(PART_MIX) >> (64 - part_bits);
    (selector as usize) << base_bits
}

/// A borrowed placement engine over one segment's table: candidate
/// resolution (coset lows + partition), first-fit placement, and the
/// configured eviction policy. Also a [`BulkHost`], so shrink-to-fit can
/// re-place drained fingerprints through the counting-sort + run-fill
/// sweep of [`crate::bulk`].
struct SegmentPlacer<'a> {
    table: &'a mut FingerprintTable,
    part_bits: u32,
    base_bits: u32,
    params: &'a VerticalParams,
    hash: HashKind,
    rng: &'a mut SmallRng,
    undo: &'a mut Vec<(usize, usize, u32)>,
    max_kicks: u32,
    eviction: EvictionPolicy,
    fingerprint_bits: u32,
    tally: PlaceTally,
}

impl SegmentPlacer<'_> {
    /// Resolves the four candidate buckets of (`lows`, `hfp`) in this
    /// segment: each coset low OR-ed with the partition base.
    #[inline]
    fn segment_buckets(&self, lows: &Candidates, hfp: u64) -> [usize; 4] {
        let part = part_base(hfp, self.part_bits, self.base_bits);
        lows.buckets.map(|low| low | part)
    }

    /// First-fit scan over the candidate buckets; no relocation.
    fn try_place(&mut self, fp: u32, buckets: &[usize; 4]) -> bool {
        let slots = self.table.slots_per_bucket() as u64;
        for &bucket in buckets {
            self.tally.bump(slots, 1);
            if self.table.try_insert(bucket, fp).is_some() {
                return true;
            }
        }
        false
    }

    /// Full placement: candidate scan, then the configured eviction
    /// policy. Relocation stays inside the fingerprint's partition —
    /// the XOR offsets of [`VerticalParams::alternates`] live below
    /// `base_bits`, so the partition bits of every bucket id are
    /// preserved (Theorem-1 closure per partition).
    fn place(&mut self, fp: u32, hfp: u64, lows: Candidates) -> Result<(), InsertError> {
        let buckets = self.segment_buckets(&lows, hfp);
        self.place_resolved(fp, buckets)
    }

    /// Placement with the candidate buckets already resolved.
    fn place_resolved(&mut self, fp: u32, buckets: [usize; 4]) -> Result<(), InsertError> {
        if self.try_place(fp, &buckets) {
            return Ok(());
        }
        match self.eviction {
            EvictionPolicy::RandomWalk => self.place_random_walk(fp, buckets),
            EvictionPolicy::Bfs => self.place_bfs(fp, buckets),
        }
    }

    /// Algorithm 1's random walk with rollback-on-failure, mirroring the
    /// fixed-size VCF.
    fn place_random_walk(&mut self, fp: u32, buckets: [usize; 4]) -> Result<(), InsertError> {
        let slots = self.table.slots_per_bucket();
        self.undo.clear();
        let mut current_fp = fp;
        let mut current_bucket = buckets[self.rng.gen_range(0..4)];
        let mut kicks = 0u64;
        for _ in 0..self.max_kicks {
            let slot = self.rng.gen_range(0..slots);
            let victim = self.table.swap(current_bucket, slot, current_fp);
            self.tally.bump(0, 1);
            self.undo.push((current_bucket, slot, victim));
            current_fp = victim;
            kicks += 1;

            let victim_hash = self.hash.hash_fingerprint(current_fp);
            self.tally.hashes.set(self.tally.hashes.get() + 1);
            let alts = self.params.alternates(current_bucket, victim_hash);
            let mut placed = false;
            for &alt in &alts {
                self.tally.bump(slots as u64, 1);
                if self.table.try_insert(alt, current_fp).is_some() {
                    placed = true;
                    break;
                }
            }
            if placed {
                self.tally.kicks.set(self.tally.kicks.get() + kicks);
                return Ok(());
            }
            current_bucket = alts[self.rng.gen_range(0..3)];
        }

        // Kick limit reached: replay the undo log backwards so the
        // failed placement leaves no trace.
        for &(bucket, slot, previous) in self.undo.iter().rev() {
            self.table.set(bucket, slot, previous);
        }
        self.undo.clear();
        self.tally.kicks.set(self.tally.kicks.get() + kicks);
        Err(InsertError::Full { kicks })
    }

    /// BFS policy: shortest relocation path, executed back-to-front;
    /// nothing is written unless a complete path exists.
    fn place_bfs(&mut self, fp: u32, roots: [usize; 4]) -> Result<(), InsertError> {
        let slots = self.table.slots_per_bucket();
        let max_nodes = if self.max_kicks == 0 {
            0
        } else {
            (self.max_kicks as usize).max(8)
        };
        let path = {
            let table = &*self.table;
            let params = self.params;
            let hash = self.hash;
            let tally = &self.tally;
            evict::search(
                roots.iter().map(|&b| (b, fp)),
                max_nodes,
                |bucket| {
                    tally.bump(slots as u64, 1);
                    table.first_empty_slot(bucket)
                },
                |bucket, out| {
                    tally.bump(0, 1);
                    for slot in 0..slots {
                        let resident = table.get(bucket, slot);
                        let hfp = hash.hash_fingerprint(resident);
                        tally.hashes.set(tally.hashes.get() + 1);
                        for &alt in &params.alternates(bucket, hfp) {
                            out.push((slot, alt, resident));
                        }
                    }
                },
            )
        };
        let Some(path) = path else {
            return Err(InsertError::Full { kicks: 0 });
        };
        let kicks = path.kicks();
        let mut dest = path.empty_slot;
        for step in path.steps[1..].iter().rev() {
            self.table.set(step.bucket, dest, step.value);
            dest = step.slot_in_parent;
        }
        self.table.set(path.steps[0].bucket, dest, fp);
        self.tally.kicks.set(self.tally.kicks.get() + kicks);
        self.tally.bump(0, kicks + 1);
        Ok(())
    }
}

impl BulkHost for SegmentPlacer<'_> {
    /// `(fingerprint, resolved candidate buckets in this segment)`.
    type Key = (u32, [u32; 4]);

    fn bulk_buckets(&self) -> usize {
        self.table.buckets()
    }

    fn bulk_key(&self, item: &[u8]) -> Self::Key {
        let (fp, low) = key::derive(
            self.hash.hash64(item),
            self.fingerprint_bits,
            self.params.index_mask(),
        );
        let hfp = self.hash.hash_fingerprint(fp);
        let lows = self.params.candidates(low, hfp);
        (fp, self.segment_buckets(&lows, hfp).map(|b| b as u32))
    }

    fn bulk_candidates(&self, _key: &Self::Key) -> usize {
        4
    }

    fn bulk_candidate(&self, key: &Self::Key, e: usize) -> usize {
        debug_assert!(e < key.1.len());
        key.1[e] as usize
    }

    fn bulk_prefetch(&self, bucket: usize) {
        self.table.prefetch_bucket(bucket);
    }

    fn bulk_try_place(&mut self, key: &Self::Key, e: usize) -> bool {
        debug_assert!(e < key.1.len());
        self.table.try_insert(key.1[e] as usize, key.0).is_some()
    }

    fn bulk_place_run(&mut self, bucket: usize, keys: &[Self::Key]) -> usize {
        let mut fps = [0u64; vcf_table::MAX_BUCKET_SLOTS];
        let take = keys.len().min(fps.len());
        for (fp, key) in fps.iter_mut().zip(&keys[..take]) {
            *fp = u64::from(key.0);
        }
        self.table.fill(bucket, &fps[..take])
    }

    /// Maintenance rebuilds place *stored* fingerprints, not user items:
    /// no per-op hash charge.
    fn bulk_record_keys(&self, _n: u64) {}

    /// See [`bulk_record_keys`](Self::bulk_record_keys): sweep work
    /// during a repack stays out of the per-op counters.
    fn bulk_record_swept(&self, _items: u64, _bucket_accesses: u64) {}

    fn bulk_insert(&mut self, key: &Self::Key) -> Result<(), InsertError> {
        self.place_resolved(key.0, key.1.map(|b| b as usize))
    }
}

/// Outcome of draining one cold bucket.
enum DrainOutcome {
    /// The cursor advanced one bucket.
    Advanced,
    /// A fully-drained (or emptied) segment was popped; no budget spent.
    SegmentDone,
    /// The active segment is full; the cursor holds its position.
    Stalled,
}

/// An elastic Vertical Cuckoo Filter that grows and shrinks online.
///
/// See the [module docs](self) for the segment geometry and migration
/// protocol. In steady state the chain is one segment and every
/// operation behaves like a fixed-size [`VerticalCuckooFilter`]
/// (modulo the partition confinement); during a growth phase lookups and
/// deletes fan across the short chain and each insert additionally
/// drains at most [`migrate_budget`](Self::migrate_budget) cold
/// bucket-ranges.
///
/// [`VerticalCuckooFilter`]: crate::VerticalCuckooFilter
///
/// # Examples
///
/// ```
/// use vcf_core::{CuckooConfig, ScalableVcf};
/// use vcf_traits::{Filter, ScalableFilter};
///
/// // Starts at 2^6 buckets (256 slots) and grows as needed.
/// let mut filter = ScalableVcf::new(CuckooConfig::new(1 << 6))?;
/// for i in 0u32..10_000 {
///     filter.insert(&i.to_le_bytes())?; // grows online, never blocks long
/// }
/// assert!(filter.contains(&9_999u32.to_le_bytes()));
/// while filter.migration_backlog() > 0 {
///     filter.migrate_step(64);
/// }
/// assert_eq!(filter.segments(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScalableVcf {
    /// Oldest first; the last segment is the insert target.
    segments: Vec<Segment>,
    /// Vertical-hashing parameters over the *base* index space — fixed
    /// for the filter's lifetime (see module docs).
    params: VerticalParams,
    masks: MaskPair,
    hash: HashKind,
    base_bits: u32,
    slots_per_bucket: usize,
    fingerprint_bits: u32,
    max_kicks: u32,
    eviction: EvictionPolicy,
    seed: u64,
    max_part_bits: u32,
    migrate_budget: usize,
    rng: SmallRng,
    undo: Vec<(usize, usize, u32)>,
    counters: Counters,
    migration: MigrationStats,
}

impl ScalableVcf {
    /// Builds a scalable VCF whose first (base) segment uses `config`'s
    /// geometry; `config.buckets` fixes the coset index space for the
    /// filter's lifetime.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry (see
    /// [`CuckooConfig::validate`]).
    pub fn new(config: CuckooConfig) -> Result<Self, BuildError> {
        let masks = MaskPair::balanced(config.fingerprint_bits)?;
        Self::with_masks(config, masks)
    }

    /// Builds a scalable VCF with an explicit mask pair.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry.
    pub fn with_masks(config: CuckooConfig, masks: MaskPair) -> Result<Self, BuildError> {
        config.validate()?;
        let base_bits = config.buckets.trailing_zeros();
        if base_bits >= PART_SHIFT {
            return Err(BuildError::InvalidConfig {
                reason: format!(
                    "base segment of {} buckets leaves no partition-selector bits",
                    config.buckets
                ),
            });
        }
        let table = FingerprintTable::new(
            config.buckets,
            config.slots_per_bucket,
            config.fingerprint_bits,
        )?;
        let params = VerticalParams::new(masks, config.buckets);
        Ok(Self {
            segments: vec![Segment {
                table,
                part_bits: 0,
                drained: 0,
            }],
            params,
            masks,
            hash: config.hash,
            base_bits,
            slots_per_bucket: config.slots_per_bucket,
            fingerprint_bits: config.fingerprint_bits,
            max_kicks: config.max_kicks,
            eviction: config.eviction,
            seed: config.seed,
            max_part_bits: DEFAULT_MAX_PART_BITS.min(31 - base_bits),
            migrate_budget: 1,
            rng: SmallRng::seed_from_u64(config.seed),
            undo: Vec::new(),
            counters: Counters::new(),
            migration: MigrationStats::default(),
        })
    }

    /// The bitmask pair in use.
    pub fn masks(&self) -> MaskPair {
        self.masks
    }

    /// The base-space vertical-hashing parameters (fixed for life).
    pub fn params(&self) -> VerticalParams {
        self.params
    }

    /// The hash function in use.
    pub fn hash_kind(&self) -> HashKind {
        self.hash
    }

    /// Seed of the eviction/placement PRNG.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Expected probability `r` of four distinct candidate buckets
    /// (Equ. 8) for the base-space mask geometry shared by every
    /// segment — the coset arithmetic never changes as the filter grows.
    pub fn expected_r(&self) -> f64 {
        let index_bits = self.base_bits.max(2);
        match self.masks.restricted_to(index_bits) {
            Some(m) => m.expected_r(),
            None => 0.0,
        }
    }

    /// Fingerprint width `f` in bits.
    pub fn fingerprint_bits(&self) -> u32 {
        self.fingerprint_bits
    }

    /// Bucket count of the base (coset index space) segment.
    pub fn base_buckets(&self) -> usize {
        1 << self.base_bits
    }

    /// Cold bucket-ranges each insert drains (0 disables amortized
    /// migration; [`ScalableFilter::migrate_step`] still works).
    pub fn migrate_budget(&self) -> usize {
        self.migrate_budget
    }

    /// Sets the per-insert migration budget in bucket-ranges. The
    /// default of 1 already drains faster than growth accumulates
    /// backlog (an active segment absorbs ~4× its bucket count in
    /// inserts before the next doubling, while the whole cold chain
    /// holds fewer buckets than the active segment).
    pub fn set_migrate_budget(&mut self, buckets_per_insert: usize) {
        self.migrate_budget = buckets_per_insert;
    }

    /// Caps growth at `max_part_bits` doublings over the base segment;
    /// at the cap inserts fail with [`InsertError::Full`] once the
    /// chain saturates, exactly like a fixed-size filter.
    pub fn set_growth_limit(&mut self, max_part_bits: u32) {
        self.max_part_bits = max_part_bits.min(31 - self.base_bits);
    }

    /// Migration work counters (separate from [`Filter::stats`]).
    pub fn migration_stats(&self) -> MigrationStats {
        self.migration
    }

    /// Heap bytes used by all segment tables.
    pub fn storage_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.table.storage_bytes()).sum()
    }

    /// Every stored `(segment, bucket, fingerprint)` triple, oldest
    /// segment first — introspection for tests and differential
    /// harnesses.
    pub fn stored(&self) -> impl Iterator<Item = (usize, usize, u32)> + '_ {
        self.segments.iter().enumerate().flat_map(|(i, seg)| {
            seg.table
                .iter()
                .map(move |(bucket, _slot, fp)| (i, bucket, fp))
        })
    }

    #[inline]
    fn key_of(&self, item: &[u8]) -> (u32, usize) {
        key::derive(
            self.hash.hash64(item),
            self.fingerprint_bits,
            self.params.index_mask(),
        )
    }

    /// Canonical coset key for a `(coset low, fingerprint)` pair:
    /// `(min candidate bucket) << 32 | fingerprint`. Theorem 1 closure
    /// makes the minimum identical from every member bucket, so the same
    /// key is derivable from a query item *and* from stored bits alone —
    /// the partial-key invariant extended across the freeze boundary.
    #[inline]
    fn canonical_of(&self, fp: u32, low: usize) -> u64 {
        let hfp = self.hash.hash_fingerprint(fp);
        let lows = self.params.candidates(low, hfp);
        ((lows.canonical_low() as u64) << 32) | u64::from(fp)
    }

    /// Canonical coset key of a query item (see
    /// [`canonical_keys`](Self::canonical_keys)). Two items hashing to
    /// the same `(coset, fingerprint)` pair share a key — exactly the
    /// pairs this filter already cannot tell apart.
    pub fn canonical_key(&self, item: &[u8]) -> u64 {
        let (fp, low) = self.key_of(item);
        self.canonical_of(fp, low)
    }

    /// Canonical coset keys of every stored fingerprint, derived from
    /// stored bits alone (no original items needed): the freeze-boundary
    /// export that lets a [`crate::TieredFilter`] drain this filter into
    /// an immutable frozen generation.
    pub fn canonical_keys(&self) -> impl Iterator<Item = u64> + '_ {
        let mask = self.params.index_mask();
        self.stored()
            .map(move |(_seg, bucket, fp)| self.canonical_of(fp, bucket & (mask as usize)))
    }

    /// Number of physical buckets in segment `segment` (0 for an
    /// out-of-range index) — the bound for
    /// [`bucket_canonical_keys`](Self::bucket_canonical_keys) sweeps.
    pub fn segment_buckets(&self, segment: usize) -> usize {
        self.segments.get(segment).map_or(0, |s| s.table.buckets())
    }

    /// Appends the canonical coset keys stored in one physical bucket of
    /// one segment to `out` — the bounded unit of rotation work, sized
    /// exactly like PR 7's migration bucket-ranges so a tiered drain can
    /// amortize across serving operations.
    pub fn bucket_canonical_keys(&self, segment: usize, bucket: usize, out: &mut Vec<u64>) {
        let mask = self.params.index_mask() as usize;
        let Some(seg) = self.segments.get(segment) else {
            return;
        };
        if bucket >= seg.table.buckets() {
            return;
        }
        for slot in 0..seg.table.slots_per_bucket() {
            let fp = seg.table.get(bucket, slot);
            if fp != 0 {
                out.push(self.canonical_of(fp, bucket & mask));
            }
        }
    }

    /// Whether the active segment has hit the proactive-growth
    /// watermark.
    fn active_wants_growth(&self) -> bool {
        self.segments
            .last()
            .is_some_and(|a| a.table.load_factor() >= GROW_LOAD)
    }

    /// Appends a segment with one more partition bit (double the
    /// buckets) as the new insert target.
    fn grow_segment(&mut self) -> Result<(), BuildError> {
        let part_bits = match self.segments.last() {
            Some(active) => active.part_bits + 1,
            None => 0,
        };
        if part_bits > self.max_part_bits {
            return Err(BuildError::InvalidConfig {
                reason: format!(
                    "growth limit reached: {part_bits} partition bits exceeds the cap of {}",
                    self.max_part_bits
                ),
            });
        }
        let buckets = 1usize << (self.base_bits + part_bits);
        let table = FingerprintTable::new(buckets, self.slots_per_bucket, self.fingerprint_bits)?;
        self.segments.push(Segment {
            table,
            part_bits,
            drained: 0,
        });
        Ok(())
    }

    /// Places `(fp, hfp, lows)` into the active segment, accumulating
    /// probe/access work into the caller's tallies (kicks and extra
    /// fingerprint hashes flush straight to the counters, as the
    /// fixed-size filter does).
    fn place_active(
        &mut self,
        fp: u32,
        hfp: u64,
        lows: Candidates,
        probes: &mut u64,
        accesses: &mut u64,
    ) -> Result<(), InsertError> {
        let Self {
            segments,
            params,
            rng,
            undo,
            counters,
            ..
        } = self;
        let Some(active) = segments.last_mut() else {
            return Err(InsertError::Full { kicks: 0 });
        };
        let mut placer = SegmentPlacer {
            table: &mut active.table,
            part_bits: active.part_bits,
            base_bits: self.base_bits,
            params,
            hash: self.hash,
            rng,
            undo,
            max_kicks: self.max_kicks,
            eviction: self.eviction,
            fingerprint_bits: self.fingerprint_bits,
            tally: PlaceTally::default(),
        };
        let result = placer.place(fp, hfp, lows);
        *probes += placer.tally.probes.get();
        *accesses += placer.tally.accesses.get();
        counters.add_kicks(placer.tally.kicks.get());
        counters.add_hashes(placer.tally.hashes.get());
        result
    }

    /// One insert's worth of work: amortized migration, proactive
    /// growth, placement, reactive growth + retry on a full active
    /// segment. Exactly one logical insert is recorded.
    fn insert_prehashed(&mut self, fp: u32, hfp: u64, lows: Candidates) -> Result<(), InsertError> {
        self.migration.last_op_buckets = 0;
        if self.migrate_budget > 0 && self.segments.len() > 1 {
            let drained = self.migrate_some(self.migrate_budget);
            self.migration.last_op_buckets = drained as u64;
        }
        if self.active_wants_growth() {
            // At the growth cap the active segment simply keeps filling.
            let _ = self.grow_segment();
        }
        let mut probes = 0u64;
        let mut accesses = 0u64;
        let first = self.place_active(fp, hfp, lows, &mut probes, &mut accesses);
        let result = match first {
            Err(InsertError::Full { kicks }) => {
                if self.grow_segment().is_ok() {
                    self.place_active(fp, hfp, lows, &mut probes, &mut accesses)
                } else {
                    Err(InsertError::Full { kicks })
                }
            }
            other => other,
        };
        self.counters.record_insert(probes, accesses);
        if result.is_err() {
            self.counters.add_failed_insert();
        }
        result
    }

    /// Drains up to `budget` cold buckets into the active segment.
    fn migrate_some(&mut self, budget: usize) -> usize {
        if self.segments.len() < 2 {
            return 0;
        }
        self.migration.steps += 1;
        let mut drained = 0usize;
        while drained < budget && self.segments.len() > 1 {
            match self.drain_one_bucket() {
                DrainOutcome::Advanced => drained += 1,
                DrainOutcome::SegmentDone => {}
                DrainOutcome::Stalled => break,
            }
        }
        drained
    }

    /// Drains the bucket under the oldest segment's cursor. Each
    /// fingerprint is placed in the active segment *before* being
    /// cleared from the cold bucket, so membership answers never flicker
    /// mid-drain.
    fn drain_one_bucket(&mut self) -> DrainOutcome {
        let Self {
            segments,
            params,
            rng,
            undo,
            migration,
            ..
        } = self;
        let Some(oldest) = segments.first() else {
            return DrainOutcome::SegmentDone;
        };
        if oldest.drained >= oldest.table.buckets() || oldest.table.occupied() == 0 {
            segments.remove(0);
            return DrainOutcome::SegmentDone;
        }
        let (cold_head, rest) = segments.split_at_mut(1);
        let cold = &mut cold_head[0];
        let Some(active) = rest.last_mut() else {
            return DrainOutcome::Stalled;
        };
        let bucket = cold.drained;
        let slots = cold.table.slots_per_bucket();
        let mut placer = SegmentPlacer {
            table: &mut active.table,
            part_bits: active.part_bits,
            base_bits: self.base_bits,
            params,
            hash: self.hash,
            rng,
            undo,
            max_kicks: self.max_kicks,
            eviction: self.eviction,
            fingerprint_bits: self.fingerprint_bits,
            tally: PlaceTally::default(),
        };
        for slot in 0..slots {
            let fp = cold.table.get(bucket, slot);
            if fp == 0 {
                continue;
            }
            let hfp = self.hash.hash_fingerprint(fp);
            // Theorem 1: the coset lows are recoverable from the
            // resident bucket alone (candidates() reduces the bucket id
            // to the base domain internally).
            let lows = params.candidates(bucket, hfp);
            match placer.place(fp, hfp, lows) {
                Ok(()) => {
                    cold.table.set(bucket, slot, 0);
                    migration.moved_fingerprints += 1;
                }
                Err(_) => {
                    migration.stalls += 1;
                    return DrainOutcome::Stalled;
                }
            }
        }
        cold.drained = bucket + 1;
        migration.drained_buckets += 1;
        // Pop the segment as soon as it is exhausted so "backlog 0"
        // always coincides with a flat chain.
        if cold.drained >= cold.table.buckets() || cold.table.occupied() == 0 {
            segments.remove(0);
        }
        DrainOutcome::Advanced
    }

    /// Attempts to re-pack every stored fingerprint into a single fresh
    /// segment with `part_bits` partition bits, via the bulk run-fill
    /// sweep. Commits only on complete success.
    fn try_repack(&mut self, part_bits: u32) -> bool {
        let buckets = 1usize << (self.base_bits + part_bits);
        let Ok(mut table) =
            FingerprintTable::new(buckets, self.slots_per_bucket, self.fingerprint_bits)
        else {
            return false;
        };
        let mut keys: Vec<(u32, [u32; 4])> = Vec::with_capacity(self.len());
        for seg in &self.segments {
            for (bucket, _slot, fp) in seg.table.iter() {
                let hfp = self.hash.hash_fingerprint(fp);
                let lows = self.params.candidates(bucket, hfp);
                let part = part_base(hfp, part_bits, self.base_bits);
                keys.push((fp, lows.buckets.map(|low| (low | part) as u32)));
            }
        }
        let Self {
            params, rng, undo, ..
        } = self;
        let mut placer = SegmentPlacer {
            table: &mut table,
            part_bits,
            base_bits: self.base_bits,
            params,
            hash: self.hash,
            rng,
            undo,
            max_kicks: self.max_kicks,
            eviction: self.eviction,
            fingerprint_bits: self.fingerprint_bits,
            tally: PlaceTally::default(),
        };
        let results = bulk::build_from_keys(&mut placer, &keys);
        if results.iter().all(Result::is_ok) {
            self.segments = vec![Segment {
                table,
                part_bits,
                drained: 0,
            }];
            true
        } else {
            false
        }
    }

    /// Re-packs the chain into the smallest single segment that holds
    /// the current occupancy at ≤ [`SHRINK_TARGET_LOAD`], retrying one
    /// bit larger on placement overflow. Returns `false` when no
    /// geometry smaller than the current footprint exists.
    fn repack_smallest(&mut self) -> bool {
        let live = self.len();
        let needed_slots = ((live as f64 / SHRINK_TARGET_LOAD).ceil() as usize).max(1);
        let needed_buckets = needed_slots
            .div_ceil(self.slots_per_bucket)
            .next_power_of_two()
            .max(self.base_buckets());
        let mut part_bits = needed_buckets.trailing_zeros() - self.base_bits;
        let current_capacity = self.capacity();
        loop {
            let buckets = 1usize << (self.base_bits + part_bits);
            if buckets * self.slots_per_bucket >= current_capacity {
                return false;
            }
            if self.try_repack(part_bits) {
                return true;
            }
            part_bits += 1;
        }
    }
}

impl ScalableFilter for ScalableVcf {
    fn grow(&mut self) -> Result<(), BuildError> {
        self.grow_segment()
    }

    fn shrink_to_fit(&mut self) -> bool {
        self.repack_smallest()
    }

    fn migrate_step(&mut self, buckets: usize) -> usize {
        self.migrate_some(buckets)
    }

    fn migration_backlog(&self) -> usize {
        let cold = self.segments.len().saturating_sub(1);
        self.segments
            .iter()
            .take(cold)
            .map(|s| s.table.buckets() - s.drained)
            .sum()
    }

    fn segments(&self) -> usize {
        self.segments.len()
    }

    fn segment_lens(&self) -> Vec<usize> {
        self.segments.iter().map(|s| s.table.occupied()).collect()
    }

    fn segment_capacities(&self) -> Vec<usize> {
        self.segments.iter().map(|s| s.table.capacity()).collect()
    }
}

impl Filter for ScalableVcf {
    // lint: hot-path
    /// Insert into the active segment, draining at most
    /// [`migrate_budget`](Self::migrate_budget) cold bucket-ranges first
    /// and growing the chain when the active segment is (nearly) full.
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        let (fp, low) = self.key_of(item);
        let hfp = self.hash.hash_fingerprint(fp);
        self.counters.add_hashes(2); // hash(x) + hash(η)
        let lows = self.params.candidates(low, hfp);
        self.insert_prehashed(fp, hfp, lows)
    }

    // lint: hot-path
    /// Pipelined insert: hashes a window of items up front, prefetching
    /// each one's candidate buckets in the active segment, then places in
    /// item order through the exact serial path (same PRNG consumption,
    /// same growth/migration schedule).
    fn insert_batch(&mut self, items: &[&[u8]]) -> Vec<Result<(), InsertError>> {
        const WINDOW: usize = 16;
        let mut out = Vec::with_capacity(items.len());
        let mut window: Vec<(u32, u64, Candidates)> = Vec::with_capacity(WINDOW);
        for chunk in items.chunks(WINDOW) {
            window.clear();
            for item in chunk {
                let (fp, low) = self.key_of(item);
                let hfp = self.hash.hash_fingerprint(fp);
                self.counters.add_hashes(2);
                let lows = self.params.candidates(low, hfp);
                if let Some(active) = self.segments.last() {
                    let part = part_base(hfp, active.part_bits, self.base_bits);
                    for low in lows.iter() {
                        active.table.prefetch_bucket(low | part);
                    }
                }
                window.push((fp, hfp, lows));
            }
            for &(fp, hfp, lows) in &window {
                out.push(self.insert_prehashed(fp, hfp, lows));
            }
        }
        out
    }

    // lint: hot-path
    /// Probes the chain newest-first: an item's four candidate buckets
    /// in each segment (coset lows OR the segment's partition base).
    fn contains(&self, item: &[u8]) -> bool {
        let (fp, low) = self.key_of(item);
        let hfp = self.hash.hash_fingerprint(fp);
        let lows = self.params.candidates(low, hfp);
        let mut probes = 0u64;
        let mut accesses = 0u64;
        let mut found = false;
        for seg in self.segments.iter().rev() {
            let part = part_base(hfp, seg.part_bits, self.base_bits);
            let buckets = lows.buckets.map(|low| low | part);
            probes += (buckets.len() * seg.table.slots_per_bucket()) as u64;
            accesses += buckets.len() as u64;
            if seg.table.contains_any(&buckets, fp) {
                found = true;
                break;
            }
        }
        self.counters.record_lookup(probes, accesses);
        found
    }

    // lint: hot-path
    /// Two-pass batched lookup over the whole chain: hash every item and
    /// early-touch its candidate buckets in *every* segment, then probe
    /// newest-first against warm lines — the fixed-size filter's
    /// prefetch pipeline extended with the segment fan-out.
    fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        let mut keys = Vec::with_capacity(items.len());
        for item in items {
            let (fp, low) = self.key_of(item);
            let hfp = self.hash.hash_fingerprint(fp);
            let lows = self.params.candidates(low, hfp);
            for seg in &self.segments {
                let part = part_base(hfp, seg.part_bits, self.base_bits);
                for low in lows.iter() {
                    seg.table.touch_bucket(low | part);
                }
            }
            keys.push((fp, hfp, lows));
        }
        let mut out = Vec::with_capacity(items.len());
        for &(fp, hfp, lows) in &keys {
            let mut probes = 0u64;
            let mut accesses = 0u64;
            let mut found = false;
            for seg in self.segments.iter().rev() {
                let part = part_base(hfp, seg.part_bits, self.base_bits);
                let buckets = lows.buckets.map(|low| low | part);
                probes += (buckets.len() * seg.table.slots_per_bucket()) as u64;
                accesses += buckets.len() as u64;
                if seg.table.contains_any(&buckets, fp) {
                    found = true;
                    break;
                }
            }
            self.counters.record_lookup(probes, accesses);
            out.push(found);
        }
        out
    }

    // lint: hot-path
    /// Removes one copy, scanning segments newest-first (mirroring
    /// insert preference) with per-segment bucket deduplication, so
    /// exactly one stored fingerprint is removed per successful call —
    /// multiset semantics across the chain.
    fn delete(&mut self, item: &[u8]) -> bool {
        let (fp, low) = self.key_of(item);
        let hfp = self.hash.hash_fingerprint(fp);
        let lows = self.params.candidates(low, hfp);
        let base_bits = self.base_bits;
        let mut probes = 0u64;
        let mut accesses = 0u64;
        let mut removed = false;
        'segments: for seg in self.segments.iter_mut().rev() {
            let part = part_base(hfp, seg.part_bits, base_bits);
            // Deduplicate degenerate candidates: removing from the same
            // physical bucket twice would delete two copies.
            let mut tried = [usize::MAX; 4];
            let mut tried_len = 0;
            for low in lows.iter() {
                let bucket = low | part;
                if tried[..tried_len].contains(&bucket) {
                    continue;
                }
                // Four candidates at most, so the scratch cannot fill.
                debug_assert!(tried_len < tried.len(), "at most 4 distinct candidates");
                tried[tried_len] = bucket;
                tried_len += 1;
                probes += seg.table.slots_per_bucket() as u64;
                accesses += 1;
                if seg.table.remove_one(bucket, fp) {
                    removed = true;
                    break 'segments;
                }
            }
        }
        self.counters.record_delete(probes, accesses);
        removed
    }

    fn len(&self) -> usize {
        self.segments.iter().map(|s| s.table.occupied()).sum()
    }

    fn capacity(&self) -> usize {
        self.segments.iter().map(|s| s.table.capacity()).sum()
    }

    fn stats(&self) -> Stats {
        self.counters.snapshot()
    }

    fn reset_stats(&mut self) {
        self.counters.reset();
    }

    fn name(&self) -> String {
        format!("ScalableVCF[{}]", self.segments.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("scale-{i}").into_bytes()
    }

    fn small() -> ScalableVcf {
        ScalableVcf::new(CuckooConfig::new(1 << 6).with_seed(7)).unwrap()
    }

    #[test]
    fn roundtrip_within_base_segment() {
        let mut f = small();
        f.insert(b"x").unwrap();
        assert!(f.contains(b"x"));
        assert_eq!(f.len(), 1);
        assert!(f.delete(b"x"));
        assert!(!f.contains(b"x"));
        assert_eq!(f.len(), 0);
        assert_eq!(f.segments(), 1);
    }

    #[test]
    fn grows_under_sustained_inserts_with_no_false_negatives() {
        let mut f = small();
        let n = 20_000u64;
        for i in 0..n {
            f.insert(&key(i)).unwrap();
            // The bounded-latency guarantee: one bucket-range per op.
            assert!(
                f.migration_stats().last_op_buckets <= 1,
                "insert {i} did {} bucket-ranges of migration work",
                f.migration_stats().last_op_buckets
            );
        }
        assert_eq!(f.len(), n as usize);
        assert!(f.capacity() >= n as usize);
        for i in 0..n {
            assert!(f.contains(&key(i)), "item {i} lost during growth");
        }
    }

    #[test]
    fn amortized_migration_keeps_chain_short() {
        let mut f = small();
        for i in 0..50_000u64 {
            f.insert(&key(i)).unwrap();
        }
        // With budget 1 the drain outpaces growth: at most the active
        // segment, one draining predecessor, and a freshly-grown target.
        assert!(
            f.segments() <= 3,
            "chain should stay short: {} segments",
            f.segments()
        );
    }

    #[test]
    fn explicit_migration_flattens_the_chain() {
        let mut f = small();
        f.set_migrate_budget(0); // growth only, no amortized draining
        for i in 0..5_000u64 {
            f.insert(&key(i)).unwrap();
        }
        assert!(f.segments() > 1);
        assert_eq!(f.len(), 5_000);
        let mut guard = 0;
        while f.migration_backlog() > 0 {
            // Per the ScalableFilter contract a step may stall when the
            // active segment cannot take a displaced fingerprint; a grow
            // unblocks it.
            if f.migrate_step(16) == 0 && f.migration_backlog() > 0 {
                f.grow().unwrap();
            }
            guard += 1;
            assert!(guard < 100_000, "migration never converged");
        }
        assert_eq!(f.segments(), 1);
        assert_eq!(f.len(), 5_000, "migration must preserve occupancy");
        for i in 0..5_000u64 {
            assert!(f.contains(&key(i)), "item {i} lost by migration");
        }
    }

    #[test]
    fn migrate_step_respects_budget() {
        let mut f = small();
        f.set_migrate_budget(0);
        for i in 0..3_000u64 {
            f.insert(&key(i)).unwrap();
        }
        let backlog = f.migration_backlog();
        assert!(backlog > 4);
        assert!(f.migrate_step(3) <= 3);
        assert!(f.migration_backlog() >= backlog - 3 - 1);
    }

    #[test]
    fn delete_works_across_segments_after_partial_migration() {
        let mut f = small();
        f.set_migrate_budget(0);
        for i in 0..4_000u64 {
            f.insert(&key(i)).unwrap();
        }
        f.migrate_step(f.migration_backlog() / 2); // leave the chain mid-drain
        for i in 0..4_000u64 {
            assert!(f.delete(&key(i)), "failed to delete {i} mid-migration");
        }
        assert_eq!(f.len(), 0, "every copy must be deleted exactly once");
    }

    #[test]
    fn duplicate_copies_follow_multiset_semantics() {
        let mut f = small();
        for i in 0..2_000u64 {
            f.insert(&key(i)).unwrap();
        }
        f.insert(b"dup").unwrap();
        f.insert(b"dup").unwrap();
        assert!(f.delete(b"dup"));
        assert!(f.contains(b"dup"), "second copy must survive one delete");
        assert!(f.delete(b"dup"));
        assert!(!f.contains(b"dup"));
    }

    #[test]
    fn shrink_to_fit_reclaims_after_mass_deletes() {
        let mut f = small();
        for i in 0..20_000u64 {
            f.insert(&key(i)).unwrap();
        }
        for i in 500..20_000u64 {
            assert!(f.delete(&key(i)));
        }
        let before = f.capacity();
        assert!(f.shrink_to_fit(), "shrink must find a smaller geometry");
        assert!(f.capacity() < before, "capacity must drop");
        assert_eq!(f.segments(), 1);
        assert_eq!(f.len(), 500, "repack must preserve occupancy");
        for i in 0..500u64 {
            assert!(f.contains(&key(i)), "item {i} lost by shrink");
        }
        // Already-minimal chains refuse to shrink further.
        assert!(!f.shrink_to_fit());
    }

    #[test]
    fn shrink_on_minimal_filter_is_a_noop() {
        let mut f = small();
        f.insert(b"one").unwrap();
        assert!(!f.shrink_to_fit());
        assert!(f.contains(b"one"));
    }

    #[test]
    fn growth_limit_is_enforced() {
        let mut f = small();
        f.set_growth_limit(1); // base + one doubling = 768 slots total
        let mut stored = 0u64;
        let mut failed = false;
        for i in 0..4_000u64 {
            match f.insert(&key(i)) {
                Ok(()) => stored += 1,
                Err(InsertError::Full { .. }) => {
                    failed = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(failed, "capped filter must eventually refuse");
        // With only two 64-bucket partitions the per-partition load
        // variance is high; require at least one partition's worth.
        assert!(
            stored >= 256,
            "segments should fill substantially: {stored}"
        );
        // Everything acknowledged must still be present.
        for i in 0..stored {
            assert!(f.contains(&key(i)), "item {i} lost at the growth cap");
        }
    }

    #[test]
    fn insert_batch_matches_serial_exactly() {
        let keys: Vec<Vec<u8>> = (0..6_000).map(key).collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let config = CuckooConfig::new(1 << 6).with_seed(42);

        let mut serial = ScalableVcf::new(config).unwrap();
        let serial_results: Vec<_> = refs.iter().map(|k| serial.insert(k)).collect();
        let mut batched = ScalableVcf::new(config).unwrap();
        let batch_results = batched.insert_batch(&refs);

        assert_eq!(serial_results, batch_results);
        assert_eq!(serial.len(), batched.len());
        assert_eq!(serial.segments(), batched.segments());
        let a: Vec<_> = serial.stored().collect();
        let b: Vec<_> = batched.stored().collect();
        assert_eq!(a, b, "batched insert must be bit-identical to serial");
    }

    #[test]
    fn contains_batch_matches_serial_contains() {
        let mut f = small();
        for i in 0..4_000u64 {
            f.insert(&key(i)).unwrap();
        }
        let queries: Vec<Vec<u8>> = (0..8_000).map(key).collect();
        let refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
        let batched = f.contains_batch(&refs);
        for (q, got) in refs.iter().zip(&batched) {
            assert_eq!(*got, f.contains(q));
        }
    }

    #[test]
    fn bfs_eviction_policy_grows_too() {
        let mut f = ScalableVcf::new(
            CuckooConfig::new(1 << 6)
                .with_seed(9)
                .with_eviction_policy(EvictionPolicy::Bfs),
        )
        .unwrap();
        for i in 0..5_000u64 {
            f.insert(&key(i)).unwrap();
        }
        for i in 0..5_000u64 {
            assert!(f.contains(&key(i)), "item {i} lost under BFS growth");
        }
    }

    #[test]
    fn counters_record_one_logical_insert_per_call() {
        let mut f = small();
        for i in 0..3_000u64 {
            f.insert(&key(i)).unwrap();
        }
        let s = f.stats();
        assert_eq!(s.inserts.calls, 3_000);
        // Random walk: 2 hashes per insert + 1 per kick, with migration
        // work deliberately excluded from the per-op accounting.
        assert_eq!(s.hash_computations, 2 * s.inserts.calls + s.kicks);
    }

    #[test]
    fn migration_stats_track_drained_work() {
        let mut f = small();
        for i in 0..5_000u64 {
            f.insert(&key(i)).unwrap();
        }
        let m = f.migration_stats();
        assert!(m.steps > 0);
        assert!(m.drained_buckets > 0);
        assert!(m.moved_fingerprints > 0);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let mut f = ScalableVcf::new(CuckooConfig::new(1 << 6).with_seed(77)).unwrap();
            for i in 0..8_000u64 {
                f.insert(&key(i)).unwrap();
            }
            let stored: Vec<_> = f.stored().collect();
            (f.segments(), f.stats().kicks, stored)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn name_reports_segment_count() {
        let mut f = small();
        assert_eq!(f.name(), "ScalableVCF[1]");
        f.grow().unwrap();
        assert_eq!(f.name(), "ScalableVCF[2]");
    }

    #[test]
    fn rejects_geometry_without_selector_bits() {
        assert!(ScalableVcf::new(CuckooConfig::new(1 << 6)).is_ok());
        // A 2^32-bucket base would leave no partition-selector bits; we
        // cannot allocate that in a test, but the validation must reject
        // non-power-of-two geometry the same way the fixed filter does.
        assert!(ScalableVcf::new(CuckooConfig::new(12)).is_err());
    }

    #[test]
    fn filter_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScalableVcf>();
    }

    #[test]
    fn partition_confinement_invariant_holds() {
        // Every resident must sit in a bucket whose partition bits equal
        // the selector derived from its own fingerprint hash — the
        // invariant that makes relocation and migration exact.
        let mut f = small();
        for i in 0..20_000u64 {
            f.insert(&key(i)).unwrap();
        }
        let base_bits = f.base_buckets().trailing_zeros();
        let stored: Vec<_> = f.stored().collect();
        for (seg, bucket, fp) in stored {
            let seg_buckets = f.segments[seg].table.buckets();
            let part_bits = seg_buckets.trailing_zeros() - base_bits;
            let hfp = f.hash_kind().hash_fingerprint(fp);
            let expected = part_base(hfp, part_bits, base_bits);
            assert_eq!(
                bucket >> base_bits << base_bits,
                expected,
                "resident {fp:#x} in segment {seg} bucket {bucket} violates confinement"
            );
        }
    }
}
