//! A dynamically growing Vertical Cuckoo Filter.
//!
//! Plain cuckoo filters are fixed-capacity: past the achievable load
//! factor, insertions fail. The Dynamic Cuckoo Filter (Chen et al., ICNP
//! 2017 — reference [12] of the VCF paper) solves this by chaining
//! homogeneous filters and appending a fresh one when the current fills;
//! the cost is that lookups must consult every link. `DynamicVcf` applies
//! the same construction to VCFs, inheriting vertical hashing's high
//! per-link load factor (fewer, fuller links than a CF chain — the two
//! effects compound).
//!
//! `DynamicVcf` is kept as the paper-faithful DCF-style baseline: its
//! links never shrink and its lookup fan-out grows with the chain. For
//! production-style elasticity prefer [`ScalableVcf`](crate::ScalableVcf),
//! which drains old segments incrementally so the chain stays O(1) and
//! supports shrink-to-fit.

use crate::config::CuckooConfig;
use crate::vcf::VerticalCuckooFilter;
use vcf_traits::{BuildError, Counters, Filter, InsertError, Stats};

/// A chain of Vertical Cuckoo Filters that grows on demand.
///
/// Inserts go to the newest link, falling back to older links (they may
/// have gained space through deletions) before growing the chain. Lookups
/// and deletions scan all links — the paper's noted trade-off for dynamic
/// filters ("each lookup needs to check all linked CFs", Section II-B).
///
/// # Examples
///
/// ```
/// use vcf_core::{CuckooConfig, DynamicVcf};
/// use vcf_traits::Filter;
///
/// // Starts with one 2^6-bucket link and grows as needed.
/// let mut filter = DynamicVcf::new(CuckooConfig::new(1 << 6))?;
/// for i in 0u32..2000 {
///     filter.insert(&i.to_le_bytes())?; // never fails: the chain grows
/// }
/// assert!(filter.links() > 1);
/// assert!(filter.contains(&1999u32.to_le_bytes()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicVcf {
    links: Vec<VerticalCuckooFilter>,
    template: CuckooConfig,
    max_links: usize,
    counters: Counters,
}

impl DynamicVcf {
    /// Default cap on chain length — a safety valve, not a sizing hint.
    pub const DEFAULT_MAX_LINKS: usize = 64;

    /// Builds a dynamic filter whose links all use `template`'s geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid template geometry.
    pub fn new(template: CuckooConfig) -> Result<Self, BuildError> {
        Self::with_max_links(template, Self::DEFAULT_MAX_LINKS)
    }

    /// Builds a dynamic filter that refuses to grow past `max_links`.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry or `max_links == 0`.
    pub fn with_max_links(template: CuckooConfig, max_links: usize) -> Result<Self, BuildError> {
        if max_links == 0 {
            return Err(BuildError::InvalidConfig {
                reason: "dynamic filter needs at least one link".into(),
            });
        }
        let first = VerticalCuckooFilter::new(template)?;
        Ok(Self {
            links: vec![first],
            template,
            max_links,
            counters: Counters::new(),
        })
    }

    /// Number of links in the chain.
    pub fn links(&self) -> usize {
        self.links.len()
    }

    /// Per-link load factors, oldest first (diagnostic).
    pub fn link_load_factors(&self) -> Vec<f64> {
        self.links.iter().map(Filter::load_factor).collect()
    }

    fn grow(&mut self) -> Result<(), InsertError> {
        if self.links.len() >= self.max_links {
            return Err(InsertError::Full { kicks: 0 });
        }
        let config = CuckooConfig {
            seed: self
                .template
                .seed
                .wrapping_add(self.links.len() as u64 * 0x9e37),
            ..self.template
        };
        // The template was validated at construction; re-deriving a
        // config from it only changes the seed, so this cannot fail.
        let link = VerticalCuckooFilter::new(config).map_err(|_| InsertError::Full { kicks: 0 })?;
        self.links.push(link);
        Ok(())
    }
}

impl Filter for DynamicVcf {
    /// Inserts into the newest link first, then older links, then grows.
    ///
    /// # Errors
    ///
    /// Returns [`InsertError::Full`] only when the chain has hit its
    /// configured `max_links` and every link is full.
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        self.counters.record_insert(0, 1);
        // Newest link is the least loaded; try it first.
        for link in self.links.iter_mut().rev() {
            if link.insert(item).is_ok() {
                return Ok(());
            }
        }
        self.grow()
            .inspect_err(|_| self.counters.add_failed_insert())?;
        let Some(newest) = self.links.last_mut() else {
            // grow() just pushed a link; the chain cannot be empty.
            return Err(InsertError::Full { kicks: 0 });
        };
        newest
            .insert(item)
            .inspect_err(|_| self.counters.add_failed_insert())
    }

    /// Checks every link — the dynamic-filter lookup penalty.
    fn contains(&self, item: &[u8]) -> bool {
        self.counters.record_lookup(0, self.links.len() as u64);
        self.links.iter().any(|link| link.contains(item))
    }

    /// Deletes one copy, scanning links **newest first** and stopping at
    /// the first hit.
    ///
    /// Newest-first mirrors the insert preference, so when duplicate
    /// fingerprints exist across links the most recently stored copy is
    /// removed first — each link keeps its own Theorem-1 closure, so a
    /// per-link delete is exact and one logical delete removes exactly
    /// one stored fingerprint (multiset semantics across the chain).
    /// The access count reflects only the links actually consulted.
    fn delete(&mut self, item: &[u8]) -> bool {
        let mut checked = 0u64;
        let mut removed = false;
        for link in self.links.iter_mut().rev() {
            checked += 1;
            if link.delete(item) {
                removed = true;
                break;
            }
        }
        self.counters.record_delete(0, checked);
        removed
    }

    fn len(&self) -> usize {
        self.links.iter().map(Filter::len).sum()
    }

    fn capacity(&self) -> usize {
        self.links.iter().map(Filter::capacity).sum()
    }

    fn stats(&self) -> Stats {
        // Chain-level ops plus the per-link internals (probes, kicks).
        self.links
            .iter()
            .map(Filter::stats)
            .fold(self.counters.snapshot(), |acc, s| {
                let mut merged = acc + s;
                // Avoid double-counting op calls: links count their own
                // insert/lookup/delete calls; the chain already recorded
                // one logical call. Keep the chain's call counts.
                merged.inserts.calls = acc.inserts.calls;
                merged.lookups.calls = acc.lookups.calls;
                merged.deletes.calls = acc.deletes.calls;
                merged.failed_inserts = acc.failed_inserts;
                merged
            })
    }

    fn reset_stats(&mut self) {
        self.counters.reset();
        for link in &mut self.links {
            link.reset_stats();
        }
    }

    fn name(&self) -> String {
        format!("DynVCF[{}]", self.links.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("dyn-{i}").into_bytes()
    }

    fn small_template() -> CuckooConfig {
        CuckooConfig::new(1 << 6).with_seed(5) // 256 slots per link
    }

    #[test]
    fn grows_past_single_link_capacity() {
        let mut f = DynamicVcf::new(small_template()).unwrap();
        let single = 1usize << 8;
        for i in 0..(single * 4) as u64 {
            f.insert(&key(i)).unwrap();
        }
        assert!(
            f.links() >= 4,
            "chain should have grown: {} links",
            f.links()
        );
        assert_eq!(f.len(), single * 4);
        for i in 0..(single * 4) as u64 {
            assert!(f.contains(&key(i)), "item {i} lost across links");
        }
    }

    #[test]
    fn early_links_fill_high_before_growth() {
        let mut f = DynamicVcf::new(small_template()).unwrap();
        for i in 0..600u64 {
            f.insert(&key(i)).unwrap();
        }
        let loads = f.link_load_factors();
        assert!(
            loads[0] > 0.95,
            "first link should be nearly full: {loads:?}"
        );
    }

    #[test]
    fn delete_works_across_links() {
        let mut f = DynamicVcf::new(small_template()).unwrap();
        for i in 0..700u64 {
            f.insert(&key(i)).unwrap();
        }
        for i in 0..700u64 {
            assert!(f.delete(&key(i)), "failed to delete {i}");
        }
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn deletions_are_refilled_before_growth() {
        let mut f = DynamicVcf::new(small_template()).unwrap();
        for i in 0..500u64 {
            f.insert(&key(i)).unwrap();
        }
        let links_before = f.links();
        // Free up space in old links and reinsert an equal amount.
        for i in 0..100u64 {
            assert!(f.delete(&key(i)));
        }
        for i in 1000..1100u64 {
            f.insert(&key(i)).unwrap();
        }
        assert_eq!(
            f.links(),
            links_before,
            "freed space must be reused, not grown past"
        );
    }

    #[test]
    fn max_links_is_enforced() {
        let mut f = DynamicVcf::with_max_links(small_template(), 2).unwrap();
        let mut stored = 0u64;
        let mut failed = false;
        for i in 0..2000u64 {
            match f.insert(&key(i)) {
                Ok(()) => stored += 1,
                Err(InsertError::Full { .. }) => {
                    failed = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(failed, "2-link chain must eventually refuse");
        assert!(stored >= 2 * 240, "both links should fill first: {stored}");
        assert_eq!(f.links(), 2);
    }

    #[test]
    fn rejects_zero_max_links() {
        assert!(DynamicVcf::with_max_links(small_template(), 0).is_err());
    }

    #[test]
    fn name_reports_chain_length() {
        let mut f = DynamicVcf::new(small_template()).unwrap();
        assert_eq!(f.name(), "DynVCF[1]");
        for i in 0..600u64 {
            f.insert(&key(i)).unwrap();
        }
        assert!(f.name().starts_with("DynVCF["));
        assert!(f.links() > 1);
    }

    #[test]
    fn stats_count_logical_calls_once() {
        let mut f = DynamicVcf::new(small_template()).unwrap();
        for i in 0..300u64 {
            f.insert(&key(i)).unwrap();
        }
        f.contains(&key(0));
        let s = f.stats();
        assert_eq!(s.inserts.calls, 300);
        assert_eq!(s.lookups.calls, 1);
    }

    #[test]
    fn delete_prefers_newest_link_copy() {
        let mut f = DynamicVcf::new(small_template()).unwrap();
        f.insert(b"dup").unwrap(); // lands in link 0
                                   // Saturate link 0 so the chain grows.
        for i in 0..400u64 {
            f.insert(&key(i)).unwrap();
        }
        assert!(f.links() > 1);
        f.insert(b"dup").unwrap(); // newest link has room: second copy
        let newest = f.links.len() - 1;
        assert!(f.links[0].contains(b"dup"));
        assert!(f.links[newest].contains(b"dup"));

        // Delete must remove the newest copy, mirroring insert order —
        // the regression this pins: an oldest-first scan would remove the
        // link-0 copy and leave a stale duplicate in the newest link.
        assert!(f.delete(b"dup"));
        assert!(
            f.links[0].contains(b"dup"),
            "oldest copy must survive the first delete"
        );
        assert!(
            !f.links[newest].contains(b"dup"),
            "newest copy must be the one removed"
        );
        assert!(f.delete(b"dup"));
        assert!(!f.contains(b"dup"));
    }

    #[test]
    fn delete_counts_only_consulted_links() {
        let mut f = DynamicVcf::new(small_template()).unwrap();
        for i in 0..700u64 {
            f.insert(&key(i)).unwrap();
        }
        assert!(f.links() >= 3);
        f.insert(b"fresh").unwrap(); // newest link has room
        f.counters.reset();
        assert!(f.delete(b"fresh"));
        let chain = f.counters.snapshot();
        assert_eq!(chain.deletes.calls, 1);
        assert_eq!(
            chain.deletes.bucket_accesses, 1,
            "a newest-link hit must not charge the whole chain"
        );
        // A miss still scans every link.
        assert!(!f.delete(b"never-inserted"));
        let chain = f.counters.snapshot();
        assert_eq!(chain.deletes.bucket_accesses, 1 + f.links() as u64);
    }

    #[test]
    fn duplicate_multiset_semantics_across_links() {
        let mut f = DynamicVcf::new(small_template()).unwrap();
        // Saturate link 1 so duplicates spread across links.
        for i in 0..400u64 {
            f.insert(&key(i)).unwrap();
        }
        f.insert(b"dup").unwrap();
        f.insert(b"dup").unwrap();
        assert!(f.delete(b"dup"));
        assert!(f.contains(b"dup"), "second copy must survive");
        assert!(f.delete(b"dup"));
        assert!(!f.contains(b"dup"));
    }
}
