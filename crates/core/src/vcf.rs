//! The Vertical Cuckoo Filter (Algorithms 1–3) — also covers IVCF.

use crate::bitmask::MaskPair;
use crate::bulk::{self, BulkHost};
use crate::config::{CuckooConfig, EvictionPolicy};
use crate::evict;
use crate::key;
use crate::vertical::{Candidates, VerticalParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vcf_hash::HashKind;
use vcf_table::{FingerprintTable, KernelKind};
use vcf_traits::{BuildError, Counters, Filter, InsertError, Stats};

/// The Vertical Cuckoo Filter of Section III — and, by choosing the
/// bitmask shape, every `IVCF_i` of Section IV-A.
///
/// Each item receives four candidate buckets derived by vertical hashing
/// from its fingerprint alone:
///
/// ```text
/// B1 = hash(x)                         B2 = B1 ⊕ (hash(η) ∧ bm1)
/// B3 = B1 ⊕ (hash(η) ∧ bm2)            B4 = B1 ⊕ hash(η)
/// ```
///
/// Insertion follows the paper's Algorithm 1: try all four candidates for
/// an empty slot; otherwise evict a random resident and relocate it along
/// *its own* candidate cycle, up to `MAX` kicks. Lookup and deletion probe
/// the four candidate buckets (Algorithms 2–3).
///
/// # IVCF
///
/// [`VerticalCuckooFilter::with_mask_ones`] builds the paper's `IVCF_i`:
/// `i` one-bits in the first bitmask, trading load factor against false
/// positive rate through the four-candidate probability `r` (Equ. 8).
/// The plain constructor uses the balanced split, i.e. the standard VCF.
///
/// # Guarantees
///
/// * **No false negatives**: inserted, un-deleted items are always found.
/// * **Atomic insertion**: an insertion that fails with
///   [`InsertError::Full`] rolls the eviction chain back, leaving the
///   table byte-identical to its pre-insert state (an undo log of the
///   kick walk is kept and replayed in reverse).
/// * **Safe deletion** of items that were actually inserted, with
///   fingerprint-multiset semantics exactly like CF.
///
/// # Examples
///
/// ```
/// use vcf_core::{CuckooConfig, VerticalCuckooFilter};
/// use vcf_traits::Filter;
///
/// let mut vcf = VerticalCuckooFilter::new(CuckooConfig::new(1 << 8))?;
/// for i in 0u32..500 {
///     vcf.insert(&i.to_le_bytes())?;
/// }
/// assert!(vcf.contains(&42u32.to_le_bytes()));
/// assert!(vcf.load_factor() > 0.45);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct VerticalCuckooFilter {
    table: FingerprintTable,
    params: VerticalParams,
    masks: MaskPair,
    hash: HashKind,
    max_kicks: u32,
    eviction: EvictionPolicy,
    seed: u64,
    rng: SmallRng,
    /// Undo log for the current eviction walk: `(bucket, slot, previous
    /// fingerprint)` per swap, replayed in reverse on failure. Kept as a
    /// field to avoid reallocating on every deep insertion.
    undo: Vec<(usize, usize, u32)>,
    counters: Counters,
    label: String,
}

impl VerticalCuckooFilter {
    /// Builds a standard VCF (balanced bitmasks) from `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry (see
    /// [`CuckooConfig::validate`]).
    pub fn new(config: CuckooConfig) -> Result<Self, BuildError> {
        let masks = MaskPair::balanced(config.fingerprint_bits)?;
        Self::with_masks(config, masks, "VCF".to_owned())
    }

    /// Builds the paper's `IVCF_i`: `ones` one-bits in the first bitmask.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry or a degenerate mask
    /// (`ones` must be in `1..config.fingerprint_bits`).
    pub fn with_mask_ones(config: CuckooConfig, ones: u32) -> Result<Self, BuildError> {
        let masks = MaskPair::with_ones(ones, config.fingerprint_bits)?;
        Self::with_masks(config, masks, format!("IVCF{ones}"))
    }

    /// Builds a VCF with an explicit mask pair.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry.
    pub fn with_masks(
        config: CuckooConfig,
        masks: MaskPair,
        label: String,
    ) -> Result<Self, BuildError> {
        config.validate()?;
        let table = FingerprintTable::new(
            config.buckets,
            config.slots_per_bucket,
            config.fingerprint_bits,
        )?;
        let params = VerticalParams::new(masks, config.buckets);
        Ok(Self {
            table,
            params,
            masks,
            hash: config.hash,
            max_kicks: config.max_kicks,
            eviction: config.eviction,
            seed: config.seed,
            rng: SmallRng::seed_from_u64(config.seed),
            undo: Vec::new(),
            counters: Counters::new(),
            label,
        })
    }

    /// The bitmask pair in use.
    pub fn masks(&self) -> MaskPair {
        self.masks
    }

    /// The effective vertical-hashing parameters (masks restricted to the
    /// index domain).
    pub fn params(&self) -> VerticalParams {
        self.params
    }

    /// Expected probability `r` of four distinct candidate buckets
    /// (Equ. 8) for this filter's effective mask geometry.
    pub fn expected_r(&self) -> f64 {
        let index_bits = (self.table.buckets().trailing_zeros()).max(2);
        match self.masks.restricted_to(index_bits) {
            Some(m) => m.expected_r(),
            None => 0.0,
        }
    }

    /// Number of buckets `m`.
    pub fn buckets(&self) -> usize {
        self.table.buckets()
    }

    /// Slots per bucket `b`.
    pub fn slots_per_bucket(&self) -> usize {
        self.table.slots_per_bucket()
    }

    /// Fingerprint width `f` in bits.
    pub fn fingerprint_bits(&self) -> u32 {
        self.table.fingerprint_bits()
    }

    /// Heap bytes used by the fingerprint table.
    pub fn storage_bytes(&self) -> usize {
        self.table.storage_bytes()
    }

    /// The hash function in use.
    pub fn hash_kind(&self) -> HashKind {
        self.hash
    }

    /// The relocation threshold `MAX`.
    pub fn max_kicks(&self) -> u32 {
        self.max_kicks
    }

    /// The PRNG seed the filter was configured with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The probe kernel the fingerprint table dispatches to.
    pub fn kernel_kind(&self) -> KernelKind {
        self.table.kernel_kind()
    }

    /// Requests a probe kernel for the fingerprint table, returning the
    /// effective kind (requests the layout cannot honor clamp to SWAR).
    pub fn set_kernel(&mut self, kind: KernelKind) -> KernelKind {
        self.table.set_kernel(kind)
    }

    /// Raw fingerprint stored in `(bucket, slot)`; `0` = empty. Used by
    /// snapshot persistence.
    pub(crate) fn slot_value(&self, bucket: usize, slot: usize) -> u32 {
        self.table.get(bucket, slot)
    }

    /// Overwrites `(bucket, slot)` with a raw fingerprint value. Used by
    /// snapshot restore.
    pub(crate) fn set_slot_value(&mut self, bucket: usize, slot: usize, value: u32) {
        self.table.set(bucket, slot, value);
    }

    /// Occupancy of the slot table — `α` as the paper measures it.
    pub fn table_load_factor(&self) -> f64 {
        self.table.load_factor()
    }

    /// Canonical coset key of a query item: `(min candidate bucket) <<
    /// 32 | fingerprint`. Theorem 1 closure makes the minimum identical
    /// from every member bucket, so the same key is derivable from
    /// stored bits alone (see [`canonical_keys`](Self::canonical_keys))
    /// — the freeze-boundary representation used by the tiered
    /// lifecycle. Two items hashing to the same `(coset, fingerprint)`
    /// pair share a key — exactly the pairs this filter already cannot
    /// tell apart.
    pub fn canonical_key(&self, item: &[u8]) -> u64 {
        let (fp, b1) = self.key_of(item);
        let cands = self.candidates_of(fp, b1);
        ((cands.canonical_low() as u64) << 32) | u64::from(fp)
    }

    /// Canonical coset keys of every stored fingerprint, derived from
    /// stored bits alone (no original items needed) — the partial-key
    /// invariant extended across the freeze boundary.
    pub fn canonical_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.table.iter().map(|(bucket, _slot, fp)| {
            let cands = self.candidates_of(fp, bucket);
            ((cands.canonical_low() as u64) << 32) | u64::from(fp)
        })
    }

    #[inline]
    fn key_of(&self, item: &[u8]) -> (u32, usize) {
        key::hash_item(
            self.hash,
            item,
            self.fingerprint_bits(),
            self.params.index_mask(),
        )
    }

    #[inline]
    fn candidates_of(&self, fingerprint: u32, b1: usize) -> Candidates {
        let hfp = self.hash.hash_fingerprint(fingerprint);
        self.params.candidates(b1, hfp)
    }

    /// Places an already-hashed item: Algorithm 1's candidate scan
    /// followed by the configured conflict policy. `add_hashes(2)` for
    /// `hash(x)`/`hash(η)` has already been charged by the caller.
    fn insert_prehashed(&mut self, fingerprint: u32, cands: Candidates) -> Result<(), InsertError> {
        match self.eviction {
            EvictionPolicy::RandomWalk => self.insert_random_walk(fingerprint, cands),
            EvictionPolicy::Bfs => self.insert_bfs(fingerprint, cands),
        }
    }

    /// Algorithm 1 with rollback-on-failure. Bucket accesses are counted
    /// as they happen (candidate probes, eviction swaps, alternate
    /// probes) instead of the old closed-form `4 + 3·kicks`.
    fn insert_random_walk(
        &mut self,
        fingerprint: u32,
        cands: Candidates,
    ) -> Result<(), InsertError> {
        let slots = self.table.slots_per_bucket();
        let mut probes = 0u64;
        let mut accesses = 0u64;
        for bucket in cands.iter() {
            probes += slots as u64;
            accesses += 1;
            if self.table.try_insert(bucket, fingerprint).is_some() {
                self.counters.record_insert(probes, accesses);
                return Ok(());
            }
        }

        // All candidates full: relocate existing fingerprints, logging
        // every swap so a failed walk can be undone.
        self.undo.clear();
        let mut current_fp = fingerprint;
        let mut current_bucket = cands.buckets[self.rng.gen_range(0..4)];
        let mut kicks = 0u64;
        for _ in 0..self.max_kicks {
            let slot = self.rng.gen_range(0..slots);
            let victim = self.table.swap(current_bucket, slot, current_fp);
            accesses += 1;
            self.undo.push((current_bucket, slot, victim));
            current_fp = victim;
            kicks += 1;

            let victim_hash = self.hash.hash_fingerprint(current_fp);
            self.counters.add_hashes(1);
            let alts = self.params.alternates(current_bucket, victim_hash);
            let mut placed = false;
            for &alt in &alts {
                probes += slots as u64;
                accesses += 1;
                if self.table.try_insert(alt, current_fp).is_some() {
                    placed = true;
                    break;
                }
            }
            if placed {
                self.counters.add_kicks(kicks);
                self.counters.record_insert(probes, accesses);
                return Ok(());
            }
            current_bucket = alts[self.rng.gen_range(0..3)];
        }

        // Kick limit reached: the table is considered full. Replay the
        // undo log backwards so the failed insertion leaves no trace.
        for &(bucket, slot, previous) in self.undo.iter().rev() {
            self.table.set(bucket, slot, previous);
        }
        self.undo.clear();
        self.counters.add_kicks(kicks);
        self.counters.record_insert(probes, accesses);
        self.counters.add_failed_insert();
        Err(InsertError::Full { kicks })
    }

    /// BFS policy: search the Theorem-1 relocation graph for the shortest
    /// path to an empty slot, then execute it back-to-front. Nothing is
    /// written unless a complete path exists, so no undo log is needed;
    /// a zero-kick path is simply "a candidate had room".
    fn insert_bfs(&mut self, fingerprint: u32, cands: Candidates) -> Result<(), InsertError> {
        use core::cell::Cell;

        let slots = self.table.slots_per_bucket();
        let probes = Cell::new(0u64);
        let accesses = Cell::new(0u64);
        // `max_kicks == 0` disables relocation (Table V regime): only the
        // roots may be inspected for room.
        let max_nodes = if self.max_kicks == 0 {
            0
        } else {
            (self.max_kicks as usize).max(8)
        };

        let table = &self.table;
        let params = &self.params;
        let hash = self.hash;
        let counters = &self.counters;
        let path = evict::search(
            cands.iter().map(|b| (b, fingerprint)),
            max_nodes,
            |bucket| {
                probes.set(probes.get() + slots as u64);
                accesses.set(accesses.get() + 1);
                table.first_empty_slot(bucket)
            },
            |bucket, out| {
                accesses.set(accesses.get() + 1);
                for slot in 0..slots {
                    let resident = table.get(bucket, slot);
                    let hfp = hash.hash_fingerprint(resident);
                    counters.add_hashes(1);
                    for &alt in &params.alternates(bucket, hfp) {
                        out.push((slot, alt, resident));
                    }
                }
            },
        );

        let Some(path) = path else {
            self.counters.record_insert(probes.get(), accesses.get());
            self.counters.add_failed_insert();
            return Err(InsertError::Full { kicks: 0 });
        };

        let kicks = path.kicks();
        let mut dest = path.empty_slot;
        for step in path.steps[1..].iter().rev() {
            self.table.set(step.bucket, dest, step.value);
            dest = step.slot_in_parent;
        }
        self.table.set(path.steps[0].bucket, dest, fingerprint);
        self.counters.add_kicks(kicks);
        self.counters
            .record_insert(probes.get(), accesses.get() + kicks + 1);
        Ok(())
    }
}

impl BulkHost for VerticalCuckooFilter {
    /// `(fingerprint, candidate buckets)` — all four candidates
    /// precomputed, stored narrow so sort entries stay 32 bytes.
    type Key = (u32, [u32; 4]);

    fn bulk_buckets(&self) -> usize {
        self.table.buckets()
    }

    fn bulk_key(&self, item: &[u8]) -> Self::Key {
        let (fingerprint, b1) = self.key_of(item);
        let hfp = self.hash.hash_fingerprint(fingerprint);
        let cands = self.params.candidates(b1, hfp);
        (fingerprint, cands.buckets.map(|b| b as u32))
    }

    fn bulk_candidates(&self, _key: &Self::Key) -> usize {
        4
    }

    fn bulk_candidate(&self, key: &Self::Key, e: usize) -> usize {
        debug_assert!(e < key.1.len());
        key.1[e] as usize
    }

    fn bulk_prefetch(&self, bucket: usize) {
        self.table.prefetch_bucket(bucket);
    }

    fn bulk_try_place(&mut self, key: &Self::Key, e: usize) -> bool {
        debug_assert!(e < key.1.len());
        self.table.try_insert(key.1[e] as usize, key.0).is_some()
    }

    fn bulk_place_run(&mut self, bucket: usize, keys: &[Self::Key]) -> usize {
        let mut fps = [0u64; vcf_table::MAX_BUCKET_SLOTS];
        let take = keys.len().min(fps.len());
        for (fp, key) in fps.iter_mut().zip(&keys[..take]) {
            *fp = u64::from(key.0);
        }
        self.table.fill(bucket, &fps[..take])
    }

    fn bulk_record_keys(&self, n: u64) {
        self.counters.add_hashes(2 * n); // hash(x) + hash(η), as serial
    }

    fn bulk_record_swept(&self, items: u64, bucket_accesses: u64) {
        let slots = self.table.slots_per_bucket() as u64;
        self.counters
            .record_inserts(items, bucket_accesses * slots, bucket_accesses);
    }

    fn bulk_insert(&mut self, key: &Self::Key) -> Result<(), InsertError> {
        let candidates = Candidates {
            buckets: key.1.map(|b| b as usize),
        };
        self.insert_prehashed(key.0, candidates)
    }
}

impl Filter for VerticalCuckooFilter {
    // lint: hot-path
    /// Algorithm 1 under the configured eviction policy (random walk
    /// with rollback-on-failure by default, BFS path search with
    /// [`EvictionPolicy::Bfs`]).
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        let (fingerprint, b1) = self.key_of(item);
        let hfp = self.hash.hash_fingerprint(fingerprint);
        self.counters.add_hashes(2); // hash(x) + hash(η)
        let cands = self.params.candidates(b1, hfp);
        self.insert_prehashed(fingerprint, cands)
    }

    // lint: hot-path
    /// Pipelined Algorithm 1: hashes a window of items up front, issuing
    /// a software prefetch for every candidate bucket as each key is
    /// derived, then places fingerprints against warm cache lines.
    /// Placement runs in item order through the same
    /// [`insert_prehashed`](Self::insert_prehashed) as the serial path —
    /// the eviction PRNG is consumed identically, so batch and serial
    /// inserts produce bit-identical tables.
    fn insert_batch(&mut self, items: &[&[u8]]) -> Vec<Result<(), InsertError>> {
        const WINDOW: usize = 16;
        let mut out = Vec::with_capacity(items.len());
        let mut window = Vec::with_capacity(WINDOW);
        for chunk in items.chunks(WINDOW) {
            window.clear();
            for item in chunk {
                let (fingerprint, b1) = self.key_of(item);
                let hfp = self.hash.hash_fingerprint(fingerprint);
                self.counters.add_hashes(2);
                let cands = self.params.candidates(b1, hfp);
                for bucket in cands.iter() {
                    self.table.prefetch_bucket(bucket);
                }
                window.push((fingerprint, cands));
            }
            for &(fingerprint, cands) in &window {
                out.push(self.insert_prehashed(fingerprint, cands));
            }
        }
        out
    }

    // lint: hot-path
    /// Sort-by-bucket bulk construction (see [`crate::bulk`]): hash all
    /// items, counting-sort by candidate bucket round by round, sweep
    /// the table in order with first-fit placement, then run the
    /// eviction path only on the deferred overflow tail.
    fn build_from_iter(
        &mut self,
        items: &mut dyn Iterator<Item = &[u8]>,
    ) -> Vec<Result<(), InsertError>> {
        bulk::build_from_iter(self, items)
    }

    // lint: hot-path
    /// Algorithm 2 — probes all four candidate entries (duplicates
    /// included, matching the paper's constant-time lookup behaviour).
    fn contains(&self, item: &[u8]) -> bool {
        let (fingerprint, b1) = self.key_of(item);
        let cands = self.candidates_of(fingerprint, b1);
        let mut probes = 0u64;
        let mut found = false;
        for bucket in cands.iter() {
            probes += self.table.slots_per_bucket() as u64;
            if self.table.contains(bucket, fingerprint) {
                found = true;
                break;
            }
        }
        self.counters
            .record_lookup(probes, cands.buckets.len() as u64);
        found
    }

    // lint: hot-path
    /// Batched Algorithm 2: hashes every item up front, touching each
    /// item's primary bucket as its key is produced, then probes the four
    /// candidates per item in a second pass. Hashing and the early bucket
    /// reads overlap the cache misses of later items instead of
    /// serialising hash → miss → hash → miss per lookup.
    fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        let mut keys = Vec::with_capacity(items.len());
        for item in items {
            let (fingerprint, b1) = self.key_of(item);
            let cands = self.candidates_of(fingerprint, b1);
            // Early touch of every candidate bucket: starts the lines
            // toward the cache while the remaining keys hash.
            for bucket in cands.iter() {
                self.table.touch_bucket(bucket);
            }
            keys.push((fingerprint, cands));
        }
        let slots = self.table.slots_per_bucket() as u64;
        let mut out = Vec::with_capacity(items.len());
        for &(fingerprint, cands) in &keys {
            // One multi-bucket probe for all four candidates: under AVX2
            // on single-word buckets this is a gather-compare, with no
            // per-bucket early exit (probes reflect that).
            let found = self.table.contains_any(&cands.buckets, fingerprint);
            self.counters.record_lookup(
                cands.buckets.len() as u64 * slots,
                cands.buckets.len() as u64,
            );
            out.push(found);
        }
        out
    }

    // lint: hot-path
    /// Algorithm 3.
    fn delete(&mut self, item: &[u8]) -> bool {
        let (fingerprint, b1) = self.key_of(item);
        let cands = self.candidates_of(fingerprint, b1);
        let mut probes = 0u64;
        let mut removed = false;
        // Deduplicate on the fly: removing from the same physical bucket
        // twice would delete two copies.
        let mut tried = [usize::MAX; 4];
        let mut tried_len = 0;
        for bucket in cands.iter() {
            if tried[..tried_len].contains(&bucket) {
                continue;
            }
            // Four candidates at most, so the scratch array cannot fill.
            debug_assert!(tried_len < tried.len(), "at most 4 distinct candidates");
            tried[tried_len] = bucket;
            tried_len += 1;
            probes += self.table.slots_per_bucket() as u64;
            if self.table.remove_one(bucket, fingerprint) {
                removed = true;
                break;
            }
        }
        self.counters.record_delete(probes, tried_len as u64);
        removed
    }

    fn len(&self) -> usize {
        self.table.occupied()
    }

    fn capacity(&self) -> usize {
        self.table.capacity()
    }

    fn stats(&self) -> Stats {
        self.counters.snapshot()
    }

    fn reset_stats(&mut self) {
        self.counters.reset();
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> VerticalCuckooFilter {
        VerticalCuckooFilter::new(CuckooConfig::new(1 << 8).with_seed(1)).unwrap()
    }

    fn key(i: u64) -> Vec<u8> {
        format!("item-{i}").into_bytes()
    }

    #[test]
    fn insert_lookup_delete_roundtrip() {
        let mut f = small();
        f.insert(b"x").unwrap();
        assert!(f.contains(b"x"));
        assert_eq!(f.len(), 1);
        assert!(f.delete(b"x"));
        assert!(!f.contains(b"x"));
        assert_eq!(f.len(), 0);
        assert!(!f.delete(b"x"));
    }

    #[test]
    fn no_false_negatives_when_half_full() {
        let mut f = small();
        for i in 0..512 {
            f.insert(&key(i)).unwrap();
        }
        for i in 0..512 {
            assert!(f.contains(&key(i)), "item {i} lost");
        }
    }

    #[test]
    fn fills_past_95_percent() {
        let mut f = VerticalCuckooFilter::new(CuckooConfig::new(1 << 10).with_seed(3)).unwrap();
        let capacity = f.capacity();
        let mut stored = 0;
        for i in 0..capacity as u64 {
            if f.insert(&key(i)).is_ok() {
                stored += 1;
            }
        }
        let alpha = stored as f64 / capacity as f64;
        assert!(alpha > 0.95, "VCF load factor only {alpha}");
    }

    #[test]
    fn no_false_negatives_even_after_insert_failures() {
        let mut f = VerticalCuckooFilter::new(CuckooConfig::new(1 << 6).with_seed(9)).unwrap();
        let mut acknowledged = Vec::new();
        for i in 0..(f.capacity() as u64 + 50) {
            if f.insert(&key(i)).is_ok() {
                acknowledged.push(i);
            }
        }
        for i in acknowledged {
            assert!(
                f.contains(&key(i)),
                "acknowledged item {i} lost after overflow"
            );
        }
    }

    #[test]
    fn failed_insert_rolls_back_exactly() {
        let mut f = VerticalCuckooFilter::new(CuckooConfig::new(1 << 5).with_seed(7)).unwrap();
        // Fill until the first failure.
        let mut i = 0u64;
        loop {
            if f.insert(&key(i)).is_err() {
                break;
            }
            i += 1;
            assert!(i < 10_000, "filter never filled");
        }
        let before = f.clone();
        // Ten more failing inserts must leave the table untouched.
        for j in 0..10u64 {
            let _ = f.insert(&key(1_000_000 + j));
        }
        assert_eq!(f.len(), before.len());
        for n in 0..i {
            assert_eq!(
                f.contains(&key(n)),
                before.contains(&key(n)),
                "item {n} flipped"
            );
        }
    }

    #[test]
    fn delete_then_reinsert_succeeds() {
        let mut f = small();
        let capacity = f.capacity() as u64;
        for i in 0..capacity {
            let _ = f.insert(&key(i));
        }
        for i in 0..32 {
            f.delete(&key(i));
        }
        let mut ok = 0;
        for i in capacity..capacity + 16 {
            if f.insert(&key(i)).is_ok() {
                ok += 1;
            }
        }
        assert!(ok > 0, "freed space must be reusable");
    }

    #[test]
    fn duplicate_inserts_are_independent_copies() {
        let mut f = small();
        f.insert(b"dup").unwrap();
        f.insert(b"dup").unwrap();
        assert!(f.delete(b"dup"));
        assert!(f.contains(b"dup"), "second copy must survive one delete");
        assert!(f.delete(b"dup"));
        assert!(!f.contains(b"dup"));
    }

    #[test]
    fn deleting_one_item_never_hides_another() {
        let mut f = small();
        for i in 0..300 {
            f.insert(&key(i)).unwrap();
        }
        for i in 0..100 {
            f.delete(&key(i));
        }
        for i in 100..300 {
            assert!(
                f.contains(&key(i)),
                "item {i} vanished after unrelated deletes"
            );
        }
    }

    #[test]
    fn ivcf_constructor_sets_label_and_r() {
        let f = VerticalCuckooFilter::with_mask_ones(CuckooConfig::new(1 << 16), 3).unwrap();
        assert_eq!(f.name(), "IVCF3");
        // IVCF3 at f=14: r = 1 − 2^-3 − 2^-11 + 2^-14 ≈ 0.8746
        assert!(
            (f.expected_r() - 0.8746).abs() < 1e-3,
            "r={}",
            f.expected_r()
        );
    }

    #[test]
    fn stats_count_inserts_and_kicks() {
        let mut f = small();
        for i in 0..900 {
            let _ = f.insert(&key(i));
        }
        let s = f.stats();
        assert_eq!(s.inserts.calls, 900);
        assert!(s.hash_computations >= 1800);
        assert!(s.inserts.slot_probes > 0);
        // Near-full fills must have triggered evictions.
        assert!(s.kicks > 0);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut f = small();
        f.insert(b"a").unwrap();
        f.reset_stats();
        assert_eq!(f.stats(), Stats::default());
    }

    #[test]
    fn len_and_capacity_consistent() {
        let mut f = small();
        assert_eq!(f.capacity(), 1 << 10);
        assert!(f.is_empty());
        f.insert(b"one").unwrap();
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let mut f = VerticalCuckooFilter::new(CuckooConfig::new(1 << 8).with_seed(77)).unwrap();
            let mut stored = 0u32;
            for i in 0..1200 {
                if f.insert(&key(i)).is_ok() {
                    stored += 1;
                }
            }
            (stored, f.stats().kicks)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn works_with_every_hash_kind() {
        for kind in HashKind::ALL {
            let mut f =
                VerticalCuckooFilter::new(CuckooConfig::new(1 << 8).with_hash(kind).with_seed(5))
                    .unwrap();
            for i in 0..400 {
                f.insert(&key(i)).unwrap();
            }
            for i in 0..400 {
                assert!(f.contains(&key(i)), "{kind}: item {i} lost");
            }
        }
    }

    #[test]
    fn false_positive_rate_is_bounded() {
        let mut f = VerticalCuckooFilter::new(
            CuckooConfig::new(1 << 12)
                .with_fingerprint_bits(14)
                .with_seed(2),
        )
        .unwrap();
        let n = (f.capacity() as f64 * 0.9) as u64;
        for i in 0..n {
            let _ = f.insert(&key(i));
        }
        let mut false_positives = 0u64;
        let aliens = 100_000u64;
        for i in 0..aliens {
            if f.contains(&key(1_000_000 + i)) {
                false_positives += 1;
            }
        }
        let fpr = false_positives as f64 / aliens as f64;
        // Equ. 10 upper bound: 2(r+1)bα/2^f ≈ 2·2·4·0.9/2^14 ≈ 8.8e-4.
        assert!(fpr < 2.5e-3, "fpr={fpr}");
    }

    #[test]
    fn filter_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VerticalCuckooFilter>();
    }

    #[test]
    fn insert_batch_matches_serial_exactly() {
        let keys: Vec<Vec<u8>> = (0..1100).map(key).collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let config = CuckooConfig::new(1 << 8).with_seed(42);

        let mut serial = VerticalCuckooFilter::new(config).unwrap();
        let serial_results: Vec<_> = refs.iter().map(|k| serial.insert(k)).collect();
        let mut batched = VerticalCuckooFilter::new(config).unwrap();
        let batch_results = batched.insert_batch(&refs);

        assert_eq!(serial_results, batch_results);
        assert_eq!(serial.len(), batched.len());
        assert_eq!(serial.stats().kicks, batched.stats().kicks);
        for b in 0..serial.buckets() {
            for s in 0..serial.slots_per_bucket() {
                assert_eq!(
                    serial.slot_value(b, s),
                    batched.slot_value(b, s),
                    "table diverged at ({b}, {s})"
                );
            }
        }
    }

    #[test]
    fn bfs_policy_fills_past_95_percent() {
        let mut f = VerticalCuckooFilter::new(
            CuckooConfig::new(1 << 10)
                .with_seed(3)
                .with_eviction_policy(EvictionPolicy::Bfs),
        )
        .unwrap();
        let capacity = f.capacity();
        let mut acknowledged = Vec::new();
        for i in 0..capacity as u64 {
            if f.insert(&key(i)).is_ok() {
                acknowledged.push(i);
            }
        }
        let alpha = acknowledged.len() as f64 / capacity as f64;
        assert!(alpha > 0.95, "BFS VCF load factor only {alpha}");
        for i in acknowledged {
            assert!(f.contains(&key(i)), "item {i} lost under BFS eviction");
        }
    }

    #[test]
    fn bfs_failed_insert_writes_nothing() {
        let mut f = VerticalCuckooFilter::new(
            CuckooConfig::new(1 << 5)
                .with_seed(7)
                .with_eviction_policy(EvictionPolicy::Bfs),
        )
        .unwrap();
        let mut i = 0u64;
        loop {
            if f.insert(&key(i)).is_err() {
                break;
            }
            i += 1;
            assert!(i < 10_000, "filter never filled");
        }
        let before = f.clone();
        for j in 0..10u64 {
            assert!(f.insert(&key(1_000_000 + j)).is_err());
        }
        assert_eq!(f.len(), before.len());
        for b in 0..f.buckets() {
            for s in 0..f.slots_per_bucket() {
                assert_eq!(
                    f.slot_value(b, s),
                    before.slot_value(b, s),
                    "failed BFS insert wrote to ({b}, {s})"
                );
            }
        }
    }

    #[test]
    fn bfs_respects_zero_max_kicks() {
        // Table V regime: no relocation at all, only the candidate scan.
        let mut f = VerticalCuckooFilter::new(
            CuckooConfig::new(1 << 4)
                .with_max_kicks(0)
                .with_seed(11)
                .with_eviction_policy(EvictionPolicy::Bfs),
        )
        .unwrap();
        let mut failed = 0;
        for i in 0..(f.capacity() as u64 * 2) {
            if f.insert(&key(i)).is_err() {
                failed += 1;
            }
        }
        assert!(failed > 0, "tiny filter must reject without relocation");
        assert_eq!(f.stats().kicks, 0, "max_kicks = 0 must suppress BFS moves");
    }

    #[test]
    fn random_walk_hash_count_matches_actual_calls() {
        // Under the random walk, every insert hashes the item and its
        // fingerprint (2), plus one fingerprint hash per kick. The
        // counters must reproduce that exactly — no closed-form drift.
        let mut f = small();
        for i in 0..900 {
            let _ = f.insert(&key(i));
        }
        let s = f.stats();
        assert_eq!(s.hash_computations, 2 * s.inserts.calls + s.kicks);
    }

    #[test]
    fn bfs_mean_kicks_not_above_random_walk_at_high_load() {
        let run = |eviction: EvictionPolicy| {
            let mut f = VerticalCuckooFilter::new(
                CuckooConfig::new(1 << 10)
                    .with_seed(21)
                    .with_eviction_policy(eviction),
            )
            .unwrap();
            let n = (f.capacity() as f64 * 0.95) as u64;
            let mut i = 0u64;
            let mut stored = 0u64;
            while stored < n {
                if f.insert(&key(i)).is_ok() {
                    stored += 1;
                }
                i += 1;
                assert!(i < 3 * n, "could not reach 95% load");
            }
            f.stats().kicks
        };
        let bfs = run(EvictionPolicy::Bfs);
        let rw = run(EvictionPolicy::RandomWalk);
        assert!(
            bfs <= rw,
            "BFS total kicks {bfs} exceed random walk {rw} at 95% load"
        );
    }
}
