//! Binary snapshot persistence for the Vertical Cuckoo Filter.
//!
//! Online services restart; a filter tracking millions of live items must
//! survive the restart without replaying its entire history. `snapshot`
//! serializes a [`VerticalCuckooFilter`] to a small, versioned, fully
//! self-describing byte format and restores it bit-exactly (table
//! contents, geometry, masks, seed). Operation counters are *not*
//! persisted — a restored filter starts with fresh statistics — and the
//! victim-selection RNG restarts from the configured seed, which affects
//! only future eviction choices, never correctness.
//!
//! Format (all little-endian):
//!
//! ```text
//! magic   u32   0x56434631  ("VCF1")
//! buckets u64
//! slots_per_bucket u8
//! fingerprint_bits u8
//! hash_kind        u8   (0 = FNV, 1 = Murmur3, 2 = DJB2)
//! mask_ones        u8   (one-bits in bm1)
//! max_kicks        u32
//! seed             u64
//! occupied         u64  (redundant; integrity check)
//! slot data        buckets × slots_per_bucket × u32
//! ```

use crate::bitmask::MaskPair;
use crate::config::{CuckooConfig, EvictionPolicy};
use crate::kvcf::KVcf;
use crate::vcf::VerticalCuckooFilter;
use vcf_hash::HashKind;
use vcf_table::MarkedEntry;
use vcf_traits::{BuildError, Filter};

/// Magic header: `"VCF1"`.
pub const MAGIC: u32 = 0x5643_4631;

/// Magic header for k-VCF snapshots: `"VCK1"`.
pub const MAGIC_KVCF: u32 = 0x5643_4B31;

/// Magic header for frozen binary-fuse generation records: `"FUZ1"`.
pub const MAGIC_FUSE: u32 = 0x4655_5A31;

/// Errors surfaced when restoring a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The buffer is shorter than its header claims.
    Truncated,
    /// The magic number does not match (not a VCF snapshot, or a future
    /// incompatible version).
    BadMagic {
        /// The magic value found.
        found: u32,
    },
    /// A header field encodes an invalid configuration.
    BadConfig(BuildError),
    /// Slot data disagrees with the recorded occupancy count.
    OccupancyMismatch {
        /// Occupancy recorded in the header.
        recorded: u64,
        /// Occupancy counted from the slot data.
        counted: u64,
    },
    /// Payload bytes do not hash to the recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        recorded: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot buffer is truncated"),
            SnapshotError::BadMagic { found } => {
                write!(
                    f,
                    "bad snapshot magic {found:#010x} (expected {MAGIC:#010x})"
                )
            }
            SnapshotError::BadConfig(e) => write!(f, "snapshot encodes invalid config: {e}"),
            SnapshotError::OccupancyMismatch { recorded, counted } => {
                write!(
                    f,
                    "snapshot occupancy mismatch: header says {recorded}, data has {counted}"
                )
            }
            SnapshotError::ChecksumMismatch { recorded, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch: header says {recorded:#018x}, payload hashes to {computed:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<BuildError> for SnapshotError {
    fn from(e: BuildError) -> Self {
        SnapshotError::BadConfig(e)
    }
}

fn hash_kind_from(code: u8) -> Result<HashKind, SnapshotError> {
    HashKind::from_code(code).ok_or_else(|| {
        SnapshotError::BadConfig(BuildError::InvalidConfig {
            reason: format!("unknown hash kind code {code}"),
        })
    })
}

struct Reader<'a> {
    buffer: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        let end = self.at.checked_add(N).ok_or(SnapshotError::Truncated)?;
        let slice = self
            .buffer
            .get(self.at..end)
            .ok_or(SnapshotError::Truncated)?;
        self.at = end;
        // `get(at..end)` returned exactly N bytes, so the conversion
        // cannot fail; mapping keeps the decode path panic-free.
        slice.try_into().map_err(|_| SnapshotError::Truncated)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }
}

impl VerticalCuckooFilter {
    /// Serializes the filter to a self-describing byte vector.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let buckets = self.buckets();
        let slots = self.slots_per_bucket();
        let mut out = Vec::with_capacity(40 + buckets * slots * 4);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&(buckets as u64).to_le_bytes());
        out.push(slots as u8);
        out.push(self.fingerprint_bits() as u8);
        out.push(self.hash_kind().code());
        out.push(self.masks().ones() as u8);
        out.extend_from_slice(&self.max_kicks().to_le_bytes());
        out.extend_from_slice(&self.seed().to_le_bytes());
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for bucket in 0..buckets {
            for slot in 0..slots {
                out.extend_from_slice(&self.slot_value(bucket, slot).to_le_bytes());
            }
        }
        out
    }

    // lint: wire-format(decode)
    /// Restores a filter from [`VerticalCuckooFilter::to_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] for truncated buffers, foreign magic
    /// numbers, invalid geometry, or corrupted slot data.
    pub fn from_snapshot(buffer: &[u8]) -> Result<Self, SnapshotError> {
        let mut reader = Reader { buffer, at: 0 };
        let magic = reader.u32()?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let buckets = reader.u64()? as usize;
        let slots_per_bucket = usize::from(reader.u8()?);
        let fingerprint_bits = u32::from(reader.u8()?);
        let hash = hash_kind_from(reader.u8()?)?;
        let mask_ones = u32::from(reader.u8()?);
        let max_kicks = reader.u32()?;
        let seed = reader.u64()?;
        let recorded = reader.u64()?;

        let config = CuckooConfig {
            buckets,
            slots_per_bucket,
            fingerprint_bits,
            max_kicks,
            hash,
            seed,
            // Snapshots record geometry, not policy; restored filters
            // start on the default policy.
            eviction: EvictionPolicy::RandomWalk,
        };
        config.validate()?;
        let masks = MaskPair::with_ones(mask_ones, fingerprint_bits)?;
        let label = if mask_ones == fingerprint_bits / 2 {
            "VCF".to_owned()
        } else {
            format!("IVCF{mask_ones}")
        };
        let mut filter = VerticalCuckooFilter::with_masks(config, masks, label)?;

        let mut counted = 0u64;
        for bucket in 0..buckets {
            for slot in 0..slots_per_bucket {
                let value = reader.u32()?;
                if value != 0 {
                    counted += 1;
                }
                filter.set_slot_value(bucket, slot, value);
            }
        }
        if counted != recorded {
            return Err(SnapshotError::OccupancyMismatch { recorded, counted });
        }
        Ok(filter)
    }
}

impl KVcf {
    /// Serializes the k-VCF to a self-describing byte vector.
    ///
    /// Slot order within a bucket is not preserved (it carries no
    /// meaning); the multiset of `(fingerprint, mark)` entries per bucket
    /// is. The intermediate bitmasks are not stored — they regenerate
    /// deterministically from the recorded seed and `k`.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let table = self.table();
        let buckets = table.buckets();
        let slots = table.slots_per_bucket();
        let mut out = Vec::with_capacity(40 + self.len() * 5);
        out.extend_from_slice(&MAGIC_KVCF.to_le_bytes());
        out.extend_from_slice(&(buckets as u64).to_le_bytes());
        out.push(slots as u8);
        out.push(table.fingerprint_bits() as u8);
        out.push(self.hash_kind().code());
        out.push(self.k() as u8);
        out.extend_from_slice(&self.max_kicks().to_le_bytes());
        out.extend_from_slice(&self.seed().to_le_bytes());
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for bucket in 0..buckets {
            let entries: Vec<MarkedEntry> = (0..slots)
                .filter_map(|slot| table.get(bucket, slot))
                .collect();
            out.push(entries.len() as u8);
            for entry in entries {
                out.extend_from_slice(&entry.fingerprint.to_le_bytes());
                out.push(entry.mark);
            }
        }
        out
    }

    // lint: wire-format(decode)
    /// Restores a k-VCF from [`KVcf::to_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] for truncated buffers, foreign magic
    /// numbers, invalid geometry, or corrupted bucket data.
    pub fn from_snapshot(buffer: &[u8]) -> Result<Self, SnapshotError> {
        let mut reader = Reader { buffer, at: 0 };
        let magic = reader.u32()?;
        if magic != MAGIC_KVCF {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let buckets = reader.u64()? as usize;
        let slots_per_bucket = usize::from(reader.u8()?);
        let fingerprint_bits = u32::from(reader.u8()?);
        let hash = hash_kind_from(reader.u8()?)?;
        let k = usize::from(reader.u8()?);
        let max_kicks = reader.u32()?;
        let seed = reader.u64()?;
        let recorded = reader.u64()?;

        let config = CuckooConfig {
            buckets,
            slots_per_bucket,
            fingerprint_bits,
            max_kicks,
            hash,
            seed,
            // Snapshots record geometry, not policy; restored filters
            // start on the default policy.
            eviction: EvictionPolicy::RandomWalk,
        };
        config.validate()?;
        let mut filter = KVcf::new(config, k)?;

        let mut counted = 0u64;
        for bucket in 0..buckets {
            let count = usize::from(reader.u8()?);
            if count > slots_per_bucket {
                return Err(SnapshotError::BadConfig(BuildError::InvalidConfig {
                    reason: format!("bucket {bucket} claims {count} entries"),
                }));
            }
            for _ in 0..count {
                let fingerprint = reader.u32()?;
                let mark = reader.u8()?;
                if fingerprint == 0 || u32::from(mark) >= k as u32 {
                    return Err(SnapshotError::BadConfig(BuildError::InvalidConfig {
                        reason: format!("bucket {bucket} holds an invalid entry"),
                    }));
                }
                filter
                    .table_mut()
                    .try_insert(bucket, MarkedEntry { fingerprint, mark })
                    .expect("count <= slots guarantees room");
                counted += 1;
            }
        }
        if counted != recorded {
            return Err(SnapshotError::OccupancyMismatch { recorded, counted });
        }
        Ok(filter)
    }
}

/// A versioned, self-describing record of one frozen binary-fuse
/// generation — the `FUZ1` format.
///
/// The lane array is written **verbatim** (little-endian lane words), so
/// a restored generation is bit-exact: every query, including every
/// false positive, answers identically. The record carries everything
/// needed to re-derive the probe geometry (seed, segment layout) plus an
/// FNV-1a checksum over the lane bytes for corruption detection —
/// groundwork for the durability tier's snapshot files without pulling
/// in WAL scope.
///
/// Layout (all little-endian):
///
/// ```text
/// magic                u32  0x46555A31 ("FUZ1")
/// lane_bits            u8   (8 or 16)
/// seed                 u64
/// segment_length       u32  (power of two)
/// segment_count_length u32
/// array_length         u32  (total lanes)
/// keys                 u64  (distinct canonical keys frozen)
/// checksum             u64  (FNV-1a over the lane bytes)
/// lanes                array_length × lane_bits/8 bytes, verbatim
/// ```
///
/// The concrete fuse type lives in `vcf-sketches` (which depends on this
/// crate); the record is defined here so every on-disk format — `VCF1`,
/// `VCK1`, `FUZ1` — shares one home, one error type and one reader
/// discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuseRecord {
    /// Lane width in bits (8 or 16).
    pub lane_bits: u32,
    /// Hash seed the generation was built with.
    pub seed: u64,
    /// Segment length (power of two).
    pub segment_length: u32,
    /// `segment_count × segment_length` — the window-start range.
    pub segment_count_length: u32,
    /// Total number of lanes.
    pub array_length: u32,
    /// Distinct canonical keys frozen into the generation.
    pub keys: u64,
    /// Lane words, packed little-endian (`array_length × lane_bits/8`
    /// bytes).
    pub lanes: Vec<u8>,
}

impl FuseRecord {
    /// Checksum of the lane payload: FNV-1a, matching the workspace's
    /// from-scratch hash crate.
    fn checksum_of(lanes: &[u8]) -> u64 {
        HashKind::Fnv1a.hash64(lanes)
    }

    /// Serializes the record to `FUZ1` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(41 + self.lanes.len());
        out.extend_from_slice(&MAGIC_FUSE.to_le_bytes());
        out.push(self.lane_bits as u8);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.segment_length.to_le_bytes());
        out.extend_from_slice(&self.segment_count_length.to_le_bytes());
        out.extend_from_slice(&self.array_length.to_le_bytes());
        out.extend_from_slice(&self.keys.to_le_bytes());
        out.extend_from_slice(&Self::checksum_of(&self.lanes).to_le_bytes());
        out.extend_from_slice(&self.lanes);
        out
    }

    // lint: wire-format(decode)
    /// Restores a record from [`FuseRecord::encode`] bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] for truncated buffers, foreign magic
    /// numbers, inconsistent geometry, or a checksum mismatch.
    pub fn decode(buffer: &[u8]) -> Result<Self, SnapshotError> {
        let mut reader = Reader { buffer, at: 0 };
        let magic = reader.u32()?;
        if magic != MAGIC_FUSE {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let lane_bits = u32::from(reader.u8()?);
        let seed = reader.u64()?;
        let segment_length = reader.u32()?;
        let segment_count_length = reader.u32()?;
        let array_length = reader.u32()?;
        let keys = reader.u64()?;
        let recorded = reader.u64()?;

        if lane_bits != 8 && lane_bits != 16 {
            return Err(SnapshotError::BadConfig(BuildError::InvalidConfig {
                reason: format!("unsupported fuse lane width {lane_bits} bits"),
            }));
        }
        if array_length > 0 && (!segment_length.is_power_of_two() || segment_count_length == 0) {
            return Err(SnapshotError::BadConfig(BuildError::InvalidConfig {
                reason: format!(
                    "inconsistent fuse geometry: segment_length {segment_length}, \
                     segment_count_length {segment_count_length}"
                ),
            }));
        }
        let lane_bytes = array_length as usize * (lane_bits as usize / 8);
        let end = reader
            .at
            .checked_add(lane_bytes)
            .ok_or(SnapshotError::Truncated)?;
        let lanes = reader
            .buffer
            .get(reader.at..end)
            .ok_or(SnapshotError::Truncated)?
            .to_vec();
        let computed = Self::checksum_of(&lanes);
        if computed != recorded {
            return Err(SnapshotError::ChecksumMismatch { recorded, computed });
        }
        Ok(Self {
            lane_bits,
            seed,
            segment_length,
            segment_count_length,
            array_length,
            keys,
            lanes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcf_traits::Filter;

    fn key(i: u64) -> Vec<u8> {
        format!("snap-{i}").into_bytes()
    }

    fn loaded_filter() -> VerticalCuckooFilter {
        let mut f = VerticalCuckooFilter::new(
            CuckooConfig::new(1 << 8)
                .with_seed(33)
                .with_hash(HashKind::Murmur3),
        )
        .unwrap();
        for i in 0..900 {
            let _ = f.insert(&key(i));
        }
        f
    }

    #[test]
    fn roundtrip_preserves_membership_exactly() {
        let original = loaded_filter();
        let bytes = original.to_snapshot();
        let restored = VerticalCuckooFilter::from_snapshot(&bytes).unwrap();
        assert_eq!(restored.len(), original.len());
        assert_eq!(restored.buckets(), original.buckets());
        assert_eq!(restored.fingerprint_bits(), original.fingerprint_bits());
        // Bit-exact table: every key answers identically, including the
        // false positives.
        for i in 0..5000u64 {
            assert_eq!(
                restored.contains(&key(i)),
                original.contains(&key(i)),
                "membership diverged for {i}"
            );
        }
    }

    #[test]
    fn restored_filter_keeps_working() {
        let original = loaded_filter();
        let mut restored = VerticalCuckooFilter::from_snapshot(&original.to_snapshot()).unwrap();
        // Delete and insert after restore.
        assert!(restored.delete(&key(0)));
        restored.insert(b"fresh-after-restore").unwrap();
        assert!(restored.contains(b"fresh-after-restore"));
    }

    #[test]
    fn ivcf_label_roundtrip() {
        let mut f = VerticalCuckooFilter::with_mask_ones(CuckooConfig::new(1 << 6), 3).unwrap();
        f.insert(b"x").unwrap();
        let restored = VerticalCuckooFilter::from_snapshot(&f.to_snapshot()).unwrap();
        assert_eq!(restored.name(), "IVCF3");
        assert!(restored.contains(b"x"));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = loaded_filter().to_snapshot();
        bytes[0] ^= 0xff;
        assert!(matches!(
            VerticalCuckooFilter::from_snapshot(&bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = loaded_filter().to_snapshot();
        for cut in [0, 3, 4, 20, 34, bytes.len() - 1] {
            assert!(
                VerticalCuckooFilter::from_snapshot(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn detects_corrupted_slot_data() {
        let filter = loaded_filter();
        let mut bytes = filter.to_snapshot();
        // Zero a non-empty slot in the payload: occupancy check trips.
        let payload_start = 36;
        let position = (payload_start..bytes.len() - 4)
            .step_by(4)
            .find(|&p| bytes[p..p + 4] != [0, 0, 0, 0])
            .expect("some occupied slot");
        bytes[position..position + 4].copy_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            VerticalCuckooFilter::from_snapshot(&bytes),
            Err(SnapshotError::OccupancyMismatch { .. })
        ));
    }

    #[test]
    fn snapshot_size_is_predictable() {
        let filter = VerticalCuckooFilter::new(CuckooConfig::new(1 << 6)).unwrap();
        let bytes = filter.to_snapshot();
        assert_eq!(bytes.len(), 36 + (1 << 6) * 4 * 4);
    }

    fn loaded_kvcf() -> KVcf {
        let config = CuckooConfig::new(1 << 7)
            .with_fingerprint_bits(16)
            .with_seed(77);
        let mut f = KVcf::new(config, 6).unwrap();
        for i in 0..450u64 {
            let _ = f.insert(format!("ksnap-{i}").as_bytes());
        }
        f
    }

    #[test]
    fn kvcf_roundtrip_preserves_membership() {
        let original = loaded_kvcf();
        let restored = KVcf::from_snapshot(&original.to_snapshot()).unwrap();
        assert_eq!(restored.len(), original.len());
        assert_eq!(restored.k(), 6);
        for i in 0..2000u64 {
            let key = format!("ksnap-{i}").into_bytes();
            assert_eq!(
                restored.contains(&key),
                original.contains(&key),
                "membership diverged for {i}"
            );
        }
    }

    #[test]
    fn kvcf_restored_keeps_working() {
        let original = loaded_kvcf();
        let mut restored = KVcf::from_snapshot(&original.to_snapshot()).unwrap();
        assert!(restored.delete(b"ksnap-0"));
        restored.insert(b"fresh-kvcf").unwrap();
        assert!(restored.contains(b"fresh-kvcf"));
    }

    #[test]
    fn kvcf_magic_is_checked_both_ways() {
        let vcf_bytes = loaded_filter().to_snapshot();
        assert!(matches!(
            KVcf::from_snapshot(&vcf_bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
        let kvcf_bytes = loaded_kvcf().to_snapshot();
        assert!(matches!(
            VerticalCuckooFilter::from_snapshot(&kvcf_bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn kvcf_rejects_corrupted_entries() {
        let mut bytes = loaded_kvcf().to_snapshot();
        // Find the first non-empty bucket's count byte and inflate it.
        let mut at = 36;
        while bytes[at] == 0 {
            at += 1;
        }
        bytes[at] = 9; // count > slots_per_bucket
        assert!(KVcf::from_snapshot(&bytes).is_err());
    }

    fn sample_fuse_record() -> FuseRecord {
        FuseRecord {
            lane_bits: 8,
            seed: 0xfeed_beef_dead_cafe,
            segment_length: 64,
            segment_count_length: 256,
            array_length: 384,
            keys: 300,
            lanes: (0..384u32)
                .map(|i| (i.wrapping_mul(37) >> 2) as u8)
                .collect(),
        }
    }

    #[test]
    fn fuse_record_round_trips_bit_exactly() {
        let record = sample_fuse_record();
        let bytes = record.encode();
        let back = FuseRecord::decode(&bytes).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn fuse_record_sixteen_bit_lanes_round_trip() {
        let mut record = sample_fuse_record();
        record.lane_bits = 16;
        record.lanes = (0..768u32)
            .map(|i| (i.wrapping_mul(131) >> 3) as u8)
            .collect();
        let back = FuseRecord::decode(&record.encode()).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn fuse_record_rejects_foreign_magic() {
        let bytes = loaded_filter().to_snapshot();
        assert!(matches!(
            FuseRecord::decode(&bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
        let fuse_bytes = sample_fuse_record().encode();
        assert!(matches!(
            VerticalCuckooFilter::from_snapshot(&fuse_bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn fuse_record_rejects_flipped_lane_bit() {
        let record = sample_fuse_record();
        let mut bytes = record.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10; // corrupt one lane word
        assert!(matches!(
            FuseRecord::decode(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn fuse_record_rejects_truncation_and_bad_geometry() {
        let record = sample_fuse_record();
        let bytes = record.encode();
        assert!(matches!(
            FuseRecord::decode(&bytes[..bytes.len() - 1]),
            Err(SnapshotError::Truncated)
        ));

        let mut odd = record.clone();
        odd.lane_bits = 12;
        assert!(matches!(
            FuseRecord::decode(&odd.encode()),
            Err(SnapshotError::BadConfig(_))
        ));

        let mut skew = record;
        skew.segment_length = 48; // not a power of two
        assert!(matches!(
            FuseRecord::decode(&skew.encode()),
            Err(SnapshotError::BadConfig(_))
        ));
    }

    #[test]
    fn fuse_record_checksum_error_is_descriptive() {
        let recorded = 0x1111;
        let computed = 0x2222;
        let text = SnapshotError::ChecksumMismatch { recorded, computed }.to_string();
        assert!(text.contains("checksum"), "got: {text}");
    }
}
