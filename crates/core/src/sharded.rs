//! Sharding as a *routing layer* over any concurrent filter.
//!
//! The paper motivates VCF with *online* applications; real deployments
//! of those (caches, flow tables, dedup front-ends) are concurrent.
//! [`ShardRouter`] partitions the key space across `2^s` independent
//! sub-filters — anything implementing [`ConcurrentFilter`] — so that
//! unrelated keys almost never contend:
//!
//! * [`ShardedVcf`] routes to sequential VCFs each behind an `RwLock`
//!   (the original coarse-locking design, and the single-lock baseline
//!   at `shard_bits = 0`),
//! * [`ShardedConcurrentVcf`] routes to lock-free [`ConcurrentVcf`]
//!   shards, stacking routing-level isolation on top of CAS-level
//!   parallelism *within* each shard.
//!
//! Section III-C notes that more candidate buckets "significantly
//! reduce" the endless-loop hazard concurrent cuckoo tables suffer from;
//! sharding narrows any remaining contention to a `1/2^s` slice of the
//! keyspace, whatever the per-shard concurrency story is.

use crate::concurrent::ConcurrentVcf;
use crate::config::CuckooConfig;
use crate::scalable::ScalableVcf;
use crate::vcf::VerticalCuckooFilter;
use std::sync::RwLock;
use vcf_hash::mix64;
use vcf_traits::{BuildError, ConcurrentFilter, Filter, InsertError, ScalableFilter, Stats};

/// Salt decorrelating shard routing from in-shard bucket hashing.
const SHARD_SALT: u64 = 0x5348_4152_4421; // "SHARD!"

/// A keyspace router over `2^shard_bits` independent concurrent filters.
///
/// All methods take `&self`; the structure is `Send + Sync` and can be
/// shared across threads in an `Arc`. The shard for an item is chosen
/// from a remix of its full hash, using bits independent of the ones the
/// shard's internal hashing consumes, so shard choice does not bias
/// in-shard placement.
#[derive(Debug)]
pub struct ShardRouter<F> {
    shards: Vec<F>,
    shard_mask: u64,
    label: String,
}

/// The classic sharded VCF: sequential filters behind one `RwLock` each.
/// Lookups take shared locks, mutations exclusive ones. With
/// `shard_bits = 0` this is the single-global-lock baseline the
/// fine-grained [`ConcurrentVcf`] is benchmarked against.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use vcf_core::{CuckooConfig, ShardedVcf};
///
/// let filter = Arc::new(ShardedVcf::new(CuckooConfig::new(1 << 10), 3)?);
/// let handles: Vec<_> = (0..4)
///     .map(|t| {
///         let filter = Arc::clone(&filter);
///         std::thread::spawn(move || {
///             for i in 0..100u32 {
///                 filter.insert(format!("{t}-{i}").as_bytes()).unwrap();
///             }
///         })
///     })
///     .collect();
/// for handle in handles {
///     handle.join().unwrap();
/// }
/// assert_eq!(filter.len(), 400);
/// assert!(filter.contains(b"2-99"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub type ShardedVcf = ShardRouter<RwLock<VerticalCuckooFilter>>;

/// Lock-free shards behind the same router: each shard is a
/// [`ConcurrentVcf`], so writers to the *same* shard still proceed in
/// parallel on distinct buckets. Prefer this over [`ShardedVcf`] for
/// write-heavy workloads; see the README concurrency table.
pub type ShardedConcurrentVcf = ShardRouter<ConcurrentVcf>;

/// Elastic shards behind the router: each shard is a [`ScalableVcf`]
/// behind an `RwLock`, so capacity management is **per shard** — one
/// shard growing (or being shrunk/migrated) only holds its own lock and
/// never stalls traffic to the other `2^s − 1` shards. Routing is by key
/// hash, so per-shard occupancy stays balanced and shards grow roughly
/// in step without any coordination.
pub type ShardedScalableVcf = ShardRouter<RwLock<ScalableVcf>>;

impl<F> ShardRouter<F> {
    /// Validates router geometry and splits `config` into per-shard
    /// configs: `config.buckets` is the **total** bucket count, divided
    /// evenly, and shard `i` gets seed `config.seed + i` so shards do not
    /// mirror each other's eviction choices.
    fn shard_configs(
        config: CuckooConfig,
        shard_bits: u32,
    ) -> Result<impl Iterator<Item = CuckooConfig>, BuildError> {
        config.validate()?;
        let shard_count = 1usize << shard_bits;
        if shard_bits > 16 || config.buckets / shard_count < 4 {
            return Err(BuildError::InvalidConfig {
                reason: format!(
                    "{} buckets cannot be split into {shard_count} shards of >= 4 buckets",
                    config.buckets
                ),
            });
        }
        let per_shard = CuckooConfig {
            buckets: config.buckets / shard_count,
            ..config
        };
        Ok((0..shard_count).map(move |i| CuckooConfig {
            seed: config.seed.wrapping_add(i as u64),
            ..per_shard
        }))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard filters, in routing order.
    pub fn shards(&self) -> &[F] {
        &self.shards
    }

    /// Routes a key to its shard index. Public so shard-affine callers
    /// (the `vcf-server` executor, loadgen clients) can pre-partition a
    /// batch onto the threads owning each shard; routing depends only on
    /// the key bytes and the shard count, never on the shard type.
    #[inline]
    pub fn shard_of(&self, item: &[u8]) -> usize {
        let h = vcf_hash::fnv1a_64(item);
        (mix64(h ^ SHARD_SALT) & self.shard_mask) as usize
    }

    /// Routes every item, returning each shard's group of input
    /// positions (empty groups for untouched shards).
    fn group_by_shard(&self, items: &[&[u8]]) -> Vec<Vec<usize>> {
        debug_assert!(self.shard_mask as usize == self.shards.len() - 1);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (pos, item) in items.iter().enumerate() {
            groups[self.shard_of(item)].push(pos);
        }
        groups
    }
}

impl ShardedVcf {
    /// Builds a sharded filter over locked sequential VCFs.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the per-shard geometry would be
    /// degenerate (each shard needs at least 4 buckets) or the underlying
    /// VCF construction fails.
    pub fn new(config: CuckooConfig, shard_bits: u32) -> Result<Self, BuildError> {
        let shards = Self::shard_configs(config, shard_bits)?
            .map(|c| VerticalCuckooFilter::new(c).map(RwLock::new))
            .collect::<Result<Vec<_>, _>>()?;
        let shard_mask = shards.len() as u64 - 1;
        let label = format!("ShardedVCF[{}]", shards.len());
        Ok(Self {
            shards,
            shard_mask,
            label,
        })
    }
}

impl ShardedConcurrentVcf {
    /// Builds a sharded filter over lock-free [`ConcurrentVcf`] shards.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the per-shard geometry would be
    /// degenerate or the per-shard lane layout would straddle a word
    /// boundary (see [`ConcurrentVcf::new`]).
    pub fn new(config: CuckooConfig, shard_bits: u32) -> Result<Self, BuildError> {
        let shards = Self::shard_configs(config, shard_bits)?
            .map(ConcurrentVcf::new)
            .collect::<Result<Vec<_>, _>>()?;
        let shard_mask = shards.len() as u64 - 1;
        let label = format!("ShardedConcurrentVCF[{}]", shards.len());
        Ok(Self {
            shards,
            shard_mask,
            label,
        })
    }
}

impl ShardedScalableVcf {
    /// Builds a sharded elastic filter: `config.buckets` is the **base**
    /// total bucket count, split evenly; each shard then grows and
    /// shrinks on its own.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the per-shard geometry would be
    /// degenerate (each shard needs at least 4 base buckets).
    pub fn new(config: CuckooConfig, shard_bits: u32) -> Result<Self, BuildError> {
        let shards = Self::shard_configs(config, shard_bits)?
            .map(|c| ScalableVcf::new(c).map(RwLock::new))
            .collect::<Result<Vec<_>, _>>()?;
        let shard_mask = shards.len() as u64 - 1;
        let label = format!("ShardedScalableVCF[{}]", shards.len());
        Ok(Self {
            shards,
            shard_mask,
            label,
        })
    }

    /// Drains up to `buckets` cold bucket-ranges **per shard**, taking
    /// each shard's write lock only for its own bounded step. Returns the
    /// total number of bucket-ranges drained.
    ///
    /// # Panics
    ///
    /// Panics if a shard lock is poisoned.
    pub fn migrate_step(&self, buckets: usize) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.write().unwrap().migrate_step(buckets))
            .sum()
    }

    /// Total migration backlog across shards (0 ⇔ every shard is a
    /// single segment).
    ///
    /// # Panics
    ///
    /// Panics if a shard lock is poisoned.
    pub fn migration_backlog(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.read().unwrap().migration_backlog())
            .sum()
    }

    /// Shrinks each shard to fit, one shard (and one lock) at a time, so
    /// the repack latency spike is confined to a `1/2^s` keyspace slice.
    /// Returns how many shards actually shrank.
    ///
    /// # Panics
    ///
    /// Panics if a shard lock is poisoned.
    pub fn shrink_to_fit(&self) -> usize {
        self.shards
            .iter()
            .filter(|shard| shard.write().unwrap().shrink_to_fit())
            .count()
    }

    /// Segment-chain length per shard, in routing order (diagnostic).
    ///
    /// # Panics
    ///
    /// Panics if a shard lock is poisoned.
    pub fn shard_segments(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|shard| shard.read().unwrap().segments())
            .collect()
    }
}

impl<F: ConcurrentFilter> ShardRouter<F> {
    /// Inserts `item` into its shard.
    ///
    /// # Errors
    ///
    /// Returns [`InsertError::Full`] when the target shard is full.
    ///
    /// # Panics
    ///
    /// Panics if a locked shard's lock is poisoned.
    pub fn insert(&self, item: &[u8]) -> Result<(), InsertError> {
        debug_assert!(self.shard_mask as usize == self.shards.len() - 1);
        self.shards[self.shard_of(item)].insert(item)
    }

    /// Batched insert: routes the whole batch first, then visits each
    /// touched shard **once**, running its own batched insert (one lock
    /// acquisition / one prefetch pipeline pass per shard). Per-item
    /// results come back in input order; a full shard fails only its own
    /// items, exactly like the serial loop.
    ///
    /// # Panics
    ///
    /// Panics if a locked shard's lock is poisoned.
    pub fn insert_batch(&self, items: &[&[u8]]) -> Vec<Result<(), InsertError>> {
        debug_assert!(self.shard_mask as usize == self.shards.len() - 1);
        let mut out = vec![Ok(()); items.len()];
        for (shard, group) in self.group_by_shard(items).iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard_items: Vec<&[u8]> = group.iter().map(|&pos| items[pos]).collect();
            let results = self.shards[shard].insert_batch(&shard_items);
            for (&pos, result) in group.iter().zip(results) {
                out[pos] = result;
            }
        }
        out
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if a locked shard's lock is poisoned.
    pub fn contains(&self, item: &[u8]) -> bool {
        debug_assert!(self.shard_mask as usize == self.shards.len() - 1);
        self.shards[self.shard_of(item)].contains(item)
    }

    /// Batched membership test: routes the whole batch first, then visits
    /// each shard **once** and runs the shard's own batched probe over
    /// its group — one lock acquisition (or one cache-overlapped probe
    /// pass) per touched shard instead of one per item. Answers come back
    /// in input order.
    ///
    /// # Panics
    ///
    /// Panics if a locked shard's lock is poisoned.
    pub fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        // Route every item, then one batched probe per non-empty shard.
        debug_assert!(self.shard_mask as usize == self.shards.len() - 1);
        let mut out = vec![false; items.len()];
        for (shard, group) in self.group_by_shard(items).iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard_items: Vec<&[u8]> = group.iter().map(|&pos| items[pos]).collect();
            let answers = self.shards[shard].contains_batch(&shard_items);
            for (&pos, answer) in group.iter().zip(answers) {
                out[pos] = answer;
            }
        }
        out
    }

    /// Removes one copy of `item`.
    ///
    /// # Panics
    ///
    /// Panics if a locked shard's lock is poisoned.
    pub fn delete(&self, item: &[u8]) -> bool {
        debug_assert!(self.shard_mask as usize == self.shards.len() - 1);
        self.shards[self.shard_of(item)].delete(item)
    }

    /// Batched delete: one grouped visit per touched shard, answers in
    /// input order. Duplicate keys in the batch behave like the serial
    /// loop (each delete removes at most one copy), because the group
    /// preserves input order within its shard.
    ///
    /// # Panics
    ///
    /// Panics if a locked shard's lock is poisoned.
    pub fn delete_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        let mut out = vec![false; items.len()];
        for (shard, group) in self.group_by_shard(items).iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard_items: Vec<&[u8]> = group.iter().map(|&pos| items[pos]).collect();
            let answers = self.shards[shard].delete_batch(&shard_items);
            for (&pos, answer) in group.iter().zip(answers) {
                out[pos] = answer;
            }
        }
        out
    }

    /// Total stored entries across shards (a racy-but-consistent-enough
    /// aggregate under concurrent mutation).
    pub fn len(&self) -> usize {
        self.shards.iter().map(ConcurrentFilter::len).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(ConcurrentFilter::capacity).sum()
    }

    /// Aggregate operation statistics across shards.
    pub fn stats(&self) -> Stats {
        self.shards
            .iter()
            .map(ConcurrentFilter::stats)
            .fold(Stats::default(), |acc, s| acc + s)
    }

    /// Current aggregate load factor.
    pub fn load_factor(&self) -> f64 {
        let capacity = self.capacity();
        if capacity == 0 {
            0.0
        } else {
            self.len() as f64 / capacity as f64
        }
    }

    /// Resets every shard's operation counters.
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.reset_stats();
        }
    }

    /// The router's display name, e.g. `ShardedVCF[4]`.
    pub fn name(&self) -> String {
        self.label.clone()
    }
}

/// The router is itself a [`ConcurrentFilter`], so routers can nest and
/// generic harnesses can treat `ShardedVcf`, `ShardedConcurrentVcf` and
/// bare `ConcurrentVcf` uniformly.
impl<F: ConcurrentFilter> ConcurrentFilter for ShardRouter<F> {
    fn insert(&self, item: &[u8]) -> Result<(), InsertError> {
        ShardRouter::insert(self, item)
    }

    fn insert_batch(&self, items: &[&[u8]]) -> Vec<Result<(), InsertError>> {
        ShardRouter::insert_batch(self, items)
    }

    fn contains(&self, item: &[u8]) -> bool {
        ShardRouter::contains(self, item)
    }

    fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        ShardRouter::contains_batch(self, items)
    }

    fn delete(&self, item: &[u8]) -> bool {
        ShardRouter::delete(self, item)
    }

    fn delete_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        ShardRouter::delete_batch(self, items)
    }

    fn len(&self) -> usize {
        ShardRouter::len(self)
    }

    fn capacity(&self) -> usize {
        ShardRouter::capacity(self)
    }

    fn stats(&self) -> Stats {
        ShardRouter::stats(self)
    }

    fn reset_stats(&self) {
        ShardRouter::reset_stats(self);
    }

    fn name(&self) -> String {
        ShardRouter::name(self)
    }
}

/// `Filter`-trait adapter: the router's native API takes `&self`
/// (interior locking); the trait's `&mut self` methods simply delegate,
/// so sharded filters can participate in every generic harness and test
/// that works over `dyn Filter`.
impl<F: ConcurrentFilter> Filter for ShardRouter<F> {
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        ShardRouter::insert(self, item)
    }

    fn insert_batch(&mut self, items: &[&[u8]]) -> Vec<Result<(), InsertError>> {
        ShardRouter::insert_batch(self, items)
    }

    fn contains(&self, item: &[u8]) -> bool {
        ShardRouter::contains(self, item)
    }

    fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        ShardRouter::contains_batch(self, items)
    }

    fn delete(&mut self, item: &[u8]) -> bool {
        ShardRouter::delete(self, item)
    }

    fn len(&self) -> usize {
        ShardRouter::len(self)
    }

    fn capacity(&self) -> usize {
        ShardRouter::capacity(self)
    }

    fn stats(&self) -> Stats {
        ShardRouter::stats(self)
    }

    fn reset_stats(&mut self) {
        ShardRouter::reset_stats(self);
    }

    fn name(&self) -> String {
        ShardRouter::name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(i: u64) -> Vec<u8> {
        format!("sharded-{i}").into_bytes()
    }

    #[test]
    fn rejects_degenerate_sharding() {
        assert!(ShardedVcf::new(CuckooConfig::new(16), 3).is_err()); // 2 buckets/shard
        assert!(ShardedVcf::new(CuckooConfig::new(1 << 8), 20).is_err());
        assert!(ShardedVcf::new(CuckooConfig::new(1 << 8), 3).is_ok());
        assert!(ShardedConcurrentVcf::new(CuckooConfig::new(16), 3).is_err());
        assert!(ShardedConcurrentVcf::new(CuckooConfig::new(1 << 8), 3).is_ok());
    }

    #[test]
    fn single_threaded_contract() {
        let f = ShardedVcf::new(CuckooConfig::new(1 << 8).with_seed(1), 2).unwrap();
        for i in 0..500 {
            f.insert(&key(i)).unwrap();
        }
        for i in 0..500 {
            assert!(f.contains(&key(i)), "item {i} lost");
        }
        assert_eq!(f.len(), 500);
        for i in 0..250 {
            assert!(f.delete(&key(i)));
        }
        assert_eq!(f.len(), 250);
        for i in 250..500 {
            assert!(f.contains(&key(i)));
        }
    }

    #[test]
    fn concurrent_shards_follow_same_contract() {
        let f = ShardedConcurrentVcf::new(CuckooConfig::new(1 << 8).with_seed(1), 2).unwrap();
        for i in 0..500 {
            f.insert(&key(i)).unwrap();
        }
        for i in 0..500 {
            assert!(f.contains(&key(i)), "item {i} lost");
        }
        assert_eq!(f.len(), 500);
        for i in 0..250 {
            assert!(f.delete(&key(i)));
        }
        assert_eq!(f.len(), 250);
        assert_eq!(f.name(), "ShardedConcurrentVCF[4]");
    }

    #[test]
    fn shards_receive_balanced_load() {
        let f = ShardedVcf::new(CuckooConfig::new(1 << 8).with_seed(2), 2).unwrap();
        for i in 0..800 {
            f.insert(&key(i)).unwrap();
        }
        for shard in f.shards() {
            let len = shard.read().unwrap().len();
            // 800 keys over 4 shards: expect ~200 each; allow wide noise.
            assert!((120..=280).contains(&len), "unbalanced shard: {len}");
        }
    }

    #[test]
    fn routing_is_identical_across_shard_filter_types() {
        // Both routers must send a given key to the same shard index:
        // routing depends only on the key, never on the shard type.
        let locked = ShardedVcf::new(CuckooConfig::new(1 << 8).with_seed(3), 2).unwrap();
        let lockfree =
            ShardedConcurrentVcf::new(CuckooConfig::new(1 << 8).with_seed(3), 2).unwrap();
        for i in 0..200 {
            let k = key(i);
            assert_eq!(locked.shard_of(&k), lockfree.shard_of(&k));
        }
    }

    #[test]
    fn concurrent_inserts_and_lookups() {
        let filter = Arc::new(ShardedVcf::new(CuckooConfig::new(1 << 10).with_seed(3), 3).unwrap());
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let filter = Arc::clone(&filter);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        filter.insert(&key(t * 10_000 + i)).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(filter.len(), 2000);
        let readers: Vec<_> = (0..4u64)
            .map(|t| {
                let filter = Arc::clone(&filter);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        assert!(filter.contains(&key(t * 10_000 + i)), "lost {t}/{i}");
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn concurrent_churn_has_no_false_negatives() {
        let filter = Arc::new(ShardedVcf::new(CuckooConfig::new(1 << 10).with_seed(4), 3).unwrap());
        // Each thread owns a disjoint key range and churns it.
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let filter = Arc::clone(&filter);
                std::thread::spawn(move || {
                    let base = t * 1_000_000;
                    for round in 0..50u64 {
                        for i in 0..50u64 {
                            filter.insert(&key(base + round * 100 + i)).unwrap();
                        }
                        for i in 0..50u64 {
                            let k = key(base + round * 100 + i);
                            assert!(filter.contains(&k), "thread {t} lost its own key");
                            assert!(filter.delete(&k), "thread {t} failed deleting own key");
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(filter.is_empty(), "churn must drain completely");
    }

    #[test]
    fn batched_mutations_match_serial_ops() {
        // The grouped batch paths must agree bit-for-bit with a serial
        // loop over the same ops on an identically-configured router.
        let batched = ShardedVcf::new(CuckooConfig::new(1 << 8).with_seed(7), 2).unwrap();
        let serial = ShardedVcf::new(CuckooConfig::new(1 << 8).with_seed(7), 2).unwrap();
        let keys: Vec<Vec<u8>> = (0..600).map(key).collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();

        let batch_results = batched.insert_batch(&refs);
        let serial_results: Vec<_> = refs.iter().map(|k| serial.insert(k)).collect();
        assert_eq!(batch_results, serial_results);
        assert_eq!(batched.len(), serial.len());
        assert_eq!(batched.contains_batch(&refs), vec![true; refs.len()]);

        let half: Vec<&[u8]> = refs[..300].to_vec();
        let batch_deleted = batched.delete_batch(&half);
        let serial_deleted: Vec<_> = half.iter().map(|k| serial.delete(k)).collect();
        assert_eq!(batch_deleted, serial_deleted);
        assert_eq!(batched.len(), serial.len());
    }

    #[test]
    fn batched_duplicate_deletes_remove_one_copy_each() {
        let f = ShardedVcf::new(CuckooConfig::new(1 << 8).with_seed(8), 2).unwrap();
        let k = key(1);
        f.insert(&k).unwrap();
        f.insert(&k).unwrap();
        // Two stored copies: the batch removes both, the third miss is
        // reported in-order, as the serial loop would.
        assert_eq!(
            f.delete_batch(&[k.as_slice(), k.as_slice(), k.as_slice()]),
            vec![true, true, false]
        );
        assert!(f.is_empty());
    }

    #[test]
    fn aggregate_stats_and_capacity() {
        let f = ShardedVcf::new(CuckooConfig::new(1 << 8).with_seed(5), 2).unwrap();
        assert_eq!(f.capacity(), (1 << 8) * 4);
        assert_eq!(f.shard_count(), 4);
        f.insert(b"a").unwrap();
        assert_eq!(f.stats().inserts.calls, 1);
        assert!(f.load_factor() > 0.0);
    }

    #[test]
    fn filter_trait_adapter_works() {
        let mut f: Box<dyn Filter> =
            Box::new(ShardedVcf::new(CuckooConfig::new(1 << 8).with_seed(6), 2).unwrap());
        f.insert(b"via-trait").unwrap();
        assert!(f.contains(b"via-trait"));
        assert!(f.delete(b"via-trait"));
        assert_eq!(f.name(), "ShardedVCF[4]");
        f.reset_stats();
        assert_eq!(f.stats().inserts.calls, 0);
    }

    #[test]
    fn sharded_filter_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedVcf>();
        assert_send_sync::<ShardedConcurrentVcf>();
        assert_send_sync::<ShardedScalableVcf>();
    }

    #[test]
    fn scalable_shards_grow_independently() {
        // 4 shards of 64 base buckets each.
        let f = ShardedScalableVcf::new(CuckooConfig::new(1 << 8).with_seed(11), 2).unwrap();
        let target = f.shard_of(b"hot-0");
        // Hammer keys routed to one shard only.
        let mut stored = Vec::new();
        let mut i = 0u64;
        while stored.len() < 2_000 {
            let k = format!("hot-{i}").into_bytes();
            if f.shard_of(&k) == target {
                f.insert(&k).unwrap();
                stored.push(k);
            }
            i += 1;
        }
        let segments = f.shard_segments();
        assert!(
            segments[target] >= 1 && f.shards()[target].read().unwrap().capacity() > 256,
            "hot shard must have grown: {segments:?}"
        );
        for (shard, &segs) in segments.iter().enumerate() {
            if shard != target {
                assert_eq!(segs, 1, "cold shard {shard} must not grow: {segments:?}");
                assert_eq!(f.shards()[shard].read().unwrap().capacity(), 256);
            }
        }
        for k in &stored {
            assert!(f.contains(k), "hot-shard key lost");
        }
    }

    #[test]
    fn scalable_router_maintenance_flattens_and_shrinks() {
        let f = ShardedScalableVcf::new(CuckooConfig::new(1 << 8).with_seed(12), 2).unwrap();
        for i in 0..8_000u64 {
            f.insert(&key(i)).unwrap();
        }
        // Drive migration to completion through the router.
        let mut guard = 0;
        while f.migration_backlog() > 0 {
            if f.migrate_step(16) == 0 {
                for shard in f.shards() {
                    shard.write().unwrap().grow().unwrap();
                }
            }
            guard += 1;
            assert!(guard < 100_000, "router migration never converged");
        }
        assert!(f.shard_segments().iter().all(|&s| s == 1));
        assert_eq!(f.len(), 8_000);
        // Mass delete, then per-shard shrink-to-fit.
        for i in 200..8_000u64 {
            assert!(f.delete(&key(i)));
        }
        let before = f.capacity();
        let shrunk = f.shrink_to_fit();
        assert!(shrunk > 0, "at least one shard must shrink");
        assert!(f.capacity() < before);
        for i in 0..200u64 {
            assert!(f.contains(&key(i)), "item {i} lost by sharded shrink");
        }
    }

    #[test]
    fn scalable_shards_serve_concurrent_traffic_while_growing() {
        let filter =
            Arc::new(ShardedScalableVcf::new(CuckooConfig::new(1 << 8).with_seed(13), 2).unwrap());
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let filter = Arc::clone(&filter);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        filter.insert(&key(t * 1_000_000 + i)).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(filter.len(), 8_000);
        for t in 0..4u64 {
            for i in 0..2_000u64 {
                assert!(filter.contains(&key(t * 1_000_000 + i)), "lost {t}/{i}");
            }
        }
    }
}
